//! Property tests for the CRWI construction and conversion invariants,
//! checked against naive quadratic reference implementations.

use ipr_core::{
    convert_to_in_place, sort_breaking_cycles, ConversionConfig, CrwiGraph, CrwiStats, CyclePolicy,
};
use ipr_delta::codec::Format;
use ipr_delta::{Command, Copy, DeltaScript};
use proptest::prelude::*;

/// Random set of copy commands with disjoint write intervals.
fn copies_strategy() -> impl Strategy<Value = Vec<Copy>> {
    proptest::collection::vec((0u64..40, 1u64..24, 0u64..480), 0..24).prop_map(|segs| {
        let mut copies = Vec::new();
        let mut to = 0u64;
        for (gap, len, from) in segs {
            to += gap;
            let from = from.min(500 - len);
            copies.push(Copy { from, to, len });
            to += len;
        }
        copies
    })
}

/// Naive O(n²) edge relation: u -> v iff read(u) ∩ write(v) ≠ ∅, u ≠ v.
fn naive_edges(copies: &[Copy]) -> std::collections::BTreeSet<(usize, usize)> {
    let mut edges = std::collections::BTreeSet::new();
    for (u, a) in copies.iter().enumerate() {
        for (v, b) in copies.iter().enumerate() {
            if u != v && a.read_interval().intersects(b.write_interval()) {
                edges.insert((u, v));
            }
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The binary-search construction matches the naive edge relation.
    #[test]
    fn crwi_matches_naive(copies in copies_strategy()) {
        let crwi = CrwiGraph::build(copies);
        let sorted = crwi.copies().to_vec();
        let expected = naive_edges(&sorted);
        let mut got = std::collections::BTreeSet::new();
        for (u, v) in crwi.graph().edges() {
            got.insert((u as usize, v as usize));
        }
        prop_assert_eq!(got, expected);
    }

    /// Lemma 1 on arbitrary command sets: edges ≤ Σ read lengths.
    #[test]
    fn lemma1_on_arbitrary_copies(copies in copies_strategy()) {
        let total_read: u64 = copies.iter().map(|c| c.len).sum();
        let crwi = CrwiGraph::build(copies);
        prop_assert!(crwi.edge_count() as u64 <= total_read);
    }

    /// Stats are internally consistent.
    #[test]
    fn stats_consistent(copies in copies_strategy()) {
        let crwi = CrwiGraph::build(copies);
        let stats = CrwiStats::analyze(&crwi);
        prop_assert_eq!(stats.nodes, crwi.node_count());
        prop_assert_eq!(stats.edges, crwi.edge_count());
        prop_assert_eq!(stats.acyclic, stats.cyclic_components == 0);
        prop_assert!(stats.vertices_on_cycles <= stats.nodes);
        prop_assert!(stats.largest_cyclic_component <= stats.vertices_on_cycles);
        // Conversion never converts more than the at-risk set.
        let target_len = crwi
            .copies()
            .iter()
            .map(|c| c.write_interval().end())
            .max()
            .unwrap_or(0);
        let commands: Vec<Command> = crwi.copies().iter().map(|&c| Command::Copy(c)).collect();
        // Fill gaps so the script validates.
        let mut full = Vec::new();
        let mut cursor = 0u64;
        let mut sorted = commands.clone();
        sorted.sort_by_key(Command::to);
        for cmd in sorted {
            if cmd.to() > cursor {
                full.push(Command::add(cursor, vec![0; (cmd.to() - cursor) as usize]));
            }
            cursor = cmd.write_interval().end();
            full.push(cmd);
        }
        let script = DeltaScript::new(500, target_len, full).unwrap();
        let reference = vec![7u8; 500];
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let out = convert_to_in_place(
                &script,
                &reference,
                &ConversionConfig { policy, cost_format: Format::InPlace },
            )
            .unwrap();
            prop_assert!(out.report.copies_converted <= stats.vertices_on_cycles,
                "{policy}: converted {} > at-risk {}",
                out.report.copies_converted, stats.vertices_on_cycles);
            prop_assert!(out.report.bytes_converted <= stats.bytes_at_risk);
            prop_assert!(ipr_core::is_in_place_safe(&out.script));
        }
    }

    /// The sort's retained order plus removals is consistent with the
    /// exhaustive solver's feasibility (both leave an acyclic remainder),
    /// and the heuristic removal count is at least the optimum's.
    #[test]
    fn heuristics_remove_at_least_optimal_count(copies in copies_strategy()) {
        let crwi = CrwiGraph::build(copies);
        if crwi.node_count() > 16 {
            return Ok(()); // keep the exact solver cheap
        }
        let costs: Vec<u64> = crwi
            .copies()
            .iter()
            .map(|c| Format::InPlace.conversion_cost(c).max(1))
            .collect();
        let exact =
            sort_breaking_cycles(crwi.graph(), &costs, CyclePolicy::Exhaustive { limit: 16 })
                .unwrap();
        let exact_cost: u64 = exact.removed.iter().map(|&v| costs[v as usize]).sum();
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let h = sort_breaking_cycles(crwi.graph(), &costs, policy).unwrap();
            let h_cost: u64 = h.removed.iter().map(|&v| costs[v as usize]).sum();
            prop_assert!(h_cost >= exact_cost, "{policy} beat the optimum");
        }
    }
}

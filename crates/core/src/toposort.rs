//! The enhanced topological sort (§4.2, step 4): a depth-first sort that
//! detects cycles and breaks them by deleting a vertex chosen by a
//! [`CyclePolicy`].

use crate::policy::CyclePolicy;
use ipr_digraph::fvs::{self, ComponentTooLarge};
use ipr_digraph::scc::{tarjan_into, SccScratch};
use ipr_digraph::{topo, Digraph, NodeId};

/// Result of the cycle-breaking topological sort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortOutcome {
    /// Retained vertices in topological order: for every edge `u -> v`
    /// between retained vertices, `u` precedes `v`.
    pub order: Vec<NodeId>,
    /// Deleted vertices (their copy commands must be converted to adds),
    /// in ascending id order.
    pub removed: Vec<NodeId>,
    /// Number of cycles the sort broke.
    pub cycles_broken: usize,
    /// Vertices examined while scanning cycles — 0 for the constant-time
    /// policy, the total length of found cycles for locally-minimum (the
    /// paper's measure of the policy's extra work).
    pub cycle_nodes_examined: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Color {
    White,
    Gray,
    Black,
}

/// Per-call counters of the cycle-breaking sort (the [`SortOutcome`]
/// fields that are not vertex lists).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Number of cycles the sort broke.
    pub cycles_broken: usize,
    /// Vertices examined while scanning cycles (see
    /// [`SortOutcome::cycle_nodes_examined`]).
    pub cycle_nodes_examined: usize,
}

/// Working storage for [`truncating_dfs_into`].
#[derive(Debug, Default)]
struct DfsScratch {
    color: Vec<Color>,
    removed: Vec<bool>,
    removed_list: Vec<NodeId>,
    finished: Vec<NodeId>,
    stack: Vec<(NodeId, usize)>,
    pos_in_stack: Vec<usize>,
}

/// Reusable working storage for [`sort_breaking_cycles_into`].
///
/// Owns every buffer the heuristic sort needs — the Tarjan SCC scratch,
/// per-component remapping tables, the local component digraph, and the
/// truncating-DFS state — plus the output `order`/`removed` vectors.
/// Buffers are cleared, never freed, so a warmed-up scratch performs no
/// allocations in steady state.
#[derive(Debug, Default)]
pub struct SortScratch {
    scc: SccScratch,
    /// Current component's members, sorted ascending (local id `i` is
    /// `comp_members[i]`).
    comp_members: Vec<NodeId>,
    /// Dense global-id → local-id map. Never reset: reads are guarded by
    /// an SCC membership check, so stale entries are unreachable.
    local_of: Vec<NodeId>,
    local: Digraph,
    local_spare: Vec<Vec<NodeId>>,
    local_cost: Vec<u64>,
    dfs: DfsScratch,
    order: Vec<NodeId>,
    removed: Vec<NodeId>,
}

impl SortScratch {
    /// Creates an empty scratch. Storage is grown on first use and reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Retained vertices in topological order, from the most recent
    /// [`sort_breaking_cycles_into`] call.
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Deleted vertices in ascending id order, from the most recent
    /// [`sort_breaking_cycles_into`] call.
    #[must_use]
    pub fn removed(&self) -> &[NodeId] {
        &self.removed
    }
}

/// Topologically sorts `graph`, deleting vertices per `policy` whenever a
/// cycle blocks progress. `cost[v]` is the compression lost by deleting
/// vertex `v` (used by [`CyclePolicy::LocallyMinimum`] and
/// [`CyclePolicy::Exhaustive`]).
///
/// # Errors
///
/// Only [`CyclePolicy::Exhaustive`] can fail, with [`ComponentTooLarge`]
/// when a cyclic strongly connected component exceeds its limit.
///
/// # Panics
///
/// Panics if `cost.len() != graph.node_count()`.
///
/// # Example
///
/// ```
/// use ipr_digraph::Digraph;
/// use ipr_core::{sort_breaking_cycles, CyclePolicy};
///
/// // A 3-cycle: one vertex must go.
/// let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// let out = sort_breaking_cycles(&g, &[10, 1, 10], CyclePolicy::LocallyMinimum).unwrap();
/// assert_eq!(out.removed, vec![1]); // cheapest vertex of the cycle
/// assert_eq!(out.order.len(), 2);
/// ```
pub fn sort_breaking_cycles(
    graph: &Digraph,
    cost: &[u64],
    policy: CyclePolicy,
) -> Result<SortOutcome, ComponentTooLarge> {
    let mut scratch = SortScratch::new();
    let stats = sort_breaking_cycles_into(graph, cost, policy, &mut scratch)?;
    Ok(SortOutcome {
        order: std::mem::take(&mut scratch.order),
        removed: std::mem::take(&mut scratch.removed),
        cycles_broken: stats.cycles_broken,
        cycle_nodes_examined: stats.cycle_nodes_examined,
    })
}

/// Scratch-based core of [`sort_breaking_cycles`]: identical results, but
/// all working storage (and the output `order`/`removed` lists) live in
/// `scratch`, so repeated calls allocate nothing once the scratch is warm.
///
/// Read the results from [`SortScratch::order`] and
/// [`SortScratch::removed`].
///
/// # Errors
///
/// Only [`CyclePolicy::Exhaustive`] can fail, with [`ComponentTooLarge`]
/// when a cyclic strongly connected component exceeds its limit (the
/// exhaustive solver is exempt from the no-allocation guarantee).
///
/// # Panics
///
/// Panics if `cost.len() != graph.node_count()`.
pub fn sort_breaking_cycles_into(
    graph: &Digraph,
    cost: &[u64],
    policy: CyclePolicy,
    scratch: &mut SortScratch,
) -> Result<SortStats, ComponentTooLarge> {
    assert_eq!(
        cost.len(),
        graph.node_count(),
        "cost vector length must equal node count"
    );
    match policy {
        CyclePolicy::Exhaustive { limit } => {
            let out = exhaustive_sort(graph, cost, limit)?;
            scratch.order.clear();
            scratch.order.extend_from_slice(&out.order);
            scratch.removed.clear();
            scratch.removed.extend_from_slice(&out.removed);
            Ok(SortStats {
                cycles_broken: out.cycles_broken,
                cycle_nodes_examined: out.cycle_nodes_examined,
            })
        }
        CyclePolicy::ConstantTime | CyclePolicy::LocallyMinimum => {
            Ok(dfs_sort_into(graph, cost, policy, scratch))
        }
    }
}

/// Exact variant: solve feedback vertex set first, then sort the acyclic
/// remainder.
fn exhaustive_sort(
    graph: &Digraph,
    cost: &[u64],
    limit: usize,
) -> Result<SortOutcome, ComponentTooLarge> {
    let removed = fvs::minimum_feedback_vertex_set(graph, cost, limit)?;
    let mut keep = vec![true; graph.node_count()];
    for &v in &removed {
        keep[v as usize] = false;
    }
    let induced = graph.induced(&keep);
    let order: Vec<NodeId> = topo::kahn(&induced)
        .expect("graph is acyclic after removing a feedback vertex set")
        .into_iter()
        .filter(|&v| keep[v as usize])
        .collect();
    let cycles_broken = removed.len();
    Ok(SortOutcome {
        order,
        removed,
        cycles_broken,
        cycle_nodes_examined: 0,
    })
}

/// Heuristic sort, localized per strongly connected component.
///
/// Every cycle lives inside one SCC, so cycle breaking (and the stack
/// rewinding it forces) never needs to touch nodes outside the component:
/// running the truncating DFS per component bounds the rework of repeated
/// cycle breaking to `O(removals · component size)` instead of the whole
/// graph. Components are emitted in condensation topological order
/// (descending Tarjan id), which keeps cross-component edges forward.
fn dfs_sort_into(
    graph: &Digraph,
    cost: &[u64],
    policy: CyclePolicy,
    scratch: &mut SortScratch,
) -> SortStats {
    let SortScratch {
        scc,
        comp_members,
        local_of,
        local,
        local_spare,
        local_cost,
        dfs,
        order,
        removed,
    } = scratch;
    tarjan_into(graph, scc);
    order.clear();
    removed.clear();
    if local_of.len() < graph.node_count() {
        local_of.resize(graph.node_count(), 0);
    }
    let mut stats = SortStats::default();
    for cid in (0..scc.count() as u32).rev() {
        let members = scc.members_of(cid);
        if members.len() == 1 && !graph.has_edge(members[0], members[0]) {
            order.push(members[0]);
            continue;
        }
        // Local compact ids, ascending global id for determinism.
        comp_members.clear();
        comp_members.extend_from_slice(members);
        comp_members.sort_unstable();
        for (i, &v) in comp_members.iter().enumerate() {
            local_of[v as usize] = i as NodeId;
        }
        local.reset_with_spare(comp_members.len(), local_spare);
        local_cost.clear();
        for (i, &v) in comp_members.iter().enumerate() {
            local_cost.push(cost[v as usize]);
            for &w in graph.successors(v) {
                if scc.component_of(w) == cid {
                    local.add_edge(i as NodeId, local_of[w as usize]);
                }
            }
        }
        let sub = truncating_dfs_into(local, local_cost, policy, dfs);
        order.extend(dfs.finished.iter().map(|&i| comp_members[i as usize]));
        removed.extend(dfs.removed_list.iter().map(|&i| comp_members[i as usize]));
        stats.cycles_broken += sub.cycles_broken;
        stats.cycle_nodes_examined += sub.cycle_nodes_examined;
    }
    removed.sort_unstable();
    stats
}

/// Iterative DFS with in-flight cycle breaking (the §4.2 enhanced sort).
///
/// Results land in `s.finished` (topological order) and `s.removed_list`
/// (ascending); the returned stats cover only this call.
fn truncating_dfs_into(
    graph: &Digraph,
    cost: &[u64],
    policy: CyclePolicy,
    s: &mut DfsScratch,
) -> SortStats {
    let n = graph.node_count();
    let DfsScratch {
        color,
        removed,
        removed_list,
        finished,
        // (node, next successor index); parallel position index for O(1)
        // cycle extraction.
        stack,
        pos_in_stack,
    } = s;
    color.clear();
    color.resize(n, Color::White);
    removed.clear();
    removed.resize(n, false);
    removed_list.clear();
    finished.clear();
    stack.clear();
    pos_in_stack.clear();
    pos_in_stack.resize(n, usize::MAX);
    let mut cycles_broken = 0usize;
    let mut cycle_nodes_examined = 0usize;

    // After a mid-stack deletion reverts vertices to white, the root scan
    // must revisit them; `root_hint` tracks the smallest possibly-white id.
    let mut root_hint: usize = 0;
    loop {
        // Find the next unvisited root.
        let mut root = None;
        for v in root_hint..n {
            if color[v] == Color::White && !removed[v] {
                root = Some(v as NodeId);
                root_hint = v;
                break;
            }
        }
        let Some(root) = root else { break };

        color[root as usize] = Color::Gray;
        pos_in_stack[root as usize] = 0;
        stack.push((root, 0));

        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let succs = graph.successors(u);
            if *next >= succs.len() {
                color[u as usize] = Color::Black;
                pos_in_stack[u as usize] = usize::MAX;
                finished.push(u);
                stack.pop();
                continue;
            }
            let v = succs[*next];
            *next += 1;
            if removed[v as usize] {
                continue;
            }
            match color[v as usize] {
                Color::White => {
                    color[v as usize] = Color::Gray;
                    pos_in_stack[v as usize] = stack.len();
                    stack.push((v, 0));
                }
                Color::Black => {}
                Color::Gray => {
                    // Back edge u -> v: the stack segment from v to u is a
                    // cycle. Choose the victim.
                    cycles_broken += 1;
                    let cycle_start = pos_in_stack[v as usize];
                    let victim_pos = match policy {
                        CyclePolicy::ConstantTime => stack.len() - 1,
                        CyclePolicy::LocallyMinimum => {
                            cycle_nodes_examined += stack.len() - cycle_start;
                            let mut best = stack.len() - 1;
                            let mut best_cost = cost[stack[best].0 as usize];
                            // Scan the whole cycle for the cheapest vertex;
                            // ties break toward the earliest stack position
                            // for determinism.
                            for p in cycle_start..stack.len() {
                                let c = cost[stack[p].0 as usize];
                                if c < best_cost || (c == best_cost && p < best) {
                                    best = p;
                                    best_cost = c;
                                }
                            }
                            best
                        }
                        CyclePolicy::Exhaustive { .. } => {
                            unreachable!("exhaustive policy handled separately")
                        }
                    };
                    let victim = stack[victim_pos].0;
                    removed[victim as usize] = true;
                    removed_list.push(victim);
                    // Unwind the stack to below the victim; everything at or
                    // above it reverts to white (the victim itself is
                    // removed) and will be re-explored through other paths.
                    for &(w, _) in &stack[victim_pos..] {
                        color[w as usize] = Color::White;
                        pos_in_stack[w as usize] = usize::MAX;
                        root_hint = root_hint.min(w as usize);
                    }
                    stack.truncate(victim_pos);
                }
            }
        }
    }

    finished.reverse();
    removed_list.sort_unstable();
    SortStats {
        cycles_broken,
        cycle_nodes_examined,
    }
}

/// Checks that `outcome` is a valid result for `graph`: the retained order
/// is topological over the retained subgraph and `removed` ∪ `order` is a
/// partition of the vertices.
#[must_use]
pub fn is_valid_outcome(graph: &Digraph, outcome: &SortOutcome) -> bool {
    let n = graph.node_count();
    let mut seen = vec![0u8; n];
    for &v in &outcome.order {
        seen[v as usize] += 1;
    }
    for &v in &outcome.removed {
        seen[v as usize] += 1;
    }
    if seen.iter().any(|&s| s != 1) {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in outcome.order.iter().enumerate() {
        pos[v as usize] = i;
    }
    graph.edges().all(|(u, v)| {
        let (pu, pv) = (pos[u as usize], pos[v as usize]);
        // Edges touching removed vertices are moot.
        pu == usize::MAX || pv == usize::MAX || pu < pv
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(g: &Digraph, cost: &[u64], policy: CyclePolicy) -> SortOutcome {
        let out = sort_breaking_cycles(g, cost, policy).unwrap();
        assert!(is_valid_outcome(g, &out), "invalid outcome for {policy}");
        out
    }

    #[test]
    fn acyclic_graph_keeps_everything() {
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        for policy in [
            CyclePolicy::ConstantTime,
            CyclePolicy::LocallyMinimum,
            CyclePolicy::Exhaustive { limit: 10 },
        ] {
            let out = run(&g, &[1; 4], policy);
            assert!(out.removed.is_empty());
            assert_eq!(out.cycles_broken, 0);
            assert_eq!(out.order.len(), 4);
        }
    }

    #[test]
    fn single_cycle_breaks_once() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let out = run(&g, &[5, 5, 5], policy);
            assert_eq!(out.removed.len(), 1, "{policy}");
            assert_eq!(out.cycles_broken, 1);
            assert_eq!(out.order.len(), 2);
        }
    }

    #[test]
    fn locally_minimum_picks_cheapest() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let out = run(&g, &[9, 9, 2, 9], CyclePolicy::LocallyMinimum);
        assert_eq!(out.removed, vec![2]);
        assert_eq!(out.cycle_nodes_examined, 4);
    }

    #[test]
    fn constant_time_does_no_cycle_scanning() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let out = run(&g, &[9, 9, 2, 9], CyclePolicy::ConstantTime);
        assert_eq!(out.removed.len(), 1);
        assert_eq!(out.cycle_nodes_examined, 0);
    }

    #[test]
    fn exhaustive_is_optimal_on_shared_vertex_cycles() {
        // Two triangles sharing vertex 0: heuristics may delete two
        // vertices, the optimum deletes only vertex 0.
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let cost = [5, 4, 4, 4, 4];
        let exact = run(&g, &cost, CyclePolicy::Exhaustive { limit: 16 });
        assert_eq!(exact.removed, vec![0]);
        let lm = run(&g, &cost, CyclePolicy::LocallyMinimum);
        let lm_cost: u64 = lm.removed.iter().map(|&v| cost[v as usize]).sum();
        assert!(lm_cost >= 5);
    }

    #[test]
    fn exhaustive_respects_limit() {
        let n: u32 = 12;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Digraph::from_edges(n as usize, edges);
        let err = sort_breaking_cycles(
            &g,
            &vec![1; n as usize],
            CyclePolicy::Exhaustive { limit: 4 },
        )
        .unwrap_err();
        assert_eq!(err.size, 12);
    }

    #[test]
    fn self_loop_always_removed() {
        let g = Digraph::from_edges(2, [(0, 0), (0, 1)]);
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let out = run(&g, &[1, 1], policy);
            assert_eq!(out.removed, vec![0], "{policy}");
            assert_eq!(out.order, vec![1]);
        }
    }

    #[test]
    fn figure2_tree_defeats_locally_minimum() {
        // Paper Fig. 2: a binary tree with an edge from every leaf back to
        // the root. Each root-to-leaf path plus the back edge is a cycle.
        // The locally-minimum policy deletes a minimum-cost vertex per
        // cycle; with leaves cheapest it deletes every leaf (k deletions)
        // where deleting the root alone (1 deletion) is optimal.
        let depth = 3usize;
        let nodes = (1 << (depth + 1)) - 1; // complete binary tree
        let mut edges = Vec::new();
        for i in 0..nodes {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            if l < nodes {
                edges.push((i as NodeId, l as NodeId));
            }
            if r < nodes {
                edges.push((i as NodeId, r as NodeId));
            }
        }
        let first_leaf = (1 << depth) - 1;
        for leaf in first_leaf..nodes {
            edges.push((leaf as NodeId, 0));
        }
        let g = Digraph::from_edges(nodes, edges);
        // Root costs slightly more than any single leaf (cost C+1 vs C).
        let mut cost = vec![100u64; nodes];
        cost[0] = 11;
        for c in cost.iter_mut().take(nodes).skip(first_leaf) {
            *c = 10;
        }

        let lm = run(&g, &cost, CyclePolicy::LocallyMinimum);
        let exact = run(&g, &cost, CyclePolicy::Exhaustive { limit: 40 });

        let leaves = nodes - first_leaf;
        assert_eq!(
            lm.removed.len(),
            leaves,
            "locally-minimum deletes every leaf"
        );
        assert_eq!(exact.removed, vec![0], "optimum deletes the root");

        let lm_cost: u64 = lm.removed.iter().map(|&v| cost[v as usize]).sum();
        let exact_cost: u64 = exact.removed.iter().map(|&v| cost[v as usize]).sum();
        assert!(lm_cost > exact_cost * (leaves as u64) / 2);
    }

    #[test]
    fn dense_random_graph_all_policies_agree_on_validity() {
        // Deterministic pseudo-random dense-ish graph.
        let n = 40u32;
        let mut edges = Vec::new();
        let mut x = 12345u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) as u32 % n;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as u32 % n;
            if u != v {
                edges.push((u, v));
            }
        }
        let g = Digraph::from_edges(n as usize, edges);
        let cost: Vec<u64> = (0..n as u64).map(|i| i % 7 + 1).collect();
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let out = run(&g, &cost, policy);
            assert!(out.order.len() + out.removed.len() == n as usize);
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_across_graphs() {
        // One scratch driven across heterogeneous graphs and policies must
        // reproduce the fresh-scratch (wrapper) results exactly.
        let graphs = [
            Digraph::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
            Digraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]),
            Digraph::from_edges(
                6,
                vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
            ),
            Digraph::from_edges(2, vec![(0, 0), (0, 1)]),
            Digraph::from_edges(1, vec![]),
        ];
        let mut scratch = SortScratch::new();
        for g in &graphs {
            let cost: Vec<u64> = (0..g.node_count() as u64).map(|i| i % 5 + 1).collect();
            for policy in [
                CyclePolicy::ConstantTime,
                CyclePolicy::LocallyMinimum,
                CyclePolicy::Exhaustive { limit: 16 },
            ] {
                let fresh = sort_breaking_cycles(g, &cost, policy).unwrap();
                let stats = sort_breaking_cycles_into(g, &cost, policy, &mut scratch).unwrap();
                assert_eq!(scratch.order(), fresh.order.as_slice(), "{policy}");
                assert_eq!(scratch.removed(), fresh.removed.as_slice(), "{policy}");
                assert_eq!(stats.cycles_broken, fresh.cycles_broken);
                assert_eq!(stats.cycle_nodes_examined, fresh.cycle_nodes_examined);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let a = run(&g, &[3, 1, 2, 2, 1, 3], CyclePolicy::LocallyMinimum);
        let b = run(&g, &[3, 1, 2, 2, 1, 3], CyclePolicy::LocallyMinimum);
        assert_eq!(a, b);
    }
}

//! Cycle-breaking policies (§5 of the paper).

use std::fmt;

/// How the enhanced topological sort chooses the vertex to delete when it
/// finds a cycle.
///
/// Deleting a vertex converts its copy command into an add command, which
/// costs compression; picking the globally cheapest set is NP-hard
/// (feedback vertex set), so the paper evaluates two heuristics and we add
/// an exact solver for ablation on small inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CyclePolicy {
    /// Delete the vertex at which the cycle was detected — "the last node
    /// in sort order before the cycle was found". O(1) per cycle.
    ConstantTime,
    /// Walk the detected cycle and delete its minimum-cost vertex. Costs
    /// time proportional to the total length of cycles found, but recovers
    /// nearly all the compression the constant-time policy loses (§7).
    LocallyMinimum,
    /// Solve minimum-cost feedback vertex set exactly before sorting.
    /// Exponential in the largest strongly connected component; usable
    /// only when every cyclic component has at most `limit` vertices.
    /// This is the NP-hard global optimum the paper compares against
    /// analytically (§5).
    Exhaustive {
        /// Largest cyclic strongly-connected-component size to attempt.
        limit: usize,
    },
}

impl CyclePolicy {
    /// The policies the paper evaluates experimentally.
    pub const PAPER: [CyclePolicy; 2] = [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum];
}

impl Default for CyclePolicy {
    /// [`CyclePolicy::LocallyMinimum`], the paper's recommendation
    /// ("superior … for every performance metric we have considered").
    fn default() -> Self {
        CyclePolicy::LocallyMinimum
    }
}

impl fmt::Display for CyclePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CyclePolicy::ConstantTime => f.write_str("constant-time"),
            CyclePolicy::LocallyMinimum => f.write_str("locally-minimum"),
            CyclePolicy::Exhaustive { limit } => write!(f, "exhaustive(limit={limit})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_locally_minimum() {
        assert_eq!(CyclePolicy::default(), CyclePolicy::LocallyMinimum);
    }

    #[test]
    fn display_nonempty() {
        for p in [
            CyclePolicy::ConstantTime,
            CyclePolicy::LocallyMinimum,
            CyclePolicy::Exhaustive { limit: 12 },
        ] {
            assert!(!p.to_string().is_empty());
        }
    }

    #[test]
    fn paper_policies() {
        assert_eq!(CyclePolicy::PAPER.len(), 2);
    }
}

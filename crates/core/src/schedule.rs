//! Parallel application scheduling.
//!
//! §4.1 of the paper restricts itself to applying commands *serially*,
//! "appropriate for limited capability network devices". The CRWI digraph
//! supports more: any two retained copies without a path between them can
//! run concurrently (their reads and writes cannot conflict), so a device
//! with DMA queues — or a host-side patcher with threads — can apply the
//! delta in *waves*. This module computes the longest-path layering of
//! the conflict DAG: the number of waves is the critical path of the
//! update, and `commands / waves` is the available parallelism.

use crate::crwi::CrwiGraph;
use crate::verify::check_in_place_safe;
use ipr_delta::DeltaScript;
use ipr_digraph::topo;

/// A wave-parallel application plan for a converted (Equation 2) script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelSchedule {
    /// Command indices per wave; all commands of a wave may be applied
    /// concurrently, waves strictly in order. The final wave holds the
    /// add commands (and any copies nothing depends on).
    waves: Vec<Vec<usize>>,
    /// Total commands scheduled.
    commands: usize,
}

impl ParallelSchedule {
    /// Builds the schedule for a converted, in-place-safe script.
    ///
    /// Returns `None` if the script violates Equation 2 (a serial-unsafe
    /// script cannot be parallelized either).
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_delta::{Command, DeltaScript};
    /// use ipr_core::ParallelSchedule;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // Two independent copies + one add: two waves (copies together,
    /// // then the add).
    /// let script = DeltaScript::new(16, 16, vec![
    ///     Command::copy(8, 0, 4),
    ///     Command::copy(12, 4, 4),
    ///     Command::add(8, vec![0; 8]),
    /// ])?;
    /// let plan = ParallelSchedule::plan(&script).expect("safe script");
    /// assert_eq!(plan.wave_count(), 2);
    /// assert_eq!(plan.waves()[0].len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn plan(script: &DeltaScript) -> Option<Self> {
        let _span = ipr_trace::span("schedule.plan");
        if check_in_place_safe(script).is_err() {
            return None;
        }
        if script.is_empty() {
            return Some(Self {
                waves: Vec::new(),
                commands: 0,
            });
        }
        // Map the script's copies onto CRWI vertices. CrwiGraph sorts by
        // write offset; recover each command's vertex through its unique
        // write offset.
        let copies = script.copies();
        let crwi = CrwiGraph::build(copies);
        let graph = crwi.graph();
        // Longest-path layering over the DAG: wave(v) = 1 + max over
        // predecessors. Process in topological order.
        let order = topo::kahn(graph).expect("a safe script's conflict graph is acyclic");
        let mut level = vec![0usize; graph.node_count()];
        for &u in &order {
            for &v in graph.successors(u) {
                level[v as usize] = level[v as usize].max(level[u as usize] + 1);
            }
        }
        let copy_waves = level.iter().copied().max().map_or(0, |m| m + 1);

        // Adds never read the reference, but copies must read it before
        // any add clobbers it: adds share one dedicated final wave.
        let total_waves = copy_waves + usize::from(script.add_count() > 0);
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); total_waves];
        for (i, cmd) in script.commands().iter().enumerate() {
            match cmd.read_interval() {
                Some(_) => {
                    // CrwiGraph::copies() is sorted by write offset and
                    // write offsets are unique: binary search recovers the
                    // vertex without a hash map.
                    let v = crwi
                        .copies()
                        .binary_search_by_key(&cmd.to(), |c| c.to)
                        .expect("every copy has a unique write offset");
                    waves[level[v]].push(i);
                }
                None => waves[total_waves - 1].push(i),
            }
        }
        waves.retain(|w| !w.is_empty());
        let plan = Self {
            commands: script.len(),
            waves,
        };
        if ipr_trace::enabled() {
            let parallelism_milli = (plan.parallelism() * 1000.0) as u64;
            ipr_trace::with(|r| {
                r.add("schedule.waves", plan.wave_count() as u64);
                r.gauge("schedule.parallelism_milli", parallelism_milli);
            });
        }
        Some(plan)
    }

    /// The waves, each a list of command indices.
    #[must_use]
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// Number of waves — the critical path of the update.
    #[must_use]
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// A copy of this schedule with the commands of every wave reordered
    /// pseudo-randomly (deterministic in `seed`).
    ///
    /// Wave membership is what the disjointness proof relies on; the order
    /// *within* a wave must not matter. Tests use this to drive the
    /// parallel applier through adversarial intra-wave orderings.
    #[must_use]
    pub fn permuted_within_waves(&self, seed: u64) -> Self {
        // SplitMix64: small, seedable, good enough to shuffle with.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut waves = self.waves.clone();
        for wave in &mut waves {
            // Fisher–Yates.
            for i in (1..wave.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                wave.swap(i, j);
            }
        }
        Self {
            waves,
            commands: self.commands,
        }
    }

    /// Average commands per wave (1.0 = fully serial).
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        if self.waves.is_empty() {
            0.0
        } else {
            self.commands as f64 / self.waves.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{convert_to_in_place, ConversionConfig};
    use ipr_delta::diff::{Differ, GreedyDiffer};
    use ipr_delta::Command;

    /// Applies a schedule wave by wave (commands within a wave in an
    /// adversarial order) and checks the result.
    fn apply_waves(script: &DeltaScript, plan: &ParallelSchedule, reference: &[u8]) -> Vec<u8> {
        let mut buf = reference.to_vec();
        buf.resize(crate::apply::required_capacity(script) as usize, 0);
        for wave in plan.waves() {
            // Simulate concurrency: snapshot reads first (all reads in a
            // wave see the pre-wave buffer), then perform writes.
            let mut writes: Vec<(usize, Vec<u8>)> = Vec::new();
            for &i in wave.iter().rev() {
                match &script.commands()[i] {
                    Command::Copy(c) => {
                        writes.push((
                            c.to as usize,
                            buf[c.read_interval().as_usize_range()].to_vec(),
                        ));
                    }
                    Command::Add(a) => writes.push((a.to as usize, a.data.clone())),
                }
            }
            for (to, data) in writes {
                buf[to..to + data.len()].copy_from_slice(&data);
            }
        }
        buf.truncate(script.target_len() as usize);
        buf
    }

    #[test]
    fn unsafe_script_not_schedulable() {
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(0, 8, 8), Command::copy(8, 0, 8)]).unwrap();
        assert!(ParallelSchedule::plan(&script).is_none());
    }

    #[test]
    fn independent_copies_share_a_wave() {
        let script = DeltaScript::new(
            32,
            16,
            vec![
                Command::copy(16, 0, 4),
                Command::copy(20, 4, 4),
                Command::copy(24, 8, 4),
                Command::copy(28, 12, 4),
            ],
        )
        .unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        assert_eq!(plan.wave_count(), 1);
        assert!((plan.parallelism() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn chains_serialize() {
        // A dependency chain: shift left. Command i reads what i+1 writes,
        // so each must precede the next: n waves.
        let cmds: Vec<Command> = (0..5u64)
            .map(|i| Command::copy(4 * (i + 1), 4 * i, 4))
            .collect();
        let script = DeltaScript::new(24, 20, cmds).unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        assert_eq!(plan.wave_count(), 5);
    }

    #[test]
    fn wave_application_matches_serial_on_corpus_pair() {
        let reference: Vec<u8> = (0..20_000u32).map(|i| (i * 17 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(4_321);
        version.extend_from_slice(&[7u8; 500]);
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
        assert_eq!(apply_waves(&out.script, &plan, &reference), version);
        // Every command scheduled exactly once.
        let mut seen = vec![false; out.script.len()];
        for wave in plan.waves() {
            for &i in wave {
                assert!(!seen[i], "command {i} scheduled twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn adds_go_last() {
        let script = DeltaScript::new(
            8,
            12,
            vec![Command::copy(0, 4, 8), Command::add(0, vec![1; 4])],
        )
        .unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        let last = plan.waves().last().unwrap();
        assert!(last.contains(&1));
    }

    #[test]
    fn permutation_preserves_wave_membership() {
        let reference: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 241) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(1_234);
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let plan = ParallelSchedule::plan(&out.script).unwrap();
        let shuffled = plan.permuted_within_waves(0xfeed);
        assert_eq!(plan.wave_count(), shuffled.wave_count());
        for (a, b) in plan.waves().iter().zip(shuffled.waves()) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "same membership per wave");
        }
        // Same seed reproduces, different seed (on a large plan) differs.
        assert_eq!(shuffled, plan.permuted_within_waves(0xfeed));
        // The shuffled schedule still applies correctly.
        assert_eq!(apply_waves(&out.script, &shuffled, &reference), version);
    }

    #[test]
    fn empty_script_plans_empty() {
        let script = DeltaScript::new(4, 0, vec![]).unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        assert_eq!(plan.wave_count(), 0);
        assert_eq!(plan.parallelism(), 0.0);
    }
}

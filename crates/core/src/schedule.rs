//! Parallel application scheduling.
//!
//! §4.1 of the paper restricts itself to applying commands *serially*,
//! "appropriate for limited capability network devices". The CRWI digraph
//! supports more: any two retained copies without a path between them can
//! run concurrently (their reads and writes cannot conflict), so a device
//! with DMA queues — or a host-side patcher with threads — can apply the
//! delta in *waves*. This module computes the longest-path layering of
//! the conflict DAG: the number of waves is the critical path of the
//! update, and `commands / waves` is the available parallelism.

use crate::crwi;
use ipr_delta::{Command, Copy, DeltaScript};
use ipr_digraph::topo::{kahn_into, KahnScratch};
use ipr_digraph::{Digraph, NodeId};

/// A wave-parallel application plan for a converted (Equation 2) script.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelSchedule {
    /// Command indices per wave; all commands of a wave may be applied
    /// concurrently, waves strictly in order. The final wave holds the
    /// add commands (and any copies nothing depends on).
    waves: Vec<Vec<usize>>,
    /// Total commands scheduled.
    commands: usize,
}

impl ParallelSchedule {
    /// Builds the schedule for a converted, in-place-safe script.
    ///
    /// Returns `None` if the script violates Equation 2 (a serial-unsafe
    /// script cannot be parallelized either).
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_delta::{Command, DeltaScript};
    /// use ipr_core::ParallelSchedule;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // Two independent copies + one add: two waves (copies together,
    /// // then the add).
    /// let script = DeltaScript::new(16, 16, vec![
    ///     Command::copy(8, 0, 4),
    ///     Command::copy(12, 4, 4),
    ///     Command::add(8, vec![0; 8]),
    /// ])?;
    /// let plan = ParallelSchedule::plan(&script).expect("safe script");
    /// assert_eq!(plan.wave_count(), 2);
    /// assert_eq!(plan.waves()[0].len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn plan(script: &DeltaScript) -> Option<Self> {
        let mut scratch = ScheduleScratch::new();
        scratch.plan(script)?;
        Some(std::mem::take(&mut scratch.plan))
    }

    /// The waves, each a list of command indices.
    #[must_use]
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// Number of waves — the critical path of the update.
    #[must_use]
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// A copy of this schedule with the commands of every wave reordered
    /// pseudo-randomly (deterministic in `seed`).
    ///
    /// Wave membership is what the disjointness proof relies on; the order
    /// *within* a wave must not matter. Tests use this to drive the
    /// parallel applier through adversarial intra-wave orderings.
    #[must_use]
    pub fn permuted_within_waves(&self, seed: u64) -> Self {
        // SplitMix64: small, seedable, good enough to shuffle with.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut waves = self.waves.clone();
        for wave in &mut waves {
            // Fisher–Yates.
            for i in (1..wave.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                wave.swap(i, j);
            }
        }
        Self {
            waves,
            commands: self.commands,
        }
    }

    /// Average commands per wave (1.0 = fully serial).
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        if self.waves.is_empty() {
            0.0
        } else {
            self.commands as f64 / self.waves.len() as f64
        }
    }
}

/// Reusable working storage for wave scheduling.
///
/// Owns the CRWI digraph buffers, Kahn toposort scratch, the level
/// vector, and the produced [`ParallelSchedule`] itself (wave vectors
/// included), so repeated planning through one scratch performs no heap
/// allocation once warm.
#[derive(Debug, Default)]
pub struct ScheduleScratch {
    copies: Vec<Copy>,
    graph: Digraph,
    graph_spare: Vec<Vec<NodeId>>,
    kahn: KahnScratch,
    order: Vec<NodeId>,
    level: Vec<usize>,
    wave_sizes: Vec<usize>,
    wave_order: Vec<usize>,
    wave_spare: Vec<Vec<usize>>,
    writes: Vec<(u64, u64, usize)>,
    plan: ParallelSchedule,
}

/// Scratch-based Equation 2 check, verdict-identical to
/// [`check_in_place_safe`]: a script is unsafe iff some command's read
/// interval overlaps the write interval of an *earlier* command. Write
/// intervals are pairwise disjoint (a [`DeltaScript`] invariant), so
/// sorting them by start makes the overlap query a binary search, and the
/// sorted buffer is reusable across calls.
fn is_safe_into(script: &DeltaScript, writes: &mut Vec<(u64, u64, usize)>) -> bool {
    writes.clear();
    writes.extend(script.commands().iter().enumerate().map(|(i, cmd)| {
        let w = cmd.write_interval();
        (w.start(), w.end(), i)
    }));
    writes.sort_unstable();
    for (reader, cmd) in script.commands().iter().enumerate() {
        let Some(read) = cmd.read_interval() else {
            continue;
        };
        // Disjoint sorted writes: ends are sorted too, so the first
        // candidate is the first write ending past the read's start.
        let mut k = writes.partition_point(|&(_, end, _)| end <= read.start());
        while let Some(&(start, _, writer)) = writes.get(k) {
            if start >= read.end() {
                break;
            }
            if writer < reader {
                return false;
            }
            k += 1;
        }
    }
    true
}

impl ScheduleScratch {
    /// Creates an empty scratch. Storage is grown on first use and reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch-based equivalent of [`ParallelSchedule::plan`]: identical
    /// schedule, built into this scratch's storage. The returned borrow is
    /// valid until the next plan; clone it to keep it longer.
    pub fn plan(&mut self, script: &DeltaScript) -> Option<&ParallelSchedule> {
        self.plan_impl(script, true)
    }

    /// Like [`ScheduleScratch::plan`] but skips the Equation 2 safety
    /// check — for callers that just converted the script and know it is
    /// in-place safe. Still returns `None` (never panics) if the conflict
    /// graph unexpectedly has a cycle.
    pub fn plan_trusted(&mut self, script: &DeltaScript) -> Option<&ParallelSchedule> {
        self.plan_impl(script, false)
    }

    fn plan_impl(&mut self, script: &DeltaScript, validate: bool) -> Option<&ParallelSchedule> {
        let _span = ipr_trace::span("schedule.plan");
        if validate && !is_safe_into(script, &mut self.writes) {
            return None;
        }
        let Self {
            copies,
            graph,
            graph_spare,
            kahn,
            order,
            level,
            wave_sizes,
            wave_order,
            wave_spare,
            writes: _,
            plan,
        } = self;
        if script.is_empty() {
            for mut w in plan.waves.drain(..) {
                w.clear();
                wave_spare.push(w);
            }
            plan.commands = 0;
            return Some(plan);
        }
        // Map the script's copies onto CRWI vertices: sort by write offset
        // (unique in a valid script, so the unstable sort is deterministic)
        // and recover each command's vertex by binary search.
        copies.clear();
        copies.extend(script.commands().iter().filter_map(|cmd| match cmd {
            Command::Copy(c) => Some(*c),
            Command::Add(_) => None,
        }));
        copies.sort_unstable_by_key(|c| c.to);
        graph.reset_with_spare(copies.len(), graph_spare);
        crwi::build_edges_into(copies, graph);
        // Longest-path layering over the DAG: wave(v) = 1 + max over
        // predecessors. Process in topological order.
        if kahn_into(graph, kahn, order).is_err() {
            assert!(!validate, "a safe script's conflict graph is acyclic");
            return None;
        }
        level.clear();
        level.resize(graph.node_count(), 0);
        for &u in order.iter() {
            for &v in graph.successors(u) {
                level[v as usize] = level[v as usize].max(level[u as usize] + 1);
            }
        }
        let copy_waves = level.iter().copied().max().map_or(0, |m| m + 1);

        // Adds never read the reference, but copies must read it before
        // any add clobbers it: adds share one dedicated final wave.
        let total_waves = copy_waves + usize::from(script.add_count() > 0);
        // Wave sizes are known before filling (the level histogram), so
        // recycled vectors can be assigned capacity-aware: the largest
        // spare vector goes to the largest wave. Once the spare pool's
        // capacities dominate a workload's wave sizes, planning allocates
        // nothing — arbitrary (LIFO) assignment never converges, because a
        // small vector landing on a big wave regrows every time.
        wave_sizes.clear();
        wave_sizes.resize(total_waves, 0);
        for &l in level.iter() {
            wave_sizes[l] += 1;
        }
        if script.add_count() > 0 {
            wave_sizes[total_waves - 1] += script.add_count();
        }
        let waves = &mut plan.waves;
        for mut w in waves.drain(..) {
            w.clear();
            wave_spare.push(w);
        }
        while wave_spare.len() < total_waves {
            wave_spare.push(Vec::new());
        }
        wave_spare.sort_unstable_by_key(Vec::capacity);
        wave_order.clear();
        wave_order.extend(0..total_waves);
        wave_order.sort_unstable_by_key(|&w| std::cmp::Reverse(wave_sizes[w]));
        waves.resize_with(total_waves, Vec::new);
        for &w in wave_order.iter() {
            waves[w] = wave_spare.pop().expect("pool topped up above");
        }
        for (i, cmd) in script.commands().iter().enumerate() {
            match cmd.read_interval() {
                Some(_) => {
                    let v = copies
                        .binary_search_by_key(&cmd.to(), |c| c.to)
                        .expect("every copy has a unique write offset");
                    waves[level[v]].push(i);
                }
                None => waves[total_waves - 1].push(i),
            }
        }
        // Stable compaction of non-empty waves, spilling emptied storage
        // into the spare list (the allocation-free `retain`).
        let mut kept = 0;
        for idx in 0..waves.len() {
            if !waves[idx].is_empty() {
                waves.swap(kept, idx);
                kept += 1;
            }
        }
        wave_spare.extend(waves.drain(kept..));
        plan.commands = script.len();
        if ipr_trace::enabled() {
            let parallelism_milli = (plan.parallelism() * 1000.0) as u64;
            ipr_trace::with(|r| {
                r.add("schedule.waves", plan.wave_count() as u64);
                r.gauge("schedule.parallelism_milli", parallelism_milli);
            });
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{convert_to_in_place, ConversionConfig};
    use ipr_delta::diff::{Differ, GreedyDiffer};
    use ipr_delta::Command;

    /// Applies a schedule wave by wave (commands within a wave in an
    /// adversarial order) and checks the result.
    fn apply_waves(script: &DeltaScript, plan: &ParallelSchedule, reference: &[u8]) -> Vec<u8> {
        let mut buf = reference.to_vec();
        buf.resize(crate::apply::required_capacity(script) as usize, 0);
        for wave in plan.waves() {
            // Simulate concurrency: snapshot reads first (all reads in a
            // wave see the pre-wave buffer), then perform writes.
            let mut writes: Vec<(usize, Vec<u8>)> = Vec::new();
            for &i in wave.iter().rev() {
                match &script.commands()[i] {
                    Command::Copy(c) => {
                        writes.push((
                            c.to as usize,
                            buf[c.read_interval().as_usize_range()].to_vec(),
                        ));
                    }
                    Command::Add(a) => writes.push((a.to as usize, a.data.clone())),
                }
            }
            for (to, data) in writes {
                buf[to..to + data.len()].copy_from_slice(&data);
            }
        }
        buf.truncate(script.target_len() as usize);
        buf
    }

    #[test]
    fn unsafe_script_not_schedulable() {
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(0, 8, 8), Command::copy(8, 0, 8)]).unwrap();
        assert!(ParallelSchedule::plan(&script).is_none());
    }

    #[test]
    fn independent_copies_share_a_wave() {
        let script = DeltaScript::new(
            32,
            16,
            vec![
                Command::copy(16, 0, 4),
                Command::copy(20, 4, 4),
                Command::copy(24, 8, 4),
                Command::copy(28, 12, 4),
            ],
        )
        .unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        assert_eq!(plan.wave_count(), 1);
        assert!((plan.parallelism() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn chains_serialize() {
        // A dependency chain: shift left. Command i reads what i+1 writes,
        // so each must precede the next: n waves.
        let cmds: Vec<Command> = (0..5u64)
            .map(|i| Command::copy(4 * (i + 1), 4 * i, 4))
            .collect();
        let script = DeltaScript::new(24, 20, cmds).unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        assert_eq!(plan.wave_count(), 5);
    }

    #[test]
    fn wave_application_matches_serial_on_corpus_pair() {
        let reference: Vec<u8> = (0..20_000u32).map(|i| (i * 17 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(4_321);
        version.extend_from_slice(&[7u8; 500]);
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
        assert_eq!(apply_waves(&out.script, &plan, &reference), version);
        // Every command scheduled exactly once.
        let mut seen = vec![false; out.script.len()];
        for wave in plan.waves() {
            for &i in wave {
                assert!(!seen[i], "command {i} scheduled twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn adds_go_last() {
        let script = DeltaScript::new(
            8,
            12,
            vec![Command::copy(0, 4, 8), Command::add(0, vec![1; 4])],
        )
        .unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        let last = plan.waves().last().unwrap();
        assert!(last.contains(&1));
    }

    #[test]
    fn permutation_preserves_wave_membership() {
        let reference: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 241) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(1_234);
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let plan = ParallelSchedule::plan(&out.script).unwrap();
        let shuffled = plan.permuted_within_waves(0xfeed);
        assert_eq!(plan.wave_count(), shuffled.wave_count());
        for (a, b) in plan.waves().iter().zip(shuffled.waves()) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "same membership per wave");
        }
        // Same seed reproduces, different seed (on a large plan) differs.
        assert_eq!(shuffled, plan.permuted_within_waves(0xfeed));
        // The shuffled schedule still applies correctly.
        assert_eq!(apply_waves(&out.script, &shuffled, &reference), version);
    }

    #[test]
    fn scratch_reuse_matches_fresh_plans() {
        // One scratch reused across heterogeneous scripts (including empty
        // and unsafe ones) must reproduce the fresh-plan results exactly.
        let reference: Vec<u8> = (0..10_000u32).map(|i| (i * 13 % 239) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(777);
        let diffed = GreedyDiffer::default().diff(&reference, &version);
        let converted = convert_to_in_place(&diffed, &reference, &ConversionConfig::default())
            .unwrap()
            .script;
        let scripts = vec![
            converted,
            DeltaScript::new(4, 0, vec![]).unwrap(),
            DeltaScript::new(
                8,
                12,
                vec![Command::copy(0, 4, 8), Command::add(0, vec![1; 4])],
            )
            .unwrap(),
            // Unsafe: both paths must agree on None.
            DeltaScript::new(16, 16, vec![Command::copy(0, 8, 8), Command::copy(8, 0, 8)]).unwrap(),
        ];
        let mut scratch = ScheduleScratch::new();
        for script in &scripts {
            let fresh = ParallelSchedule::plan(script);
            let reused = scratch.plan(script).cloned();
            assert_eq!(reused, fresh);
            if crate::verify::is_in_place_safe(script) {
                let trusted = scratch.plan_trusted(script).cloned();
                assert_eq!(trusted, fresh);
            }
        }
    }

    #[test]
    fn scratch_safety_check_matches_verifier() {
        // The scheduler's allocation-free Equation 2 check must agree
        // with `check_in_place_safe` on safe, unsafe and add-clobbering
        // scripts alike.
        let reference: Vec<u8> = (0..4_000u32).map(|i| (i * 7 % 233) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(321);
        let diffed = GreedyDiffer::default().diff(&reference, &version);
        let converted = convert_to_in_place(&diffed, &reference, &ConversionConfig::default())
            .unwrap()
            .script;
        let mut scripts = vec![
            diffed,
            converted,
            DeltaScript::new(4, 0, vec![]).unwrap(),
            DeltaScript::new(16, 16, vec![Command::copy(0, 8, 8), Command::copy(8, 0, 8)]).unwrap(),
            // An add clobbering a later read.
            DeltaScript::new(
                8,
                12,
                vec![Command::add(0, vec![1; 4]), Command::copy(0, 4, 8)],
            )
            .unwrap(),
            // A copy whose own read and write overlap: not a violation.
            DeltaScript::new(8, 6, vec![Command::copy(2, 0, 6)]).unwrap(),
        ];
        // Adversarial permutations of the converted script.
        let safe = scripts[1].clone();
        let order: Vec<usize> = (0..safe.len()).rev().collect();
        scripts.push(safe.permuted(&order));
        let mut writes = Vec::new();
        for script in &scripts {
            assert_eq!(
                is_safe_into(script, &mut writes),
                crate::verify::is_in_place_safe(script),
                "verdicts diverge on {script:?}"
            );
        }
    }

    #[test]
    fn empty_script_plans_empty() {
        let script = DeltaScript::new(4, 0, vec![]).unwrap();
        let plan = ParallelSchedule::plan(&script).unwrap();
        assert_eq!(plan.wave_count(), 0);
        assert_eq!(plan.parallelism(), 0.0);
    }
}

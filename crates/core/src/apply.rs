//! In-place application: rebuild the version file in the buffer that holds
//! the reference file, with no scratch space.
//!
//! Copy commands whose read and write intervals overlap are performed
//! directionally (§4.1): left-to-right when `from >= to`, right-to-left
//! when `from < to`, so no byte is read after the command itself has
//! overwritten it. The paper notes the rule applies to "moving a
//! read/write buffer of any size"; [`apply_in_place_buffered`] implements
//! exactly that, modelling a device that stages copies through a small
//! RAM buffer while the file lives in storage.

use ipr_delta::{Command, DeltaScript};
use std::fmt;

/// Error returned by the in-place appliers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InPlaceApplyError {
    /// The buffer must hold `max(source_len, target_len)` bytes.
    BufferTooSmall {
        /// Required capacity.
        needed: u64,
        /// Supplied capacity.
        actual: u64,
    },
}

impl fmt::Display for InPlaceApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InPlaceApplyError::BufferTooSmall { needed, actual } => {
                write!(f, "in-place buffer holds {actual} bytes, need {needed}")
            }
        }
    }
}

impl std::error::Error for InPlaceApplyError {}

/// Applies `script` to `buf` in place, serially, in command order.
///
/// `buf` must contain the reference file in its first `source_len` bytes
/// and be at least `max(source_len, target_len)` bytes long; afterwards
/// its first `target_len` bytes hold the version file.
///
/// **This function trusts the command order.** Applying a script that
/// violates Equation 2 (see
/// [`check_in_place_safe`](crate::check_in_place_safe)) silently produces
/// corrupt output — that is precisely the failure mode the paper's
/// conversion algorithm exists to prevent. Scripts produced by
/// [`convert_to_in_place`](crate::convert_to_in_place) are always safe.
///
/// # Errors
///
/// Returns [`InPlaceApplyError::BufferTooSmall`] if `buf` cannot hold both
/// file versions.
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
/// use ipr_core::apply_in_place;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let script = DeltaScript::new(4, 4, vec![
///     Command::copy(2, 0, 2),
///     Command::add(2, b"!!".to_vec()),
/// ])?;
/// let mut buf = b"abcd".to_vec();
/// apply_in_place(&script, &mut buf)?;
/// assert_eq!(&buf, b"cd!!");
/// # Ok(())
/// # }
/// ```
pub fn apply_in_place(script: &DeltaScript, buf: &mut [u8]) -> Result<(), InPlaceApplyError> {
    check_capacity(script, buf)?;
    let _span = ipr_trace::span("apply.serial");
    if ipr_trace::enabled() {
        let bytes: u64 = script.commands().iter().map(ipr_delta::Command::len).sum();
        ipr_trace::with(|r| {
            r.add("apply.commands", script.len() as u64);
            r.add("apply.bytes_moved", bytes);
        });
    }
    for cmd in script.commands() {
        match cmd {
            Command::Copy(c) => {
                let src = c.read_interval().as_usize_range();
                let dst = usize::try_from(c.to).expect("offset fits usize");
                // `copy_within` has memmove semantics: it behaves as the
                // paper's left-to-right / right-to-left rule for
                // self-overlapping copies.
                buf.copy_within(src, dst);
            }
            Command::Add(a) => {
                let dst = a.write_interval().as_usize_range();
                buf[dst].copy_from_slice(&a.data);
            }
        }
    }
    Ok(())
}

/// Like [`apply_in_place`], but stages every copy through a bounce buffer
/// of `chunk_size` bytes, moving left-to-right when `from >= to` and
/// right-to-left otherwise — the paper's directional rule at arbitrary
/// buffer granularity, as a storage-constrained device would implement it.
///
/// Produces byte-identical results to [`apply_in_place`] for every
/// `chunk_size >= 1` (invariant I8 of DESIGN.md).
///
/// # Errors
///
/// Returns [`InPlaceApplyError::BufferTooSmall`] if `buf` cannot hold both
/// file versions.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn apply_in_place_buffered(
    script: &DeltaScript,
    buf: &mut [u8],
    chunk_size: usize,
) -> Result<(), InPlaceApplyError> {
    assert!(chunk_size > 0, "chunk size must be positive");
    check_capacity(script, buf)?;
    let mut bounce = vec![0u8; chunk_size];
    for cmd in script.commands() {
        match cmd {
            Command::Copy(c) => {
                let from = usize::try_from(c.from).expect("offset fits usize");
                let to = usize::try_from(c.to).expect("offset fits usize");
                let len = usize::try_from(c.len).expect("length fits usize");
                if from >= to {
                    // Left-to-right: the read cursor stays ahead of the
                    // write cursor, so already-written bytes are never read.
                    let mut done = 0;
                    while done < len {
                        let n = chunk_size.min(len - done);
                        bounce[..n].copy_from_slice(&buf[from + done..from + done + n]);
                        buf[to + done..to + done + n].copy_from_slice(&bounce[..n]);
                        done += n;
                    }
                } else {
                    // Right-to-left: symmetric argument.
                    let mut remaining = len;
                    while remaining > 0 {
                        let n = chunk_size.min(remaining);
                        let off = remaining - n;
                        bounce[..n].copy_from_slice(&buf[from + off..from + off + n]);
                        buf[to + off..to + off + n].copy_from_slice(&bounce[..n]);
                        remaining -= n;
                    }
                }
            }
            Command::Add(a) => {
                let dst = a.write_interval().as_usize_range();
                buf[dst].copy_from_slice(&a.data);
            }
        }
    }
    Ok(())
}

/// The buffer capacity in bytes that in-place application of `script`
/// requires: `max(source_len, target_len)`.
#[must_use]
pub fn required_capacity(script: &DeltaScript) -> u64 {
    script.source_len().max(script.target_len())
}

fn check_capacity(script: &DeltaScript, buf: &[u8]) -> Result<(), InPlaceApplyError> {
    let needed = required_capacity(script);
    if (buf.len() as u64) < needed {
        return Err(InPlaceApplyError::BufferTooSmall {
            needed,
            actual: buf.len() as u64,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_delta::apply;

    fn rotation_script() -> (DeltaScript, Vec<u8>) {
        // Rotate a 16-byte file left by 4 with overlapping copies.
        let script = DeltaScript::new(
            16,
            16,
            vec![
                Command::copy(4, 0, 12), // self-overlapping, left-to-right
                Command::copy(0, 12, 4),
            ],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..16).collect();
        (script, reference)
    }

    #[test]
    fn overlapping_forward_copy_left_to_right() {
        let (script, reference) = rotation_script();
        // This order is NOT safe (command 1 reads [0,4) which command 0
        // wrote), so convert first — here we just exercise the
        // self-overlap handling of command 0 in isolation.
        let solo = DeltaScript::new(16, 12, vec![Command::copy(4, 0, 12)]).unwrap();
        let mut buf = reference.clone();
        apply_in_place(&solo, &mut buf).unwrap();
        assert_eq!(&buf[..12], &reference[4..16]);
        let _ = script;
    }

    #[test]
    fn overlapping_backward_copy_right_to_left() {
        // from < to: shift right by 4 within the buffer.
        let solo = DeltaScript::new(
            12,
            16,
            vec![Command::copy(0, 4, 12), Command::add(0, vec![0xAA; 4])],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..12).collect();
        let mut buf = reference.clone();
        buf.resize(16, 0);
        apply_in_place(&solo, &mut buf).unwrap();
        assert_eq!(&buf[4..16], &reference[..]);
        assert_eq!(&buf[..4], &[0xAA; 4]);
    }

    #[test]
    fn buffered_matches_unbuffered_at_all_granularities() {
        let solo = DeltaScript::new(
            64,
            64,
            vec![
                Command::copy(8, 0, 40),   // forward self-overlap
                Command::copy(40, 48, 16), // backward overlap (from < to)
                Command::add(40, vec![7; 8]),
            ],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..64).collect();
        let mut expected = reference.clone();
        apply_in_place(&solo, &mut expected).unwrap();
        for chunk in [1usize, 2, 3, 5, 7, 16, 64, 1024] {
            let mut buf = reference.clone();
            apply_in_place_buffered(&solo, &mut buf, chunk).unwrap();
            assert_eq!(buf, expected, "chunk {chunk}");
        }
    }

    #[test]
    fn safe_script_matches_scratch_apply() {
        // A safe order rebuilt in place equals the scratch-space rebuild.
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
        let reference: Vec<u8> = (0u8..16).collect();
        // Order [copy(8->0), copy(0->8)] is unsafe; the safe order reads
        // [8,16) first. Actually copy(8,0,8) reads [8,16) and writes [0,8):
        // safe first. Then copy(0,8,8) reads [0,8) — clobbered! This 2-cycle
        // has no safe order; use the verified converter in convert.rs tests.
        // Here, apply a genuinely safe script: a single rotation via
        // non-conflicting regions.
        let safe = DeltaScript::new(
            16,
            16,
            vec![
                Command::copy(12, 0, 4),
                Command::add(4, vec![9; 8]),
                Command::copy(12, 12, 4),
            ],
        )
        .unwrap();
        assert!(crate::verify::is_in_place_safe(&safe));
        let expected = apply(&safe, &reference).unwrap();
        let mut buf = reference.clone();
        apply_in_place(&safe, &mut buf).unwrap();
        assert_eq!(&buf[..16], &expected[..]);
        let _ = script;
    }

    #[test]
    fn unsafe_script_corrupts_demonstrably() {
        // The motivating failure: apply an unconverted delta in place and
        // watch it corrupt.
        let unsafe_script =
            DeltaScript::new(16, 16, vec![Command::copy(0, 8, 8), Command::copy(8, 0, 8)]).unwrap();
        let reference: Vec<u8> = (0u8..16).collect();
        let expected = apply(&unsafe_script, &reference).unwrap();
        let mut buf = reference.clone();
        apply_in_place(&unsafe_script, &mut buf).unwrap();
        assert_ne!(&buf[..16], &expected[..], "in-place naive apply corrupts");
    }

    #[test]
    fn buffer_too_small_rejected() {
        let script = DeltaScript::new(8, 8, vec![Command::copy(0, 0, 8)]).unwrap();
        let mut buf = vec![0u8; 4];
        let err = apply_in_place(&script, &mut buf).unwrap_err();
        assert_eq!(
            err,
            InPlaceApplyError::BufferTooSmall {
                needed: 8,
                actual: 4
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn required_capacity_is_max_of_lengths() {
        let grow = DeltaScript::new(4, 10, vec![Command::add(0, vec![1; 10])]).unwrap();
        assert_eq!(required_capacity(&grow), 10);
        let shrink = DeltaScript::new(10, 4, vec![Command::copy(0, 0, 4)]).unwrap();
        assert_eq!(required_capacity(&shrink), 10);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        let script = DeltaScript::new(1, 1, vec![Command::copy(0, 0, 1)]).unwrap();
        let mut buf = vec![0u8; 1];
        let _ = apply_in_place_buffered(&script, &mut buf, 0);
    }
}

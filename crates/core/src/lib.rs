//! In-place reconstruction of delta compressed files — the primary
//! contribution of Burns & Long, PODC 1998.
//!
//! A delta file normally needs scratch space to apply: its copy commands
//! read the reference file while the version file materializes elsewhere.
//! This crate post-processes a delta so it can rebuild the new version *in
//! the storage the old version occupies*:
//!
//! * [`CrwiGraph`] encodes potential write-before-read conflicts between
//!   copy commands as a digraph (§4.2);
//! * [`sort_breaking_cycles`] topologically sorts it, deleting vertices
//!   per a [`CyclePolicy`] when cycles block progress (§4.2, §5);
//! * [`convert_to_in_place`] runs the full algorithm: reorder copies,
//!   convert deleted copies to adds, move adds last (§4);
//! * [`apply_in_place`] / [`apply_in_place_buffered`] rebuild the version
//!   serially in a single buffer (§4.1's directional overlapped copies);
//! * [`ParallelSchedule`] layers the conflict DAG into waves and
//!   [`apply_in_place_parallel`] executes them on worker threads with
//!   disjoint `&mut` slices — no locks, no `unsafe`;
//! * [`check_in_place_safe`] verifies the paper's Equation 2.
//!
//! # Example
//!
//! ```
//! use ipr_delta::diff::{Differ, GreedyDiffer};
//! use ipr_core::{apply_in_place, convert_to_in_place, ConversionConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reference: Vec<u8> = (0..=255).cycle().take(8192).collect();
//! let mut version = reference.clone();
//! version.rotate_left(1024); // a block move: creates conflicts
//!
//! let script = GreedyDiffer::default().diff(&reference, &version);
//! let outcome = convert_to_in_place(&script, &reference, &ConversionConfig::default())?;
//!
//! let mut buf = reference.clone(); // the device's only storage
//! apply_in_place(&outcome.script, &mut buf)?;
//! assert_eq!(buf, version);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod apply;
mod convert;
mod crwi;
mod parallel;
mod policy;
mod schedule;
mod toposort;
mod verify;

pub mod resumable;
pub mod spill;

pub use analysis::CrwiStats;
pub use schedule::ParallelSchedule;

pub use apply::{apply_in_place, apply_in_place_buffered, required_capacity, InPlaceApplyError};
pub use convert::{
    convert_in_place_pooled, convert_to_in_place, diff_in_place, ConversionConfig,
    ConversionReport, ConvertError, ConvertScratch, InPlaceOutcome,
};
pub use crwi::CrwiGraph;
pub use parallel::{
    apply_in_place_parallel, apply_schedule_parallel, ParallelApplyError, ParallelApplyReport,
    ParallelConfig, ReadMode,
};
pub use policy::CyclePolicy;
pub use schedule::ScheduleScratch;
pub use toposort::{
    is_valid_outcome, sort_breaking_cycles, sort_breaking_cycles_into, SortOutcome, SortScratch,
    SortStats,
};
pub use verify::{
    check_in_place_safe, count_wr_conflicts, is_in_place_safe, list_wr_conflicts, Conflict,
    WrViolation,
};

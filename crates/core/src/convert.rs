//! The in-place conversion algorithm (§4 of the paper).
//!
//! Takes an arbitrary delta script and produces an equivalent script that
//! reconstructs the version file correctly when applied serially to the
//! buffer holding the reference file:
//!
//! 1. partition commands into copies and adds (adds go last — they never
//!    read the reference, §4.1);
//! 2. sort the copies by write offset;
//! 3. build the CRWI conflict digraph;
//! 4. topologically sort it, breaking cycles by deleting vertices per the
//!    configured [`CyclePolicy`];
//! 5. emit retained copies in topological order;
//! 6. emit all adds — the original ones plus the deleted copies converted
//!    to adds (their data materialized from the reference file).

use crate::crwi;
use crate::policy::CyclePolicy;
use crate::toposort::{sort_breaking_cycles_into, SortScratch};
use ipr_delta::codec::Format;
use ipr_delta::{Add, Command, Copy, DeltaScript, ScriptPool};
use ipr_digraph::fvs::ComponentTooLarge;
use ipr_digraph::{Digraph, NodeId};
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration for [`convert_to_in_place`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConversionConfig {
    /// Cycle-breaking policy (step 4).
    pub policy: CyclePolicy,
    /// Codeword format used as the *cost model*: deleting vertex `v`
    /// costs `format.conversion_cost(copy_v)` encoded bytes.
    pub cost_format: Format,
}

impl Default for ConversionConfig {
    /// Locally-minimum cycle breaking costed against the in-place varint
    /// format.
    fn default() -> Self {
        Self {
            policy: CyclePolicy::LocallyMinimum,
            cost_format: Format::InPlace,
        }
    }
}

impl ConversionConfig {
    /// Convenience constructor for a policy with the default cost format.
    #[must_use]
    pub fn with_policy(policy: CyclePolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }
}

/// Error returned by [`convert_to_in_place`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvertError {
    /// The reference buffer does not match the script's source length; the
    /// converter needs the reference to materialize converted adds.
    SourceLenMismatch {
        /// Length the script declares.
        expected: u64,
        /// Length of the buffer supplied.
        actual: u64,
    },
    /// The exhaustive policy met a strongly connected component larger
    /// than its limit.
    ComponentTooLarge(ComponentTooLarge),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::SourceLenMismatch { expected, actual } => {
                write!(f, "reference is {actual} bytes, script expects {expected}")
            }
            ConvertError::ComponentTooLarge(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ConvertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvertError::ComponentTooLarge(e) => Some(e),
            ConvertError::SourceLenMismatch { .. } => None,
        }
    }
}

impl From<ComponentTooLarge> for ConvertError {
    fn from(e: ComponentTooLarge) -> Self {
        ConvertError::ComponentTooLarge(e)
    }
}

/// Measurements from one conversion, the raw material of the paper's
/// Table 1 and timing results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConversionReport {
    /// Copy commands in the input script.
    pub input_copies: usize,
    /// Add commands in the input script.
    pub input_adds: usize,
    /// Edges in the CRWI digraph (potential WR conflicts).
    pub edges: usize,
    /// Cycles broken during the topological sort.
    pub cycles_broken: usize,
    /// Copy commands converted to adds.
    pub copies_converted: usize,
    /// Version bytes carried by converted commands (now literal in the
    /// delta).
    pub bytes_converted: u64,
    /// Delta growth in encoded bytes under the configured cost format
    /// (the "loss from cycles" of Table 1).
    pub conversion_cost: u64,
    /// Vertices examined while scanning cycles (locally-minimum work).
    pub cycle_nodes_examined: usize,
    /// Time spent building the CRWI digraph.
    pub graph_build_time: Duration,
    /// Time spent sorting and breaking cycles.
    pub sort_time: Duration,
}

impl ConversionReport {
    /// Total conversion time (graph construction + sort).
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.graph_build_time + self.sort_time
    }

    /// Publishes the report to the installed [`ipr_trace`] recorder (the
    /// `convert.*` counters of `docs/OBSERVABILITY.md`); no-op when
    /// tracing is off.
    fn record(&self) {
        if !ipr_trace::enabled() {
            return;
        }
        ipr_trace::with(|r| {
            r.add("convert.input_copies", self.input_copies as u64);
            r.add("convert.input_adds", self.input_adds as u64);
            r.add("convert.edges", self.edges as u64);
            r.add("convert.cycles_broken", self.cycles_broken as u64);
            r.add("convert.copies_converted", self.copies_converted as u64);
            r.add("convert.bytes_converted", self.bytes_converted);
            r.add("convert.bytes_reencoded", self.conversion_cost);
            r.add(
                "convert.cycle_nodes_examined",
                self.cycle_nodes_examined as u64,
            );
        });
    }
}

impl fmt::Display for ConversionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} copies + {} adds; {} conflict edges; {} cycles broken; \
             {} copies converted ({} B payload, +{} B encoded) in {:?}",
            self.input_copies,
            self.input_adds,
            self.edges,
            self.cycles_broken,
            self.copies_converted,
            self.bytes_converted,
            self.conversion_cost,
            self.total_time(),
        )
    }
}

/// Reusable working storage for [`convert_in_place_pooled`].
///
/// Owns every buffer the conversion needs — the partitioned command
/// lists, the CRWI digraph, the cost vector, and the cycle-breaking sort
/// scratch — so repeated conversions through one scratch allocate nothing
/// once warm (the exhaustive policy's exact solver excepted).
#[derive(Debug, Default)]
pub struct ConvertScratch {
    copies: Vec<Copy>,
    adds: Vec<Add>,
    graph: Digraph,
    graph_spare: Vec<Vec<NodeId>>,
    costs: Vec<u64>,
    sort: SortScratch,
    order_scratch: Vec<usize>,
}

impl ConvertScratch {
    /// Creates an empty scratch. Storage is grown on first use and reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A converted, in-place reconstructible delta.
#[derive(Clone, Debug)]
pub struct InPlaceOutcome {
    /// The permuted and converted script; satisfies Equation 2 and is safe
    /// for [`apply_in_place`](crate::apply_in_place).
    pub script: DeltaScript,
    /// Conversion measurements.
    pub report: ConversionReport,
}

/// Post-processes `script` so it can reconstruct the version file in the
/// space the reference file occupies.
///
/// `reference` must be the reference file: deleted copy commands are
/// re-encoded as add commands whose literal data is read from it.
///
/// The output script applies its retained copies in conflict-free
/// topological order followed by every add command (sorted by write
/// offset), and always satisfies Equation 2.
///
/// # Errors
///
/// * [`ConvertError::SourceLenMismatch`] — `reference` length differs from
///   `script.source_len()`.
/// * [`ConvertError::ComponentTooLarge`] — only with
///   [`CyclePolicy::Exhaustive`].
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
/// use ipr_core::{convert_to_in_place, check_in_place_safe, ConversionConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A block swap: naively ordered, it corrupts in place.
/// let script = DeltaScript::new(16, 16, vec![
///     Command::copy(8, 0, 8),
///     Command::copy(0, 8, 8),
/// ])?;
/// let reference = (0u8..16).collect::<Vec<_>>();
/// let outcome = convert_to_in_place(&script, &reference, &ConversionConfig::default())?;
/// assert!(check_in_place_safe(&outcome.script).is_ok());
/// # Ok(())
/// # }
/// ```
pub fn convert_to_in_place(
    script: &DeltaScript,
    reference: &[u8],
    config: &ConversionConfig,
) -> Result<InPlaceOutcome, ConvertError> {
    let mut scratch = ConvertScratch::new();
    let mut pool = ScriptPool::new();
    convert_in_place_pooled(script.clone(), reference, config, &mut scratch, &mut pool)
}

/// Scratch-based core of [`convert_to_in_place`]: identical results, but
/// the input script is consumed (its storage recycled through `pool`),
/// working buffers live in `scratch`, and the output script is built from
/// pooled storage — so a warm scratch/pool pair converts with no heap
/// allocation at all.
///
/// # Errors
///
/// Exactly as [`convert_to_in_place`]; on [`ConvertError::SourceLenMismatch`]
/// the input script's storage is still recycled into `pool`.
pub fn convert_in_place_pooled(
    script: DeltaScript,
    reference: &[u8],
    config: &ConversionConfig,
    scratch: &mut ConvertScratch,
    pool: &mut ScriptPool,
) -> Result<InPlaceOutcome, ConvertError> {
    if reference.len() as u64 != script.source_len() {
        let expected = script.source_len();
        let actual = reference.len() as u64;
        pool.recycle(script);
        return Err(ConvertError::SourceLenMismatch { expected, actual });
    }
    let _span = ipr_trace::span("convert");
    let ConvertScratch {
        copies,
        adds,
        graph,
        graph_spare,
        costs,
        sort,
        order_scratch,
    } = scratch;

    // Steps 1-3: partition, sort by write offset, build the digraph.
    let build_span = ipr_trace::span("convert.crwi_build");
    let build_start = Instant::now();
    let (source_len, target_len, mut commands) = script.into_parts();
    copies.clear();
    adds.clear();
    for cmd in commands.drain(..) {
        match cmd {
            Command::Copy(c) => copies.push(c),
            Command::Add(a) => adds.push(a),
        }
    }
    pool.give_commands(commands);
    let input_copies = copies.len();
    let input_adds = adds.len();
    // Write offsets are unique in a valid script, so the unstable sort is
    // deterministic and matches the legacy stable sort.
    copies.sort_unstable_by_key(|c| c.to);
    graph.reset_with_spare(copies.len(), graph_spare);
    crwi::build_edges_into(copies, graph);
    let graph_build_time = build_start.elapsed();
    drop(build_span);

    // Step 4: cycle-breaking topological sort.
    let sort_span = ipr_trace::span("convert.toposort");
    let sort_start = Instant::now();
    costs.clear();
    costs.extend(copies.iter().map(|c| config.cost_format.conversion_cost(c)));
    let stats = sort_breaking_cycles_into(graph, costs, config.policy, sort)?;
    let sort_time = sort_start.elapsed();
    drop(sort_span);

    // Steps 5-6: emit copies in topological order, then adds.
    let emit_span = ipr_trace::span("convert.emit");
    let mut out_commands = pool.take_commands();
    out_commands.extend(
        sort.order()
            .iter()
            .map(|&v| Command::Copy(copies[v as usize])),
    );
    let mut bytes_converted = 0u64;
    let mut conversion_cost = 0u64;
    for &v in sort.removed() {
        let c = copies[v as usize];
        bytes_converted += c.len;
        conversion_cost += config.cost_format.conversion_cost(&c);
        let start = usize::try_from(c.from).expect("offset fits usize");
        let end = usize::try_from(c.from + c.len).expect("offset fits usize");
        let mut data = pool.take_bytes();
        data.extend_from_slice(&reference[start..end]);
        adds.push(Add::new(c.to, data));
    }
    // Add write offsets are unique too: unstable sort matches stable.
    adds.sort_unstable_by_key(|a| a.to);
    let copies_converted = sort.removed().len();
    out_commands.extend(adds.drain(..).map(Command::Add));

    let script = DeltaScript::new_with_scratch(source_len, target_len, out_commands, order_scratch)
        .expect("conversion preserves script validity");
    debug_assert!(crate::verify::is_in_place_safe(&script));
    drop(emit_span);

    let report = ConversionReport {
        input_copies,
        input_adds,
        edges: graph.edge_count(),
        cycles_broken: stats.cycles_broken,
        copies_converted,
        bytes_converted,
        conversion_cost,
        cycle_nodes_examined: stats.cycle_nodes_examined,
        graph_build_time,
        sort_time,
    };
    report.record();

    Ok(InPlaceOutcome { script, report })
}

/// One-step pipeline: difference `version` against `reference` and convert
/// the result for in-place reconstruction.
///
/// The paper notes the conversion "integrates easily into a compression
/// algorithm so that an in-place reconstructible file may be output
/// directly"; this is that integration point.
///
/// # Errors
///
/// Propagates [`ConvertError`] (the differ itself cannot fail).
pub fn diff_in_place(
    differ: &dyn ipr_delta::diff::Differ,
    reference: &[u8],
    version: &[u8],
    config: &ConversionConfig,
) -> Result<InPlaceOutcome, ConvertError> {
    let script = differ.diff(reference, version);
    convert_to_in_place(&script, reference, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_in_place;
    use crate::verify::{count_wr_conflicts, is_in_place_safe};
    use ipr_delta::apply;

    fn reference16() -> Vec<u8> {
        (0u8..16).collect()
    }

    fn convert(script: &DeltaScript, reference: &[u8]) -> InPlaceOutcome {
        convert_to_in_place(script, reference, &ConversionConfig::default()).unwrap()
    }

    #[test]
    fn acyclic_swap_reordered_without_conversion() {
        // Swap of two blocks where only one direction conflicts is just a
        // 2-cycle... use a rotation instead: copy [8,16) -> [0,8) and
        // [0,8) -> [8,16) form a 2-cycle, so one conversion is needed.
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
        let reference = reference16();
        let out = convert(&script, &reference);
        assert_eq!(out.report.cycles_broken, 1);
        assert_eq!(out.report.copies_converted, 1);
        assert!(is_in_place_safe(&out.script));
        // Equivalence with scratch-space application.
        let expected = apply(&script, &reference).unwrap();
        let mut buf = reference.clone();
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(&buf[..16], &expected[..]);
    }

    #[test]
    fn pure_reorder_when_no_cycles() {
        // Shift data toward lower offsets: command i reads block i+1 and
        // writes block i. Conflicts form a path; reordering suffices.
        let cmds: Vec<Command> = (0..7u64)
            .map(|i| Command::copy(2 * (i + 1), 2 * i, 2))
            .collect();
        let script = DeltaScript::new(16, 14, cmds).unwrap();
        let reference = reference16();
        let naive_conflicts = count_wr_conflicts(&script);
        assert_eq!(naive_conflicts, 0, "ascending order already safe here");
        // Reverse it so the naive order is maximally conflicting.
        let reversed = script.permuted(&[6, 5, 4, 3, 2, 1, 0]);
        assert!(count_wr_conflicts(&reversed) > 0);
        assert!(!is_in_place_safe(&reversed));
        let out = convert(&reversed, &reference);
        assert_eq!(out.report.copies_converted, 0, "no cycles: reorder only");
        assert_eq!(out.report.cycles_broken, 0);
        assert!(is_in_place_safe(&out.script));
    }

    #[test]
    fn adds_moved_to_end() {
        let script = DeltaScript::new(
            8,
            12,
            vec![Command::add(0, vec![9; 4]), Command::copy(0, 4, 8)],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..8).collect();
        assert!(!is_in_place_safe(&script), "add clobbers the copy's read");
        let out = convert(&script, &reference);
        assert!(out.script.commands().last().unwrap().is_add());
        assert!(is_in_place_safe(&out.script));
        assert_eq!(out.report.copies_converted, 0);
    }

    #[test]
    fn converted_add_carries_reference_bytes() {
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
        let reference = reference16();
        let out = convert(&script, &reference);
        let adds = out.script.adds();
        assert_eq!(adds.len(), 1);
        // Whichever copy was converted, its data must equal the reference
        // bytes it would have copied.
        let add = &adds[0];
        let expected: Vec<u8> = if add.to == 0 {
            (8u8..16).collect()
        } else {
            (0u8..8).collect()
        };
        assert_eq!(add.data, expected);
    }

    #[test]
    fn equivalence_on_scrambled_script() {
        // A deliberately nasty permutation: interleaved moves.
        let script = DeltaScript::new(
            32,
            32,
            vec![
                Command::copy(16, 0, 8),
                Command::copy(24, 8, 4),
                Command::add(12, vec![0xEE; 4]),
                Command::copy(0, 16, 8),
                Command::copy(8, 24, 8),
            ],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..32).collect();
        let expected = apply(&script, &reference).unwrap();
        for policy in [
            CyclePolicy::ConstantTime,
            CyclePolicy::LocallyMinimum,
            CyclePolicy::Exhaustive { limit: 16 },
        ] {
            let out =
                convert_to_in_place(&script, &reference, &ConversionConfig::with_policy(policy))
                    .unwrap();
            assert!(is_in_place_safe(&out.script), "{policy}");
            let mut buf = reference.clone();
            apply_in_place(&out.script, &mut buf).unwrap();
            assert_eq!(&buf[..32], &expected[..], "{policy}");
        }
    }

    #[test]
    fn source_len_mismatch_rejected() {
        let script = DeltaScript::new(16, 16, vec![Command::copy(0, 0, 16)]).unwrap();
        let err =
            convert_to_in_place(&script, &[0u8; 4], &ConversionConfig::default()).unwrap_err();
        assert_eq!(
            err,
            ConvertError::SourceLenMismatch {
                expected: 16,
                actual: 4
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn exhaustive_limit_error_propagates() {
        // A large rotation creates one big cycle.
        let n = 32u64;
        let cmds: Vec<Command> = (0..n)
            .map(|i| Command::copy(((i + 1) % n) * 2, i * 2, 2))
            .collect();
        let script = DeltaScript::new(n * 2, n * 2, cmds).unwrap();
        let reference = vec![7u8; (n * 2) as usize];
        let config = ConversionConfig::with_policy(CyclePolicy::Exhaustive { limit: 4 });
        let err = convert_to_in_place(&script, &reference, &config).unwrap_err();
        assert!(matches!(err, ConvertError::ComponentTooLarge(_)));
    }

    #[test]
    fn diff_in_place_end_to_end() {
        use ipr_delta::diff::GreedyDiffer;
        let reference: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(512); // block move: guaranteed read/write crossings
        let out = diff_in_place(
            &GreedyDiffer::default(),
            &reference,
            &version,
            &ConversionConfig::default(),
        )
        .unwrap();
        assert!(is_in_place_safe(&out.script));
        let mut buf = reference.clone();
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(buf, version);
    }

    #[test]
    fn pooled_conversion_matches_legacy_with_reuse() {
        // One scratch + pool driven across heterogeneous scripts and
        // policies (recycling each output) must match the legacy path
        // byte for byte, report included.
        let reference: Vec<u8> = (0u8..32).collect();
        let scripts = vec![
            DeltaScript::new(
                32,
                32,
                vec![Command::copy(16, 0, 16), Command::copy(0, 16, 16)],
            )
            .unwrap(),
            DeltaScript::new(
                32,
                32,
                vec![
                    Command::copy(16, 0, 8),
                    Command::copy(24, 8, 4),
                    Command::add(12, vec![0xEE; 4]),
                    Command::copy(0, 16, 8),
                    Command::copy(8, 24, 8),
                ],
            )
            .unwrap(),
            DeltaScript::new(32, 4, vec![Command::add(0, vec![1; 4])]).unwrap(),
            DeltaScript::new(32, 0, vec![]).unwrap(),
        ];
        let mut scratch = ConvertScratch::new();
        let mut pool = ScriptPool::new();
        for policy in [
            CyclePolicy::ConstantTime,
            CyclePolicy::LocallyMinimum,
            CyclePolicy::Exhaustive { limit: 16 },
        ] {
            let config = ConversionConfig::with_policy(policy);
            for script in &scripts {
                let legacy = convert_to_in_place(script, &reference, &config).unwrap();
                let pooled = convert_in_place_pooled(
                    script.clone(),
                    &reference,
                    &config,
                    &mut scratch,
                    &mut pool,
                )
                .unwrap();
                assert_eq!(pooled.script, legacy.script, "{policy}");
                assert_eq!(pooled.report.input_copies, legacy.report.input_copies);
                assert_eq!(pooled.report.edges, legacy.report.edges);
                assert_eq!(pooled.report.cycles_broken, legacy.report.cycles_broken);
                assert_eq!(
                    pooled.report.copies_converted,
                    legacy.report.copies_converted
                );
                assert_eq!(pooled.report.bytes_converted, legacy.report.bytes_converted);
                assert_eq!(pooled.report.conversion_cost, legacy.report.conversion_cost);
                pool.recycle(pooled.script);
            }
        }
        assert!(pool.spare_commands() > 0, "recycled storage is retained");

        // The mismatch error still recycles the input script's storage.
        let before = pool.spare_commands();
        let err = convert_in_place_pooled(
            scripts[0].clone(),
            &[0u8; 4],
            &ConversionConfig::default(),
            &mut scratch,
            &mut pool,
        )
        .unwrap_err();
        assert!(matches!(err, ConvertError::SourceLenMismatch { .. }));
        assert!(pool.spare_commands() > before);
    }

    #[test]
    fn report_times_accumulate() {
        let script = DeltaScript::new(16, 16, vec![Command::copy(0, 0, 16)]).unwrap();
        let out = convert(&script, &reference16());
        assert_eq!(
            out.report.total_time(),
            out.report.graph_build_time + out.report.sort_time
        );
    }

    #[test]
    fn growing_file_conversion() {
        // Version larger than reference: writes extend past source length.
        let reference: Vec<u8> = (0u8..8).collect();
        let script = DeltaScript::new(
            8,
            20,
            vec![Command::copy(0, 12, 8), Command::add(0, vec![1; 12])],
        )
        .unwrap();
        let out = convert(&script, &reference);
        assert!(is_in_place_safe(&out.script));
        let expected = apply(&script, &reference).unwrap();
        let mut buf = reference.clone();
        buf.resize(20, 0);
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(buf, expected);
    }
}

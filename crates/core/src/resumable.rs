//! Power-fail-safe, resumable in-place application.
//!
//! In-place reconstruction destroys the reference file as it runs, so an
//! interrupted update cannot simply restart from the beginning: the data
//! the early commands read is already gone. This module extends the
//! paper's applier with a small *journal* — the natural companion of
//! in-place patching in real update engines — so an application can be
//! suspended (or killed) at any point and resumed.
//!
//! Correctness argument:
//!
//! * Commands are applied serially in the converted (Equation 2) order,
//!   so a command's source bytes are intact until the command itself
//!   runs; the journal only needs intra-command progress.
//! * Within a copy, chunks are processed directionally (§4.1), so the
//!   not-yet-copied source suffix is never touched by completed chunks.
//! * A chunk interrupted *mid-write* cannot be safely re-executed when
//!   the copy self-overlaps closer than one chunk (its source may be
//!   half-overwritten), so every chunk is staged in the journal as a
//!   redo record before it touches the buffer: replaying the redo record
//!   is always safe and idempotent.
//!
//! The journal is plain data; a device would persist it (and the buffer
//! region it describes) to stable storage between steps. The simulation
//! in `ipr-device` drives exactly that protocol with crash injection.

use crate::apply::{required_capacity, InPlaceApplyError};
use ipr_delta::{Command, DeltaScript};
use std::fmt;

/// Durable progress record for a resumable in-place application.
///
/// All fields are plain values so the journal can be serialized to a few
/// bytes of stable storage. A fresh journal starts at the first command.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journal {
    /// Index of the command currently being applied.
    command: usize,
    /// Bytes of the current command already applied (measured from the
    /// copy direction's starting edge).
    done: u64,
    /// Staged chunk that must be (re)written before anything else: the
    /// write offset and the exact bytes. Present iff a chunk was staged
    /// but its completion was not yet recorded.
    redo: Option<(u64, Vec<u8>)>,
    /// Wire bytes of the delta stream durably consumed when this
    /// journal was last recorded. Zero for a purely local apply; a
    /// streaming install records it so that power loss during a
    /// partially-downloaded delta resumes the transfer from here
    /// instead of byte 0.
    stream_offset: u64,
}

impl Journal {
    /// A journal positioned at the start of the script.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the command currently being applied.
    #[must_use]
    pub fn command_index(&self) -> usize {
        self.command
    }

    /// Bytes of the current command already applied.
    #[must_use]
    pub fn bytes_done_in_command(&self) -> u64 {
        self.done
    }

    /// Whether a staged chunk is pending replay.
    #[must_use]
    pub fn has_pending_chunk(&self) -> bool {
        self.redo.is_some()
    }

    /// The staged chunk pending replay, as `(write offset, data)`, if any.
    ///
    /// Fault-injection harnesses use this to simulate torn writes: any
    /// prefix of the chunk may have reached the buffer when power failed,
    /// and replay must overwrite the whole region regardless.
    #[must_use]
    pub fn pending_chunk(&self) -> Option<(u64, &[u8])> {
        self.redo.as_ref().map(|(to, data)| (*to, data.as_slice()))
    }

    /// Wire bytes of the delta stream durably consumed at this journal.
    #[must_use]
    pub fn stream_offset(&self) -> u64 {
        self.stream_offset
    }

    /// Records streaming-install progress: `commands` commands fully
    /// applied to the buffer and `stream_offset` wire bytes durably
    /// consumed. Streaming installs apply whole commands per checkpoint,
    /// so intra-command state (`done`/`redo`) is cleared.
    pub fn record_stream_progress(&mut self, commands: usize, stream_offset: u64) {
        self.command = commands;
        self.done = 0;
        self.redo = None;
        self.stream_offset = stream_offset;
    }

    /// Serializes the journal for stable storage (fixed-width
    /// little-endian fields, CRC-32 sealed).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&JOURNAL_MAGIC);
        out.extend_from_slice(&(self.command as u64).to_le_bytes());
        out.extend_from_slice(&self.done.to_le_bytes());
        out.extend_from_slice(&self.stream_offset.to_le_bytes());
        match &self.redo {
            None => out.push(0),
            Some((to, data)) => {
                out.push(1);
                out.extend_from_slice(&to.to_le_bytes());
                out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                out.extend_from_slice(data);
            }
        }
        let crc = ipr_delta::checksum::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a journal written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`JournalDecodeError`] if the bytes are truncated, carry the
    /// wrong magic, or fail the CRC (torn journal write).
    pub fn decode(bytes: &[u8]) -> Result<Self, JournalDecodeError> {
        if bytes.len() < JOURNAL_MAGIC.len() + 4 {
            return Err(JournalDecodeError::Truncated);
        }
        if bytes[..4] != JOURNAL_MAGIC {
            return Err(JournalDecodeError::BadMagic);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let actual = ipr_delta::checksum::crc32(body);
        if expected != actual {
            return Err(JournalDecodeError::Checksum { expected, actual });
        }
        let mut at = 4usize;
        let read_u64 = |at: &mut usize| -> Result<u64, JournalDecodeError> {
            let end = at.checked_add(8).ok_or(JournalDecodeError::Truncated)?;
            let raw = body.get(*at..end).ok_or(JournalDecodeError::Truncated)?;
            *at = end;
            Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
        };
        let command = read_u64(&mut at)? as usize;
        let done = read_u64(&mut at)?;
        let stream_offset = read_u64(&mut at)?;
        let flag = *body.get(at).ok_or(JournalDecodeError::Truncated)?;
        at += 1;
        let redo = if flag == 0 {
            None
        } else {
            let to = read_u64(&mut at)?;
            let len = read_u64(&mut at)? as usize;
            let end = at.checked_add(len).ok_or(JournalDecodeError::Truncated)?;
            let data = body.get(at..end).ok_or(JournalDecodeError::Truncated)?;
            at = end;
            Some((to, data.to_vec()))
        };
        if at != body.len() {
            return Err(JournalDecodeError::Truncated);
        }
        Ok(Self {
            command,
            done,
            redo,
            stream_offset,
        })
    }
}

/// Magic prefix of a serialized [`Journal`].
const JOURNAL_MAGIC: [u8; 4] = *b"IPJ1";

/// Error deserializing a [`Journal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalDecodeError {
    /// The bytes end before the journal record does.
    Truncated,
    /// The bytes do not start with the journal magic.
    BadMagic,
    /// The CRC-32 seal does not match (torn or corrupted write).
    Checksum {
        /// CRC recorded in the journal.
        expected: u32,
        /// CRC of the bytes actually read.
        actual: u32,
    },
}

impl fmt::Display for JournalDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalDecodeError::Truncated => write!(f, "journal record truncated"),
            JournalDecodeError::BadMagic => write!(f, "not a journal record"),
            JournalDecodeError::Checksum { expected, actual } => {
                write!(
                    f,
                    "journal CRC mismatch: {expected:#010x} != {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for JournalDecodeError {}

/// Outcome of [`resume_in_place`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// The whole script has been applied; the buffer holds the version.
    Complete,
    /// The byte budget ran out; call again with the same journal.
    Suspended,
}

/// Error from resumable application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// Buffer too small (same condition as the plain applier).
    Apply(InPlaceApplyError),
    /// The journal does not match the script (command index out of
    /// range or intra-command offset past the command length).
    JournalMismatch {
        /// Command index recorded in the journal.
        command: usize,
        /// Number of commands in the script.
        commands: usize,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Apply(e) => e.fmt(f),
            ResumeError::JournalMismatch { command, commands } => {
                write!(f, "journal points at command {command} of {commands}")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<InPlaceApplyError> for ResumeError {
    fn from(e: InPlaceApplyError) -> Self {
        ResumeError::Apply(e)
    }
}

/// Applies `script` to `buf` in place, resuming from `journal`, staging
/// every chunk so the process may be interrupted *between any two
/// mutations* of `buf`/`journal` and later resumed with the same
/// arguments.
///
/// At most `max_bytes` payload bytes are applied before returning
/// [`Progress::Suspended`] (a budget of `u64::MAX` runs to completion);
/// budgets are a simulation stand-in for "the device lost power here".
///
/// `chunk_size` bounds the RAM the device needs beyond the buffer itself.
///
/// # Errors
///
/// [`ResumeError::Apply`] if the buffer is too small;
/// [`ResumeError::JournalMismatch`] if the journal was produced by a
/// different script.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
/// use ipr_core::resumable::{resume_in_place, Journal, Progress};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let script = DeltaScript::new(4, 4, vec![
///     Command::copy(2, 0, 2),
///     Command::add(2, b"!!".to_vec()),
/// ])?;
/// let mut buf = b"abcd".to_vec();
/// let mut journal = Journal::new();
/// // Apply one byte at a time, "losing power" after each byte.
/// while resume_in_place(&script, &mut buf, &mut journal, 1, 1)? == Progress::Suspended {}
/// assert_eq!(&buf, b"cd!!");
/// # Ok(())
/// # }
/// ```
pub fn resume_in_place(
    script: &DeltaScript,
    buf: &mut [u8],
    journal: &mut Journal,
    chunk_size: usize,
    max_bytes: u64,
) -> Result<Progress, ResumeError> {
    resume_in_place_observed(script, buf, journal, chunk_size, max_bytes, &mut |_| {})
}

/// Like [`resume_in_place`], invoking `persist` at every durable point —
/// immediately after each journal update that a real device would flush
/// to stable storage (chunk staged; chunk completed).
///
/// Between two `persist` calls the buffer sees at most one chunk write,
/// and the staged redo record fully describes it, so a crash anywhere in
/// that window (including a torn, partially written chunk) is recovered
/// by replaying the redo record on resume. The fault-injection tests in
/// `ipr-device` snapshot state at every `persist` call and restart from
/// each of them.
///
/// # Errors
///
/// Same as [`resume_in_place`].
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn resume_in_place_observed(
    script: &DeltaScript,
    buf: &mut [u8],
    journal: &mut Journal,
    chunk_size: usize,
    max_bytes: u64,
    persist: &mut dyn FnMut(&Journal),
) -> Result<Progress, ResumeError> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let needed = required_capacity(script);
    if (buf.len() as u64) < needed {
        return Err(InPlaceApplyError::BufferTooSmall {
            needed,
            actual: buf.len() as u64,
        }
        .into());
    }
    let commands = script.commands();
    if journal.command > commands.len() {
        return Err(ResumeError::JournalMismatch {
            command: journal.command,
            commands: commands.len(),
        });
    }
    let _span = ipr_trace::span("apply.resumable");

    let mut budget = max_bytes;

    // Recovery: a staged chunk may or may not have reached the buffer
    // (possibly torn). Replaying it is always safe — the record carries
    // the full data — and completing it is a single journal update.
    if let Some((to, data)) = journal.redo.clone() {
        let start = to as usize;
        buf[start..start + data.len()].copy_from_slice(&data);
        journal.done += data.len() as u64;
        journal.redo = None;
        persist(journal);
        budget = budget.saturating_sub(data.len() as u64);
        ipr_trace::add("resumable.replays", 1);
    }

    while journal.command < commands.len() {
        let cmd = &commands[journal.command];
        let len = cmd.len();
        if journal.done > len {
            return Err(ResumeError::JournalMismatch {
                command: journal.command,
                commands: commands.len(),
            });
        }
        if journal.done == len {
            journal.command += 1;
            journal.done = 0;
            continue;
        }
        if budget == 0 {
            return Ok(Progress::Suspended);
        }
        let n = (len - journal.done).min(chunk_size as u64).min(budget);
        // Chunk placement honours the §4.1 direction rule: left-to-right
        // when the source is at or after the destination, right-to-left
        // otherwise, so completed chunks never overwrite pending source.
        let (read_at, write_at) = match cmd {
            Command::Copy(c) => {
                if c.from >= c.to {
                    (Some(c.from + journal.done), c.to + journal.done)
                } else {
                    let off = len - journal.done - n;
                    (Some(c.from + off), c.to + off)
                }
            }
            Command::Add(a) => (None, a.to + journal.done),
        };
        let data = match (read_at, cmd) {
            (Some(src), _) => buf[src as usize..(src + n) as usize].to_vec(),
            (None, Command::Add(a)) => {
                // For right-to-left this branch is unreachable (adds never
                // self-overlap), so `done` indexes from the left.
                let off = journal.done as usize;
                a.data[off..off + n as usize].to_vec()
            }
            (None, Command::Copy(_)) => unreachable!("copies always read"),
        };
        // Durable point A: chunk staged; buffer untouched so far.
        journal.redo = Some((write_at, data));
        persist(journal);
        ipr_trace::with(|r| {
            r.add("resumable.chunks", 1);
            r.add("resumable.chunk_bytes", n);
        });
        // Crash window: the buffer write below may happen fully,
        // partially, or not at all — the staged record recovers all three.
        let (to, data) = journal.redo.as_ref().expect("just staged");
        let start = *to as usize;
        buf[start..start + data.len()].copy_from_slice(data);
        // Durable point B: chunk complete (one atomic journal update).
        journal.done += n;
        journal.redo = None;
        persist(journal);
        budget -= n;
    }
    Ok(Progress::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_in_place;
    use crate::convert::{convert_to_in_place, ConversionConfig};
    use ipr_delta::diff::{Differ, GreedyDiffer};

    fn converted_pair() -> (DeltaScript, Vec<u8>, Vec<u8>) {
        let reference: Vec<u8> = (0..4096u32).map(|i| (i * 29 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(777);
        version.extend_from_slice(&[9u8; 100]);
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        (out.script, reference, version)
    }

    #[test]
    fn single_shot_matches_plain_applier() {
        let (script, reference, version) = converted_pair();
        let cap = required_capacity(&script) as usize;
        let mut expected = reference.clone();
        expected.resize(cap, 0);
        apply_in_place(&script, &mut expected).unwrap();

        let mut buf = reference.clone();
        buf.resize(cap, 0);
        let mut journal = Journal::new();
        let p = resume_in_place(&script, &mut buf, &mut journal, 4096, u64::MAX).unwrap();
        assert_eq!(p, Progress::Complete);
        assert_eq!(buf, expected);
        assert_eq!(&buf[..version.len()], &version[..]);
    }

    #[test]
    fn byte_budgets_resume_to_same_result() {
        let (script, reference, version) = converted_pair();
        let cap = required_capacity(&script) as usize;
        for budget in [1u64, 7, 100, 4097] {
            let mut buf = reference.clone();
            buf.resize(cap, 0);
            let mut journal = Journal::new();
            let mut rounds = 0;
            loop {
                match resume_in_place(&script, &mut buf, &mut journal, 64, budget).unwrap() {
                    Progress::Complete => break,
                    Progress::Suspended => rounds += 1,
                }
                assert!(rounds < 1_000_000, "no progress with budget {budget}");
            }
            assert_eq!(&buf[..version.len()], &version[..], "budget {budget}");
        }
    }

    #[test]
    fn crash_replay_of_staged_chunk_is_idempotent() {
        // Simulate the torn state: chunk staged in the journal and written
        // to the buffer, but `done` not advanced (the redo record kept).
        // Replaying must produce the same final bytes.
        let (script, reference, version) = converted_pair();
        let cap = required_capacity(&script) as usize;
        let mut buf = reference.clone();
        buf.resize(cap, 0);
        let mut journal = Journal::new();
        // Advance a little.
        let _ = resume_in_place(&script, &mut buf, &mut journal, 64, 1000).unwrap();
        // Forge the torn state: stage the next chunk manually, "write" it,
        // but leave the redo record in place (as if we crashed between the
        // buffer write and the completion record).
        let cmd = &script.commands()[journal.command];
        let n = (cmd.len() - journal.done).min(64);
        if n > 0 {
            if let Command::Copy(c) = cmd {
                if c.from >= c.to {
                    let src = (c.from + journal.done) as usize;
                    let data = buf[src..src + n as usize].to_vec();
                    let to = c.to + journal.done;
                    buf[to as usize..(to + n) as usize].copy_from_slice(&data);
                    journal.redo = Some((to, data));
                }
            }
        }
        // Resume through the torn state to completion.
        let p = resume_in_place(&script, &mut buf, &mut journal, 64, u64::MAX).unwrap();
        assert_eq!(p, Progress::Complete);
        assert_eq!(&buf[..version.len()], &version[..]);
    }

    #[test]
    fn self_overlapping_copy_resumes_at_one_byte_chunks() {
        // from < to with distance 1: the hardest overlap. Chunked
        // right-to-left with per-chunk staging must still be exact.
        let script = DeltaScript::new(
            8,
            9,
            vec![Command::copy(0, 1, 8), Command::add(0, vec![0xAA])],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..8).collect();
        let mut expected = reference.clone();
        expected.resize(9, 0);
        apply_in_place(&script, &mut expected).unwrap();

        for budget in [1u64, 2, 3] {
            let mut buf = reference.clone();
            buf.resize(9, 0);
            let mut journal = Journal::new();
            while resume_in_place(&script, &mut buf, &mut journal, 1, budget).unwrap()
                == Progress::Suspended
            {}
            assert_eq!(buf, expected, "budget {budget}");
        }
    }

    #[test]
    fn journal_mismatch_detected() {
        let (script, reference, _) = converted_pair();
        let cap = required_capacity(&script) as usize;
        let mut buf = reference.clone();
        buf.resize(cap, 0);
        let mut journal = Journal {
            command: script.len() + 5,
            ..Journal::default()
        };
        let err = resume_in_place(&script, &mut buf, &mut journal, 64, u64::MAX).unwrap_err();
        assert!(matches!(err, ResumeError::JournalMismatch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn buffer_too_small_reported() {
        let (script, _, _) = converted_pair();
        let mut buf = vec![0u8; 3];
        let mut journal = Journal::new();
        let err = resume_in_place(&script, &mut buf, &mut journal, 64, u64::MAX).unwrap_err();
        assert!(matches!(err, ResumeError::Apply(_)));
    }

    #[test]
    fn journal_accessors() {
        let j = Journal::new();
        assert_eq!(j.command_index(), 0);
        assert_eq!(j.bytes_done_in_command(), 0);
        assert!(!j.has_pending_chunk());
        assert_eq!(j.stream_offset(), 0);
    }

    #[test]
    fn journal_round_trips_through_serialization() {
        // Plain, streaming, and torn-write (redo staged) journals all
        // survive encode/decode byte-exactly.
        let mut plain = Journal::new();
        plain.command = 7;
        plain.done = 123;
        let mut streaming = Journal::new();
        streaming.record_stream_progress(42, 9_876_543);
        let torn = Journal {
            command: 3,
            done: 64,
            redo: Some((1024, vec![0xAB; 33])),
            stream_offset: 555,
        };
        for j in [plain, streaming, torn] {
            assert_eq!(Journal::decode(&j.encode()), Ok(j));
        }
    }

    #[test]
    fn journal_decode_rejects_corruption() {
        let mut j = Journal::new();
        j.record_stream_progress(9, 1000);
        let bytes = j.encode();
        // Cutting the tail lands in the CRC seal: detected as a
        // checksum failure (the seal covers the length implicitly).
        assert!(matches!(
            Journal::decode(&bytes[..bytes.len() - 1]),
            Err(JournalDecodeError::Checksum { .. })
        ));
        assert_eq!(Journal::decode(b"xx"), Err(JournalDecodeError::Truncated));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            Journal::decode(&wrong_magic),
            Err(JournalDecodeError::BadMagic)
        );
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            Journal::decode(&flipped),
            Err(JournalDecodeError::Checksum { .. })
        ));
        assert!(!Journal::decode(&flipped)
            .unwrap_err()
            .to_string()
            .is_empty());
    }

    #[test]
    fn record_stream_progress_clears_intra_command_state() {
        let mut j = Journal {
            command: 2,
            done: 10,
            redo: Some((5, vec![1, 2, 3])),
            stream_offset: 0,
        };
        j.record_stream_progress(4, 200);
        assert_eq!(j.command_index(), 4);
        assert_eq!(j.bytes_done_in_command(), 0);
        assert!(!j.has_pending_chunk());
        assert_eq!(j.stream_offset(), 200);
    }
}

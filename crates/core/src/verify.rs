//! Write-before-read safety verification (Equation 2 of the paper).
//!
//! A delta script is *in-place safe* when, applied serially to a single
//! buffer, no copy command reads a byte that an earlier command has
//! already written:
//!
//! ```text
//! ∀j:  [f_j, f_j + l_j) ∩ ⋃_{i<j} [t_i, t_i + l_i) = ∅
//! ```
//!
//! Unlike the paper's Equation 1 (which ranges over copy commands only,
//! assuming adds have been moved to the end), this verifier checks *all*
//! commands in their actual order, so it also catches adds that clobber a
//! later read.

use ipr_delta::DeltaScript;
use ipr_digraph::{Interval, IntervalSet};
use std::fmt;

/// Evidence of a write-before-read conflict in a script's command order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrViolation {
    /// Index (application order) of the copy command whose read is
    /// clobbered.
    pub reader: usize,
    /// The reader's read interval.
    pub read: Interval,
    /// Bytes of the read interval already written by earlier commands.
    pub clobbered_bytes: u64,
}

impl fmt::Display for WrViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "command {} reads {} of which {} bytes were already written",
            self.reader, self.read, self.clobbered_bytes
        )
    }
}

impl std::error::Error for WrViolation {}

/// Checks Equation 2 over the script's command order.
///
/// # Errors
///
/// Returns the first [`WrViolation`] encountered, if any.
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
/// use ipr_core::check_in_place_safe;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Safe order: each command reads a region no earlier command wrote.
/// let safe = DeltaScript::new(16, 8, vec![
///     Command::copy(4, 0, 4),
///     Command::copy(8, 4, 4),
/// ])?;
/// assert!(check_in_place_safe(&safe).is_ok());
///
/// // Reversed: copy ⟨4, 0, 4⟩ now reads [4, 8) after it was overwritten.
/// let unsafe_ = safe.permuted(&[1, 0]);
/// assert!(check_in_place_safe(&unsafe_).is_err());
/// # Ok(())
/// # }
/// ```
pub fn check_in_place_safe(script: &DeltaScript) -> Result<(), WrViolation> {
    let mut written = IntervalSet::new();
    for (reader, cmd) in script.commands().iter().enumerate() {
        if let Some(read) = cmd.read_interval() {
            let clobbered_bytes = written.intersection_len(read);
            if clobbered_bytes > 0 {
                return Err(WrViolation {
                    reader,
                    read,
                    clobbered_bytes,
                });
            }
        }
        written.insert(cmd.write_interval());
    }
    Ok(())
}

/// Whether the script satisfies Equation 2 (see [`check_in_place_safe`]).
#[must_use]
pub fn is_in_place_safe(script: &DeltaScript) -> bool {
    check_in_place_safe(script).is_ok()
}

/// One write-before-read conflict pair: command `writer` is applied
/// before command `reader` but writes bytes `reader` still needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// Application-order index of the earlier, writing command.
    pub writer: usize,
    /// Application-order index of the later, reading command.
    pub reader: usize,
    /// The bytes both touch.
    pub overlap: Interval,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "command {} overwrites {} before command {} reads it",
            self.writer, self.overlap, self.reader
        )
    }
}

/// Lists up to `limit` write-before-read conflict pairs in the script's
/// current command order (the diagnostics behind
/// [`count_wr_conflicts`]), ordered by reader index.
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
/// use ipr_core::list_wr_conflicts;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let swap = DeltaScript::new(16, 16, vec![
///     Command::copy(8, 0, 8),
///     Command::copy(0, 8, 8),
/// ])?;
/// let conflicts = list_wr_conflicts(&swap, 10);
/// assert_eq!(conflicts.len(), 1);
/// assert_eq!((conflicts[0].writer, conflicts[0].reader), (0, 1));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn list_wr_conflicts(script: &DeltaScript, limit: usize) -> Vec<Conflict> {
    use ipr_digraph::IntervalIndex;
    let commands = script.commands();
    let mut by_write: Vec<usize> = (0..commands.len()).collect();
    by_write.sort_by_key(|&i| commands[i].to());
    let index = IntervalIndex::new(
        by_write
            .iter()
            .map(|&i| commands[i].write_interval())
            .collect(),
    )
    .expect("script write intervals are disjoint and non-empty");
    let mut conflicts = Vec::new();
    for (reader, cmd) in commands.iter().enumerate() {
        let Some(read) = cmd.read_interval() else {
            continue;
        };
        for k in index.overlapping(read) {
            let writer = by_write[k];
            if writer < reader {
                let overlap = commands[writer]
                    .write_interval()
                    .intersection(read)
                    .expect("index returned an overlapping interval");
                conflicts.push(Conflict {
                    writer,
                    reader,
                    overlap,
                });
                if conflicts.len() == limit {
                    return conflicts;
                }
            }
        }
    }
    conflicts
}

/// Counts write-before-read conflicts in the script's current command
/// order: pairs `(i, j)` with `i < j` where command `i`'s write interval
/// intersects command `j`'s read interval (the paper's Equation 1, over
/// all commands).
///
/// Runs in `O(n log n + conflicts)`.
#[must_use]
pub fn count_wr_conflicts(script: &DeltaScript) -> usize {
    use ipr_digraph::IntervalIndex;
    let commands = script.commands();
    // Sort write intervals (disjoint by construction) for range queries,
    // remembering each command's application position.
    let mut by_write: Vec<usize> = (0..commands.len()).collect();
    by_write.sort_by_key(|&i| commands[i].to());
    let index = IntervalIndex::new(
        by_write
            .iter()
            .map(|&i| commands[i].write_interval())
            .collect(),
    )
    .expect("script write intervals are disjoint and non-empty");
    let mut conflicts = 0;
    for (j, cmd) in commands.iter().enumerate() {
        let Some(read) = cmd.read_interval() else {
            continue;
        };
        for k in index.overlapping(read) {
            let i = by_write[k];
            if i < j {
                conflicts += 1;
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_delta::Command;

    /// Chain: command 0 reads [4,8) and writes [0,4); command 1 reads
    /// [8,12) and writes [4,8). Order [0, 1] is safe, [1, 0] is not.
    fn chain_script(order: &[usize]) -> DeltaScript {
        DeltaScript::new(16, 8, vec![Command::copy(4, 0, 4), Command::copy(8, 4, 4)])
            .unwrap()
            .permuted(order)
    }

    #[test]
    fn safe_order_passes() {
        assert!(is_in_place_safe(&chain_script(&[0, 1])));
    }

    #[test]
    fn unsafe_order_detected_with_evidence() {
        let err = check_in_place_safe(&chain_script(&[1, 0])).unwrap_err();
        assert_eq!(err.reader, 1);
        assert_eq!(err.read, Interval::new(4, 8));
        assert_eq!(err.clobbered_bytes, 4);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn two_cycle_unsafe_in_both_orders() {
        // A block swap conflicts whichever way it is ordered: the paper's
        // case where reordering cannot help and a conversion is forced.
        let swap =
            DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
        assert!(!is_in_place_safe(&swap));
        assert!(!is_in_place_safe(&swap.permuted(&[1, 0])));
    }

    #[test]
    fn add_clobbering_read_detected() {
        let s = DeltaScript::new(
            8,
            16,
            vec![
                Command::add(0, vec![9; 8]),
                Command::copy(0, 8, 8), // reads [0,8) of the *reference*...
            ],
        )
        .unwrap();
        // ...but in-place, [0,8) of the buffer was just overwritten by the
        // add: unsafe.
        assert!(!is_in_place_safe(&s));
        // Adds last is safe.
        assert!(is_in_place_safe(&s.permuted(&[1, 0])));
    }

    #[test]
    fn self_overlap_is_safe() {
        let s = DeltaScript::new(16, 8, vec![Command::copy(4, 0, 8)]).unwrap();
        assert!(is_in_place_safe(&s));
    }

    #[test]
    fn partial_clobber_reported() {
        let s = DeltaScript::new(
            16,
            16,
            vec![
                Command::copy(12, 0, 4),
                Command::copy(2, 12, 4), // reads [2,6): bytes 2,3 clobbered
                Command::add(4, vec![1; 8]),
            ],
        )
        .unwrap();
        let err = check_in_place_safe(&s).unwrap_err();
        assert_eq!(err.reader, 1);
        assert_eq!(err.clobbered_bytes, 2);
    }

    #[test]
    fn conflict_counting() {
        assert_eq!(count_wr_conflicts(&chain_script(&[0, 1])), 0);
        assert_eq!(count_wr_conflicts(&chain_script(&[1, 0])), 1);
        // A safe straight copy has zero conflicts.
        let s = DeltaScript::new(8, 8, vec![Command::copy(0, 0, 8)]).unwrap();
        assert_eq!(count_wr_conflicts(&s), 0);
    }

    #[test]
    fn conflict_count_counts_pairs_not_bytes() {
        // One big read crossing three writes placed before it.
        let s = DeltaScript::new(
            12,
            20,
            vec![
                Command::add(0, vec![1; 4]),
                Command::add(4, vec![2; 4]),
                Command::add(8, vec![3; 4]),
                Command::copy(2, 12, 8), // reads [2,10): hits all three
            ],
        )
        .unwrap();
        assert_eq!(count_wr_conflicts(&s), 3);
    }

    #[test]
    fn conflict_listing_matches_count_and_respects_limit() {
        let s = DeltaScript::new(
            12,
            20,
            vec![
                Command::add(0, vec![1; 4]),
                Command::add(4, vec![2; 4]),
                Command::add(8, vec![3; 4]),
                Command::copy(2, 12, 8), // reads [2,10): hits all three
            ],
        )
        .unwrap();
        let all = list_wr_conflicts(&s, usize::MAX);
        assert_eq!(all.len(), count_wr_conflicts(&s));
        assert_eq!(all.len(), 3);
        for c in &all {
            assert_eq!(c.reader, 3);
            assert!(!c.overlap.is_empty());
            assert!(!c.to_string().is_empty());
        }
        assert_eq!(list_wr_conflicts(&s, 2).len(), 2);
        assert!(list_wr_conflicts(&chain_script(&[0, 1]), 10).is_empty());
    }

    #[test]
    fn empty_script_is_safe() {
        let s = DeltaScript::new(4, 0, vec![]).unwrap();
        assert!(is_in_place_safe(&s));
        assert_eq!(count_wr_conflicts(&s), 0);
    }
}

//! Wave-parallel in-place application.
//!
//! [`ParallelSchedule`](crate::ParallelSchedule) layers the CRWI conflict
//! DAG: within one wave no command reads what another command of the same
//! wave writes (a conflict edge would have forced them onto different
//! levels), and the script invariant makes all write intervals pairwise
//! disjoint. Those two facts together let a wave run on several threads
//! with **no locks and no `unsafe`**: the buffer is carved into disjoint
//! `&mut` write slices (one per command) plus immutable gap slices via a
//! chain of `split_at_mut`, and every read either
//!
//! * lies entirely inside one gap (it intersects no write of the wave, and
//!   gaps are the maximal runs between sorted disjoint writes — a
//!   contiguous interval cannot hop a gap without crossing the write
//!   between), or
//! * intersects a write of the wave — by the layering argument that write
//!   can only be the command's *own* (a self-overlapping copy), and the
//!   read is staged through a heap snapshot taken before the wave starts.
//!
//! Two read strategies are offered ([`ReadMode`]):
//!
//! * **`ZeroCopy`** (default) snapshots only reads that do intersect the
//!   wave's write set — the rare self-overlapping copies. Everything else
//!   reads the buffer directly.
//! * **`Snapshot`** copies every read to the heap first. It moves every
//!   byte twice but makes each command's source trivially independent of
//!   the buffer, which is the simpler argument and a useful baseline; the
//!   benchmarks quantify the gap.
//!
//! Waves whose total payload is below
//! [`ParallelConfig::serial_wave_bytes`] are applied inline on the calling
//! thread: spawning threads to move a few kilobytes costs more than the
//! move. Typical converted deltas front-load nearly all bytes into wave 0
//! (see `CrwiStats`), so this hybrid keeps the scheduling overhead off the
//! long tail of tiny trailing waves.

use crate::apply::required_capacity;
use crate::schedule::ParallelSchedule;
use ipr_delta::{Command, DeltaScript};
use std::fmt;

/// Error returned by the parallel applier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParallelApplyError {
    /// The buffer must hold `max(source_len, target_len)` bytes.
    BufferTooSmall {
        /// Required capacity.
        needed: u64,
        /// Supplied capacity.
        actual: u64,
    },
    /// The script violates Equation 2; no wave schedule exists. Convert it
    /// with [`convert_to_in_place`](crate::convert_to_in_place) first.
    UnsafeScript,
    /// The supplied schedule does not cover the script's commands exactly
    /// once each (it was built for a different script).
    ScheduleMismatch {
        /// Commands in the script.
        script_commands: usize,
        /// Commands covered by the schedule.
        schedule_commands: usize,
    },
}

impl fmt::Display for ParallelApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelApplyError::BufferTooSmall { needed, actual } => {
                write!(f, "in-place buffer holds {actual} bytes, need {needed}")
            }
            ParallelApplyError::UnsafeScript => {
                write!(
                    f,
                    "script violates Equation 2; convert before applying in place"
                )
            }
            ParallelApplyError::ScheduleMismatch {
                script_commands,
                schedule_commands,
            } => write!(
                f,
                "schedule covers {schedule_commands} commands, script has {script_commands}"
            ),
        }
    }
}

impl std::error::Error for ParallelApplyError {}

/// How a wave's copy commands source their bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// Snapshot every read to the heap before the wave writes. Each byte
    /// moves twice; correctness is immediate.
    Snapshot,
    /// Read the buffer directly; snapshot only reads that intersect the
    /// wave's own write set (self-overlapping copies). Most bytes move
    /// once.
    #[default]
    ZeroCopy,
}

/// Tuning knobs for [`apply_in_place_parallel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker thread count; `0` means [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Read strategy; see [`ReadMode`].
    pub read_mode: ReadMode,
    /// Waves moving fewer payload bytes than this run inline on the
    /// calling thread instead of fanning out.
    pub serial_wave_bytes: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            read_mode: ReadMode::default(),
            serial_wave_bytes: 64 * 1024,
        }
    }
}

impl ParallelConfig {
    /// A config pinned to `threads` workers, other knobs at defaults.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// The worker count actually used: `threads`, or the host's available
    /// parallelism when `threads == 0` (minimum 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

/// What the parallel applier did, for instrumentation and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelApplyReport {
    /// Waves executed.
    pub waves: usize,
    /// Waves that fanned out to worker threads (the rest ran inline).
    pub parallel_waves: usize,
    /// Bytes staged through heap snapshots across all waves.
    pub snapshot_bytes: u64,
    /// Effective worker count.
    pub threads: usize,
}

/// Applies `script` to `buf` in place using wave-parallel execution.
///
/// Semantically identical to [`apply_in_place`](crate::apply_in_place) for
/// every in-place-safe script: `buf` must contain the reference file in
/// its first `source_len` bytes and hold `max(source_len, target_len)`
/// bytes; afterwards its first `target_len` bytes are the version file.
/// Unlike the serial applier, an unsafe script is *rejected* here (the
/// wave planner detects it) instead of silently corrupting.
///
/// # Errors
///
/// [`ParallelApplyError::BufferTooSmall`] if `buf` cannot hold both file
/// versions; [`ParallelApplyError::UnsafeScript`] if the script violates
/// Equation 2.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{Differ, GreedyDiffer};
/// use ipr_core::{apply_in_place_parallel, convert_to_in_place, ConversionConfig, ParallelConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let reference: Vec<u8> = (0..=255).cycle().take(8192).collect();
/// let mut version = reference.clone();
/// version.rotate_left(1024);
///
/// let script = GreedyDiffer::default().diff(&reference, &version);
/// let outcome = convert_to_in_place(&script, &reference, &ConversionConfig::default())?;
///
/// let mut buf = reference.clone();
/// apply_in_place_parallel(&outcome.script, &mut buf, &ParallelConfig::with_threads(4))?;
/// assert_eq!(buf, version);
/// # Ok(())
/// # }
/// ```
pub fn apply_in_place_parallel(
    script: &DeltaScript,
    buf: &mut [u8],
    config: &ParallelConfig,
) -> Result<ParallelApplyReport, ParallelApplyError> {
    let plan = ParallelSchedule::plan(script).ok_or(ParallelApplyError::UnsafeScript)?;
    apply_schedule_parallel(script, &plan, buf, config)
}

/// Like [`apply_in_place_parallel`] with a precomputed schedule, so a plan
/// can be reused across many applications of the same delta (or permuted
/// by tests to prove intra-wave order independence).
///
/// # Errors
///
/// [`ParallelApplyError::BufferTooSmall`] as above, and
/// [`ParallelApplyError::ScheduleMismatch`] if `plan` does not schedule
/// exactly the commands of `script` once each.
pub fn apply_schedule_parallel(
    script: &DeltaScript,
    plan: &ParallelSchedule,
    buf: &mut [u8],
    config: &ParallelConfig,
) -> Result<ParallelApplyReport, ParallelApplyError> {
    let needed = required_capacity(script);
    if (buf.len() as u64) < needed {
        return Err(ParallelApplyError::BufferTooSmall {
            needed,
            actual: buf.len() as u64,
        });
    }
    check_coverage(script, plan)?;

    let _span = ipr_trace::span("apply.parallel");
    let threads = config.effective_threads().max(1);
    let mut report = ParallelApplyReport {
        waves: plan.wave_count(),
        parallel_waves: 0,
        snapshot_bytes: 0,
        threads,
    };
    let traced = ipr_trace::enabled();
    for wave in plan.waves() {
        let wave_start = traced.then(std::time::Instant::now);
        apply_wave(script, wave, buf, threads, config, &mut report);
        if let Some(start) = wave_start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            ipr_trace::observe("apply.wave_ns", nanos);
        }
    }
    if traced {
        ipr_trace::with(|r| {
            r.add("apply.waves", report.waves as u64);
            r.add("apply.parallel_waves", report.parallel_waves as u64);
            r.add("apply.snapshot_bytes", report.snapshot_bytes);
            r.gauge("apply.threads", report.threads as u64);
        });
    }
    Ok(report)
}

/// Verifies `plan` schedules each command of `script` exactly once.
fn check_coverage(script: &DeltaScript, plan: &ParallelSchedule) -> Result<(), ParallelApplyError> {
    let n = script.len();
    let mismatch = |covered: usize| ParallelApplyError::ScheduleMismatch {
        script_commands: n,
        schedule_commands: covered,
    };
    let mut seen = vec![false; n];
    let mut covered = 0usize;
    for wave in plan.waves() {
        for &i in wave {
            if i >= n || seen[i] {
                return Err(mismatch(plan.waves().iter().map(Vec::len).sum()));
            }
            seen[i] = true;
            covered += 1;
        }
    }
    if covered != n {
        return Err(mismatch(covered));
    }
    Ok(())
}

/// One command's work, resolved before the wave's buffer is carved.
enum PendingSrc {
    /// Copy whose read intersects no wave write: read the buffer directly
    /// through the gap partition. Fields are the absolute read range.
    Shared(usize, usize),
    /// Read staged through the wave's snapshot queue (one entry per
    /// staged read, consumed in wave order).
    Snapshot,
    /// Add command: bytes come from the script.
    AddData,
}

/// One command's work after carving: a disjoint destination plus bytes to
/// fill it with. Safe to execute concurrently with any other job of the
/// same wave.
struct Job<'w> {
    dst: &'w mut [u8],
    src: JobSrc<'w>,
}

enum JobSrc<'w> {
    Borrowed(&'w [u8]),
    Owned(Vec<u8>),
}

impl Job<'_> {
    fn run(self) {
        ipr_trace::with(|r| {
            r.add("apply.jobs", 1);
            r.add("apply.job_bytes", self.dst.len() as u64);
        });
        match self.src {
            JobSrc::Borrowed(s) => self.dst.copy_from_slice(s),
            JobSrc::Owned(v) => self.dst.copy_from_slice(&v),
        }
    }
}

/// Applies one wave, fanning out to threads when it pays.
fn apply_wave(
    script: &DeltaScript,
    wave: &[usize],
    buf: &mut [u8],
    threads: usize,
    config: &ParallelConfig,
    report: &mut ParallelApplyReport,
) {
    let cmds = script.commands();
    let wave_bytes: u64 = wave.iter().map(|&i| cmds[i].len()).sum();
    if threads == 1 || wave.len() == 1 || wave_bytes < config.serial_wave_bytes as u64 {
        apply_wave_serial(cmds, wave, buf);
        return;
    }
    report.parallel_waves += 1;

    // Sort the wave's commands by write offset; writes are pairwise
    // disjoint (DeltaScript invariant), so this is also end order.
    let mut order: Vec<usize> = wave.to_vec();
    order.sort_unstable_by_key(|&i| cmds[i].to());
    let writes: Vec<(usize, usize)> = order
        .iter()
        .map(|&i| {
            let r = cmds[i].write_interval().as_usize_range();
            (r.start, r.end - r.start)
        })
        .collect();

    // Phase 1 (buffer still shared): decide each command's source and take
    // the snapshots. In ZeroCopy mode only reads intersecting the wave's
    // write set — necessarily the command's own write, per the layering
    // argument — are staged; Snapshot mode stages every copy read.
    let mut snapshots: Vec<Vec<u8>> = Vec::new();
    let pending: Vec<PendingSrc> = order
        .iter()
        .map(|&i| match cmds[i].read_interval() {
            None => PendingSrc::AddData,
            Some(r) => {
                let rr = r.as_usize_range();
                let (rs, rl) = (rr.start, rr.end - rr.start);
                let must_snapshot = match config.read_mode {
                    ReadMode::Snapshot => true,
                    ReadMode::ZeroCopy => intersects_any(&writes, rs, rl),
                };
                if must_snapshot {
                    report.snapshot_bytes += rl as u64;
                    snapshots.push(buf[rs..rs + rl].to_vec());
                    PendingSrc::Snapshot
                } else {
                    PendingSrc::Shared(rs, rl)
                }
            }
        })
        .collect();

    // Phase 2: carve the buffer into per-command `&mut` write slices and
    // immutable gaps, resolve shared reads into gap subslices.
    let (dsts, gaps) = partition_writes(buf, &writes);
    let mut snapshots = snapshots.into_iter();
    let jobs: Vec<Job<'_>> = dsts
        .into_iter()
        .zip(pending)
        .zip(&order)
        .map(|((dst, src), &i)| {
            let src = match src {
                PendingSrc::AddData => match &cmds[i] {
                    Command::Add(a) => JobSrc::Borrowed(&a.data[..]),
                    Command::Copy(_) => unreachable!("adds have no read interval"),
                },
                PendingSrc::Snapshot => {
                    JobSrc::Owned(snapshots.next().expect("one snapshot per staged read"))
                }
                PendingSrc::Shared(rs, rl) => JobSrc::Borrowed(resolve_in_gaps(&gaps, rs, rl)),
            };
            Job { dst, src }
        })
        .collect();

    // Phase 3: balance jobs across workers (greedy LPT by payload size)
    // and execute. The calling thread takes one bucket itself. Workers
    // re-install the caller's recorder so their counters aggregate into
    // the same report (recorders are installed per thread).
    let recorder = ipr_trace::installed();
    let buckets = balance(jobs, threads);
    std::thread::scope(|s| {
        let mut rest = buckets.into_iter();
        let own = rest.next();
        for bucket in rest {
            let recorder = recorder.clone();
            s.spawn(move || {
                let _guard = recorder.map(ipr_trace::install);
                for job in bucket {
                    job.run();
                }
            });
        }
        if let Some(bucket) = own {
            for job in bucket {
                job.run();
            }
        }
    });
}

/// Applies a wave on the calling thread, in the order given. Correct in
/// *any* intra-wave order: no command of a wave reads another same-wave
/// command's write, and a self-overlapping copy is handled by
/// `copy_within`'s memmove semantics.
fn apply_wave_serial(cmds: &[Command], wave: &[usize], buf: &mut [u8]) {
    for &i in wave {
        match &cmds[i] {
            Command::Copy(c) => {
                let src = c.read_interval().as_usize_range();
                let dst = usize::try_from(c.to).expect("offset fits usize");
                buf.copy_within(src, dst);
            }
            Command::Add(a) => {
                let dst = a.write_interval().as_usize_range();
                buf[dst].copy_from_slice(&a.data);
            }
        }
    }
}

/// Does `[rs, rs + rl)` intersect any of the sorted disjoint `writes`?
fn intersects_any(writes: &[(usize, usize)], rs: usize, rl: usize) -> bool {
    // Disjoint + sorted by start means also sorted by end: binary search
    // for the first write ending after the read starts.
    let idx = writes.partition_point(|&(s, l)| s + l <= rs);
    idx < writes.len() && writes[idx].0 < rs + rl
}

/// An immutable run of the buffer between two wave writes: its absolute
/// start offset and its bytes.
type Gap<'w> = (usize, &'w [u8]);

/// Carves `buf` into one `&mut` slice per write plus the immutable gaps
/// between them, by chaining `split_at_mut`. `writes` must be sorted and
/// pairwise disjoint.
fn partition_writes<'w>(
    buf: &'w mut [u8],
    writes: &[(usize, usize)],
) -> (Vec<&'w mut [u8]>, Vec<Gap<'w>>) {
    let mut dsts = Vec::with_capacity(writes.len());
    let mut gaps = Vec::with_capacity(writes.len() + 1);
    let mut rest: &'w mut [u8] = buf;
    let mut pos = 0usize;
    for &(start, len) in writes {
        let (gap, tail) = rest.split_at_mut(start - pos);
        if !gap.is_empty() {
            let gap: &'w [u8] = gap;
            gaps.push((pos, gap));
        }
        let (dst, tail) = tail.split_at_mut(len);
        dsts.push(dst);
        rest = tail;
        pos = start + len;
    }
    if !rest.is_empty() {
        let tail: &'w [u8] = rest;
        gaps.push((pos, tail));
    }
    (dsts, gaps)
}

/// Locates `[rs, rs + rl)` inside the gap partition. A read that
/// intersects no write of the wave lies entirely within one gap: gaps are
/// the maximal runs between sorted disjoint writes, and a contiguous
/// interval cannot span two gaps without crossing the write between them.
fn resolve_in_gaps<'w>(gaps: &[Gap<'w>], rs: usize, rl: usize) -> &'w [u8] {
    let idx = gaps
        .partition_point(|&(gs, _)| gs <= rs)
        .checked_sub(1)
        .expect("read starts inside some gap");
    let (gs, bytes) = gaps[idx];
    &bytes[rs - gs..rs - gs + rl]
}

/// Distributes jobs over at most `threads` buckets, greedily assigning
/// the largest payloads first to the least-loaded bucket (LPT).
fn balance(mut jobs: Vec<Job<'_>>, threads: usize) -> Vec<Vec<Job<'_>>> {
    let n = threads.min(jobs.len()).max(1);
    jobs.sort_by_key(|j| std::cmp::Reverse(j.dst.len()));
    let mut buckets: Vec<Vec<Job<'_>>> = (0..n).map(|_| Vec::new()).collect();
    let mut loads = vec![0usize; n];
    for job in jobs {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, l)| *l)
            .map(|(i, _)| i)
            .expect("at least one bucket");
        loads[lightest] += job.dst.len();
        buckets[lightest].push(job);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_in_place;
    use crate::convert::{convert_to_in_place, ConversionConfig};
    use ipr_delta::diff::{Differ, GreedyDiffer};

    /// A config that forces the parallel machinery even for tiny waves on
    /// a single-core host.
    fn eager(threads: usize, read_mode: ReadMode) -> ParallelConfig {
        ParallelConfig {
            threads,
            read_mode,
            serial_wave_bytes: 0,
        }
    }

    fn corpus_pair(n: u32, rot: usize) -> (Vec<u8>, Vec<u8>) {
        let reference: Vec<u8> = (0..n).map(|i| (i * 131 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(rot);
        version.extend_from_slice(&[42u8; 777]);
        (reference, version)
    }

    fn converted(reference: &[u8], version: &[u8]) -> DeltaScript {
        let script = GreedyDiffer::default().diff(reference, version);
        convert_to_in_place(&script, reference, &ConversionConfig::default())
            .unwrap()
            .script
    }

    fn run(script: &DeltaScript, reference: &[u8], config: &ParallelConfig) -> Vec<u8> {
        let mut buf = reference.to_vec();
        buf.resize(usize::try_from(required_capacity(script)).unwrap(), 0);
        apply_in_place_parallel(script, &mut buf, config).unwrap();
        buf.truncate(usize::try_from(script.target_len()).unwrap());
        buf
    }

    #[test]
    fn matches_serial_across_threads_and_modes() {
        let (reference, version) = corpus_pair(60_000, 13_337);
        let script = converted(&reference, &version);
        let mut serial = reference.clone();
        serial.resize(usize::try_from(required_capacity(&script)).unwrap(), 0);
        apply_in_place(&script, &mut serial).unwrap();
        serial.truncate(version.len());
        assert_eq!(serial, version, "serial applier is the oracle");
        for threads in [1, 2, 3, 4, 8] {
            for mode in [ReadMode::Snapshot, ReadMode::ZeroCopy] {
                assert_eq!(
                    run(&script, &reference, &eager(threads, mode)),
                    version,
                    "threads={threads} mode={mode:?}"
                );
            }
        }
    }

    #[test]
    fn default_config_matches_too() {
        let (reference, version) = corpus_pair(20_000, 7_001);
        let script = converted(&reference, &version);
        assert_eq!(
            run(&script, &reference, &ParallelConfig::default()),
            version
        );
    }

    #[test]
    fn all_adds_script() {
        let version = vec![9u8; 4096];
        let script =
            DeltaScript::new(16, 4096, vec![ipr_delta::Command::add(0, version.clone())]).unwrap();
        let reference = vec![1u8; 16];
        assert_eq!(
            run(&script, &reference, &eager(4, ReadMode::ZeroCopy)),
            version
        );
    }

    #[test]
    fn self_overlapping_copy_snapshots_in_zero_copy_mode() {
        // One big self-overlapping copy plus a disjoint one, forced
        // through the parallel path. (An add fills the remaining target
        // bytes; it lands in its own final wave.)
        let script = DeltaScript::new(
            64,
            64,
            vec![
                ipr_delta::Command::copy(4, 0, 32), // read [4,36) write [0,32): self-overlap
                ipr_delta::Command::copy(40, 56, 8), // read [40,48) write [56,64): disjoint
                ipr_delta::Command::add(32, vec![5; 24]),
            ],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..64).collect();
        let mut expected = reference.clone();
        apply_in_place(&script, &mut expected).unwrap();

        let mut buf = reference.clone();
        let report =
            apply_in_place_parallel(&script, &mut buf, &eager(2, ReadMode::ZeroCopy)).unwrap();
        assert_eq!(buf, expected);
        assert_eq!(report.snapshot_bytes, 32, "only the self-overlap staged");

        let mut buf = reference.clone();
        let report =
            apply_in_place_parallel(&script, &mut buf, &eager(2, ReadMode::Snapshot)).unwrap();
        assert_eq!(buf, expected);
        assert_eq!(report.snapshot_bytes, 40, "snapshot mode stages every read");
    }

    #[test]
    fn permuted_schedules_apply_identically() {
        let (reference, version) = corpus_pair(30_000, 4_242);
        let script = converted(&reference, &version);
        let plan = ParallelSchedule::plan(&script).unwrap();
        for seed in 0..4u64 {
            let shuffled = plan.permuted_within_waves(seed);
            let mut buf = reference.clone();
            buf.resize(usize::try_from(required_capacity(&script)).unwrap(), 0);
            apply_schedule_parallel(&script, &shuffled, &mut buf, &eager(3, ReadMode::ZeroCopy))
                .unwrap();
            buf.truncate(version.len());
            assert_eq!(buf, version, "seed {seed}");
        }
    }

    #[test]
    fn unsafe_script_rejected() {
        let script = DeltaScript::new(
            16,
            16,
            vec![
                ipr_delta::Command::copy(0, 8, 8),
                ipr_delta::Command::copy(8, 0, 8),
            ],
        )
        .unwrap();
        let mut buf = vec![0u8; 16];
        assert_eq!(
            apply_in_place_parallel(&script, &mut buf, &ParallelConfig::default()),
            Err(ParallelApplyError::UnsafeScript)
        );
    }

    #[test]
    fn buffer_too_small_rejected() {
        let script = DeltaScript::new(8, 8, vec![ipr_delta::Command::copy(0, 0, 8)]).unwrap();
        let mut buf = vec![0u8; 4];
        let err = apply_in_place_parallel(&script, &mut buf, &ParallelConfig::default());
        assert_eq!(
            err,
            Err(ParallelApplyError::BufferTooSmall {
                needed: 8,
                actual: 4
            })
        );
        assert!(!err.unwrap_err().to_string().is_empty());
    }

    #[test]
    fn foreign_schedule_rejected() {
        let (reference, version) = corpus_pair(10_000, 999);
        let script = converted(&reference, &version);
        let other = DeltaScript::new(8, 8, vec![ipr_delta::Command::copy(0, 0, 8)]).unwrap();
        let other_plan = ParallelSchedule::plan(&other).unwrap();
        let mut buf = reference.clone();
        buf.resize(usize::try_from(required_capacity(&script)).unwrap(), 0);
        match apply_schedule_parallel(&script, &other_plan, &mut buf, &ParallelConfig::default()) {
            Err(ParallelApplyError::ScheduleMismatch { .. }) => {}
            other => panic!("expected ScheduleMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_script_is_a_no_op() {
        let script = DeltaScript::new(4, 0, vec![]).unwrap();
        let mut buf = vec![1u8, 2, 3, 4];
        let report =
            apply_in_place_parallel(&script, &mut buf, &ParallelConfig::default()).unwrap();
        assert_eq!(report.waves, 0);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn report_counts_parallel_waves() {
        let (reference, version) = corpus_pair(50_000, 11_111);
        let script = converted(&reference, &version);
        let mut buf = reference.clone();
        buf.resize(usize::try_from(required_capacity(&script)).unwrap(), 0);
        let report =
            apply_in_place_parallel(&script, &mut buf, &eager(4, ReadMode::ZeroCopy)).unwrap();
        assert!(report.waves >= 1);
        assert!(report.parallel_waves <= report.waves);
        assert_eq!(report.threads, 4);
        // With the threshold at 0, every multi-command wave fans out.
        let plan = ParallelSchedule::plan(&script).unwrap();
        let multi = plan.waves().iter().filter(|w| w.len() > 1).count();
        assert_eq!(report.parallel_waves, multi);
    }

    #[test]
    fn serial_threshold_keeps_small_waves_inline() {
        let (reference, version) = corpus_pair(5_000, 1_000);
        let script = converted(&reference, &version);
        let mut buf = reference.clone();
        buf.resize(usize::try_from(required_capacity(&script)).unwrap(), 0);
        let config = ParallelConfig {
            threads: 4,
            read_mode: ReadMode::ZeroCopy,
            serial_wave_bytes: usize::MAX,
        };
        let report = apply_in_place_parallel(&script, &mut buf, &config).unwrap();
        assert_eq!(report.parallel_waves, 0);
        assert_eq!(report.snapshot_bytes, 0);
        buf.truncate(version.len());
        assert_eq!(buf, version);
    }

    #[test]
    fn partition_tiles_exactly() {
        let mut buf: Vec<u8> = (0u8..32).collect();
        let writes = [(4usize, 4usize), (12, 8), (28, 4)];
        let (dsts, gaps) = partition_writes(&mut buf, &writes);
        assert_eq!(dsts.iter().map(|d| d.len()).collect::<Vec<_>>(), [4, 8, 4]);
        assert_eq!(
            gaps.iter().map(|&(s, g)| (s, g.len())).collect::<Vec<_>>(),
            [(0, 4), (8, 4), (20, 8)]
        );
        // Shared reads resolve to the right bytes.
        assert_eq!(resolve_in_gaps(&gaps, 21, 3), &[21, 22, 23]);
        assert_eq!(resolve_in_gaps(&gaps, 0, 4), &[0, 1, 2, 3]);
    }

    #[test]
    fn intersection_probe() {
        let writes = [(4usize, 4usize), (12, 8)];
        assert!(intersects_any(&writes, 0, 5));
        assert!(intersects_any(&writes, 7, 1));
        assert!(intersects_any(&writes, 10, 3));
        assert!(intersects_any(&writes, 19, 10));
        assert!(!intersects_any(&writes, 0, 4));
        assert!(!intersects_any(&writes, 8, 4));
        assert!(!intersects_any(&writes, 20, 100));
    }

    #[test]
    fn effective_threads_floor() {
        assert!(ParallelConfig::default().effective_threads() >= 1);
        assert_eq!(ParallelConfig::with_threads(6).effective_threads(), 6);
    }
}

//! Spilled conversion: trade a *small* scratch buffer for compression.
//!
//! The paper targets devices with *no* scratch space, so every copy
//! command deleted from a cycle ships its bytes literally. Real devices
//! usually have a little RAM to spare — and any cycle-bound copy whose
//! data fits that budget can instead be *stashed*: its source bytes are
//! read into scratch before application starts, and written out at the
//! end, so the delta keeps the cheap copy encoding.
//!
//! With budget 0 this degenerates to the paper's algorithm; with budget
//! ≥ the total bytes on cycles, cycle loss vanishes entirely. The
//! `ablation` experiment sweeps the curve in between.

use crate::convert::{ConversionConfig, ConvertError};
use crate::crwi::CrwiGraph;
use crate::toposort::sort_breaking_cycles;
use ipr_delta::{Add, Command, DeltaScript};
use ipr_digraph::IntervalSet;
use std::fmt;

/// Configuration for [`convert_with_spill`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillConfig {
    /// Cycle policy and cost model (as for plain conversion).
    pub conversion: ConversionConfig,
    /// Scratch bytes available on the device for stashed copies.
    pub scratch_budget: u64,
}

/// A converted delta whose cycle-bound copies are stashed when they fit
/// the scratch budget.
#[derive(Clone, Debug)]
pub struct SpillOutcome {
    /// The converted script: conflict-free copies in topological order,
    /// then adds and stashed copies (interleaved, sorted by write
    /// offset).
    pub script: DeltaScript,
    /// Indices into `script.commands()` of the stashed copies; they must
    /// be pre-read into scratch before application (see
    /// [`apply_in_place_spilled`]).
    pub stashed: Vec<usize>,
    /// Scratch bytes the stashed copies require (≤ the budget).
    pub scratch_used: u64,
    /// Copies that did not fit the budget and were converted to adds.
    pub copies_converted: usize,
    /// Bytes shipped literally because they did not fit the budget.
    pub bytes_converted: u64,
    /// Delta growth in encoded bytes (only the converted copies count;
    /// stashed copies keep their copy encoding).
    pub conversion_cost: u64,
}

/// Error from [`apply_in_place_spilled`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpillApplyError {
    /// Buffer smaller than `max(source_len, target_len)`.
    Apply(crate::apply::InPlaceApplyError),
    /// A stash index is out of range or not a copy command.
    BadStashIndex {
        /// The offending index.
        index: usize,
    },
    /// The stashed copies need more scratch than provided.
    ScratchExceeded {
        /// Bytes required.
        needed: u64,
        /// Budget provided.
        budget: u64,
    },
}

impl fmt::Display for SpillApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillApplyError::Apply(e) => e.fmt(f),
            SpillApplyError::BadStashIndex { index } => {
                write!(f, "stash index {index} is not a copy command of the script")
            }
            SpillApplyError::ScratchExceeded { needed, budget } => {
                write!(
                    f,
                    "stashed copies need {needed} scratch bytes, budget is {budget}"
                )
            }
        }
    }
}

impl std::error::Error for SpillApplyError {}

impl From<crate::apply::InPlaceApplyError> for SpillApplyError {
    fn from(e: crate::apply::InPlaceApplyError) -> Self {
        SpillApplyError::Apply(e)
    }
}

/// Converts `script` for in-place reconstruction with a scratch budget.
///
/// Runs the paper's algorithm (partition, CRWI digraph, cycle-breaking
/// topological sort), then re-encodes the deleted vertices: largest-first,
/// each deleted copy is *stashed* if it still fits the remaining budget,
/// otherwise converted to an add.
///
/// # Errors
///
/// Same failure cases as
/// [`convert_to_in_place`](crate::convert_to_in_place).
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
/// use ipr_core::spill::{convert_with_spill, SpillConfig};
/// use ipr_core::ConversionConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A block swap (one 2-cycle): with 8 bytes of scratch, no literal
/// // data needs to ship at all.
/// let script = DeltaScript::new(16, 16, vec![
///     Command::copy(8, 0, 8),
///     Command::copy(0, 8, 8),
/// ])?;
/// let reference: Vec<u8> = (0..16).collect();
/// let out = convert_with_spill(&script, &reference, &SpillConfig {
///     conversion: ConversionConfig::default(),
///     scratch_budget: 8,
/// })?;
/// assert_eq!(out.stashed.len(), 1);
/// assert_eq!(out.copies_converted, 0);
/// # Ok(())
/// # }
/// ```
pub fn convert_with_spill(
    script: &DeltaScript,
    reference: &[u8],
    config: &SpillConfig,
) -> Result<SpillOutcome, ConvertError> {
    if reference.len() as u64 != script.source_len() {
        return Err(ConvertError::SourceLenMismatch {
            expected: script.source_len(),
            actual: reference.len() as u64,
        });
    }
    let _span = ipr_trace::span("spill.convert");
    let crwi = CrwiGraph::build(script.copies());
    let costs: Vec<u64> = crwi
        .copies()
        .iter()
        .map(|c| config.conversion.cost_format.conversion_cost(c))
        .collect();
    let sorted = sort_breaking_cycles(crwi.graph(), &costs, config.conversion.policy)?;

    // Largest-first greedy packing of deleted copies into the budget.
    let mut deleted: Vec<_> = sorted
        .removed
        .iter()
        .map(|&v| crwi.copies()[v as usize])
        .collect();
    deleted.sort_by_key(|c| std::cmp::Reverse(c.len));
    let mut remaining = config.scratch_budget;
    let mut stashed_copies = Vec::new();
    let mut converted = Vec::new();
    for c in deleted {
        if c.len <= remaining {
            remaining -= c.len;
            stashed_copies.push(c);
        } else {
            converted.push(c);
        }
    }

    // Emit: retained copies in topological order, then the tail (adds and
    // stashed copies) sorted by write offset.
    let mut commands: Vec<Command> = sorted
        .order
        .iter()
        .map(|&v| Command::Copy(crwi.copies()[v as usize]))
        .collect();
    #[derive(Clone)]
    enum Tail {
        Stash(ipr_delta::Copy),
        Literal(Add),
    }
    let mut tail: Vec<Tail> = Vec::new();
    let mut bytes_converted = 0u64;
    let mut conversion_cost = 0u64;
    for a in script.adds() {
        tail.push(Tail::Literal(a));
    }
    for c in &converted {
        bytes_converted += c.len;
        conversion_cost += config.conversion.cost_format.conversion_cost(c);
        let range = c.read_interval().as_usize_range();
        tail.push(Tail::Literal(Add::new(c.to, reference[range].to_vec())));
    }
    for c in &stashed_copies {
        tail.push(Tail::Stash(*c));
    }
    tail.sort_by_key(|t| match t {
        Tail::Stash(c) => c.to,
        Tail::Literal(a) => a.to,
    });
    let mut stashed = Vec::with_capacity(stashed_copies.len());
    for t in tail {
        match t {
            Tail::Stash(c) => {
                stashed.push(commands.len());
                commands.push(Command::Copy(c));
            }
            Tail::Literal(a) => commands.push(Command::Add(a)),
        }
    }
    let script = DeltaScript::new(script.source_len(), script.target_len(), commands)
        .expect("spilled conversion preserves script validity");
    let outcome = SpillOutcome {
        scratch_used: config.scratch_budget - remaining,
        copies_converted: converted.len(),
        bytes_converted,
        conversion_cost,
        script,
        stashed,
    };
    if ipr_trace::enabled() {
        ipr_trace::with(|r| {
            r.add("spill.stashed_copies", outcome.stashed.len() as u64);
            r.add("spill.stash_bytes", outcome.scratch_used);
            r.add("spill.copies_converted", outcome.copies_converted as u64);
            r.add("spill.bytes_converted", outcome.bytes_converted);
        });
    }
    Ok(outcome)
}

/// Applies a spilled script to `buf` in place, using at most
/// `scratch_budget` bytes of extra memory for the stashed copies.
///
/// The stashed copies' source regions are read into scratch *before* any
/// command runs (they are the reads the topological order could not
/// protect); all commands then apply serially, stashed ones writing from
/// scratch.
///
/// # Errors
///
/// See [`SpillApplyError`].
pub fn apply_in_place_spilled(
    script: &DeltaScript,
    stashed: &[usize],
    buf: &mut [u8],
    scratch_budget: u64,
) -> Result<(), SpillApplyError> {
    let needed = crate::apply::required_capacity(script);
    if (buf.len() as u64) < needed {
        return Err(crate::apply::InPlaceApplyError::BufferTooSmall {
            needed,
            actual: buf.len() as u64,
        }
        .into());
    }
    let _span = ipr_trace::span("apply.spilled");
    // Phase 1: stash.
    let mut total = 0u64;
    let mut scratch: Vec<Vec<u8>> = Vec::with_capacity(stashed.len());
    let mut is_stashed = vec![false; script.len()];
    for (slot, &index) in stashed.iter().enumerate() {
        let Some(Command::Copy(c)) = script.commands().get(index) else {
            return Err(SpillApplyError::BadStashIndex { index });
        };
        total += c.len;
        if total > scratch_budget {
            return Err(SpillApplyError::ScratchExceeded {
                needed: total,
                budget: scratch_budget,
            });
        }
        scratch.push(buf[c.read_interval().as_usize_range()].to_vec());
        is_stashed[index] = true;
        let _ = slot;
    }
    // Phase 2: serial application; stashed copies write from scratch.
    let mut next_slot = vec![usize::MAX; script.len()];
    for (slot, &index) in stashed.iter().enumerate() {
        next_slot[index] = slot;
    }
    for (i, cmd) in script.commands().iter().enumerate() {
        match cmd {
            Command::Copy(c) if is_stashed[i] => {
                let dst = c.write_interval().as_usize_range();
                buf[dst].copy_from_slice(&scratch[next_slot[i]]);
            }
            Command::Copy(c) => {
                let src = c.read_interval().as_usize_range();
                buf.copy_within(src, c.to as usize);
            }
            Command::Add(a) => {
                buf[a.write_interval().as_usize_range()].copy_from_slice(&a.data);
            }
        }
    }
    Ok(())
}

/// Checks the spilled variant of Equation 2: stashed copies read at time
/// zero (before any write); every other copy must not read bytes written
/// by earlier non-stashed commands *or any stashed command's write that
/// precedes it*.
#[must_use]
pub fn is_spill_safe(script: &DeltaScript, stashed: &[usize]) -> bool {
    let mut is_stashed = vec![false; script.len()];
    for &i in stashed {
        if i >= script.len() || !script.commands()[i].is_copy() {
            return false;
        }
        is_stashed[i] = true;
    }
    let mut written = IntervalSet::new();
    for (i, cmd) in script.commands().iter().enumerate() {
        if !is_stashed[i] {
            if let Some(read) = cmd.read_interval() {
                if written.intersects(read) {
                    return false;
                }
            }
        }
        written.insert(cmd.write_interval());
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_to_in_place;
    use crate::convert::ConversionConfig;
    use ipr_delta::diff::{Differ, GreedyDiffer};

    fn swap_script() -> (DeltaScript, Vec<u8>) {
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
        ((script), (0u8..16).collect())
    }

    fn spill(script: &DeltaScript, reference: &[u8], budget: u64) -> SpillOutcome {
        convert_with_spill(
            script,
            reference,
            &SpillConfig {
                conversion: ConversionConfig::default(),
                scratch_budget: budget,
            },
        )
        .unwrap()
    }

    fn check_apply(out: &SpillOutcome, reference: &[u8], expected: &[u8], budget: u64) {
        assert!(is_spill_safe(&out.script, &out.stashed));
        let mut buf = reference.to_vec();
        buf.resize(crate::apply::required_capacity(&out.script) as usize, 0);
        apply_in_place_spilled(&out.script, &out.stashed, &mut buf, budget).unwrap();
        assert_eq!(&buf[..expected.len()], expected);
    }

    #[test]
    fn zero_budget_equals_paper_algorithm() {
        let (script, reference) = swap_script();
        let out = spill(&script, &reference, 0);
        let plain = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        assert!(out.stashed.is_empty());
        assert_eq!(out.copies_converted, plain.report.copies_converted);
        assert_eq!(out.script, plain.script);
        let expected = ipr_delta::apply(&script, &reference).unwrap();
        check_apply(&out, &reference, &expected, 0);
    }

    #[test]
    fn sufficient_budget_eliminates_all_literal_loss() {
        let (script, reference) = swap_script();
        let out = spill(&script, &reference, 8);
        assert_eq!(out.stashed.len(), 1);
        assert_eq!(out.copies_converted, 0);
        assert_eq!(out.conversion_cost, 0);
        assert_eq!(out.scratch_used, 8);
        // The script still has 2 copy commands and no adds.
        assert_eq!(out.script.copy_count(), 2);
        assert_eq!(out.script.add_count(), 0);
        let expected = ipr_delta::apply(&script, &reference).unwrap();
        check_apply(&out, &reference, &expected, 8);
    }

    #[test]
    fn plain_checker_rejects_spilled_script_but_spill_checker_accepts() {
        let (script, reference) = swap_script();
        let out = spill(&script, &reference, 8);
        assert!(!crate::verify::is_in_place_safe(&out.script));
        assert!(is_spill_safe(&out.script, &out.stashed));
    }

    #[test]
    fn partial_budget_spills_largest_first() {
        // Two independent swaps of different sizes: budget fits only the
        // larger one.
        let script = DeltaScript::new(
            64,
            64,
            vec![
                Command::copy(16, 0, 16),
                Command::copy(0, 16, 16),
                Command::copy(40, 32, 8),
                Command::copy(32, 40, 8),
                Command::add(48, vec![9; 16]),
            ],
        )
        .unwrap();
        let reference: Vec<u8> = (0u8..64).collect();
        let out = spill(&script, &reference, 20);
        assert_eq!(out.stashed.len(), 1, "only the 16-byte copy fits");
        assert_eq!(out.scratch_used, 16);
        assert_eq!(out.copies_converted, 1);
        assert_eq!(out.bytes_converted, 8);
        let expected = ipr_delta::apply(&script, &reference).unwrap();
        check_apply(&out, &reference, &expected, 20);
    }

    #[test]
    fn spill_curve_on_realistic_pair() {
        let reference: Vec<u8> = (0..32_768u32).map(|i| (i * 29 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(7_000);
        let script = GreedyDiffer::default().diff(&reference, &version);
        let mut previous_cost = u64::MAX;
        for budget in [0u64, 64, 1024, 64 * 1024] {
            let out = spill(&script, &reference, budget);
            assert!(
                out.conversion_cost <= previous_cost,
                "budget {budget}: cost went up"
            );
            previous_cost = out.conversion_cost;
            check_apply(&out, &reference, &version, budget);
        }
        // A big enough budget eliminates the loss entirely.
        assert_eq!(previous_cost, 0);
    }

    #[test]
    fn apply_rejects_bad_stash_metadata() {
        let (script, reference) = swap_script();
        let out = spill(&script, &reference, 8);
        let mut buf = reference.clone();
        assert!(matches!(
            apply_in_place_spilled(&out.script, &[99], &mut buf, 8),
            Err(SpillApplyError::BadStashIndex { index: 99 })
        ));
        assert!(matches!(
            apply_in_place_spilled(&out.script, &out.stashed, &mut buf, 4),
            Err(SpillApplyError::ScratchExceeded {
                needed: 8,
                budget: 4
            })
        ));
    }

    #[test]
    fn checker_rejects_non_copy_stash() {
        let script = DeltaScript::new(4, 4, vec![Command::add(0, vec![1; 4])]).unwrap();
        assert!(!is_spill_safe(&script, &[0]));
        assert!(!is_spill_safe(&script, &[5]));
    }
}

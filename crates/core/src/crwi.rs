//! CRWI digraph construction (§4.2 of the paper).
//!
//! Each copy command becomes a vertex; a directed edge `u -> v` is added
//! when command `u`'s *read* interval intersects command `v`'s *write*
//! interval — performing `u` before `v` then avoids a write-before-read
//! conflict. The paper names the resulting digraph class CRWI
//! ("conflicting read/write intervals").
//!
//! Construction sorts the copy commands by write offset and finds, for
//! each read interval, the contiguous run of write intervals it touches
//! with two binary searches: `O(|C| log |C| + |E|)` overall. Lemma 1
//! guarantees `|E| <= L_V`.

use ipr_delta::Copy;
use ipr_digraph::{Digraph, IntervalIndex, NodeId};

/// The CRWI digraph of a set of copy commands.
///
/// Vertices are indices into [`CrwiGraph::copies`], which holds the copy
/// commands *sorted by write offset* (the paper's step 2); the graph is
/// built on that ordering.
///
/// # Example
///
/// ```
/// use ipr_delta::Copy;
/// use ipr_core::CrwiGraph;
///
/// // Two commands that swap adjacent blocks: each reads what the other
/// // writes, so the digraph is a 2-cycle.
/// let crwi = CrwiGraph::build(vec![
///     Copy { from: 8, to: 0, len: 8 },
///     Copy { from: 0, to: 8, len: 8 },
/// ]);
/// assert_eq!(crwi.graph().edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct CrwiGraph {
    copies: Vec<Copy>,
    graph: Digraph,
}

impl CrwiGraph {
    /// Builds the CRWI digraph for `copies`.
    ///
    /// The commands are sorted by write offset internally; vertex `i` of
    /// the graph corresponds to `self.copies()[i]`.
    ///
    /// # Panics
    ///
    /// Panics if two write intervals overlap or a command has zero length —
    /// commands coming from a validated
    /// [`DeltaScript`](ipr_delta::DeltaScript) can never trigger this.
    #[must_use]
    pub fn build(mut copies: Vec<Copy>) -> Self {
        copies.sort_by_key(|c| c.to);
        // Validates disjointness and non-emptiness (the documented panics);
        // edge construction itself is shared with the scratch-based path.
        let _index = IntervalIndex::new(copies.iter().map(Copy::write_interval).collect())
            .expect("copy write intervals must be disjoint and non-empty");
        let mut graph = Digraph::new(copies.len());
        build_edges_into(&copies, &mut graph);
        Self { copies, graph }
    }

    /// The copy commands in write order; vertex `i` is `copies()[i]`.
    #[must_use]
    pub fn copies(&self) -> &[Copy] {
        &self.copies
    }

    /// The conflict digraph.
    #[must_use]
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// Number of vertices (= copy commands).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of potential write-before-read conflicts (edges).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Decomposes into the sorted copies and the digraph.
    #[must_use]
    pub fn into_parts(self) -> (Vec<Copy>, Digraph) {
        (self.copies, self.graph)
    }
}

/// Adds the CRWI conflict edges for `copies` to `graph`.
///
/// `copies` must be sorted by write offset with pairwise-disjoint,
/// non-empty write intervals (every validated
/// [`DeltaScript`](ipr_delta::DeltaScript) guarantees this), and `graph`
/// must be an edgeless digraph with `copies.len()` nodes. The contiguous
/// run of write intervals each read interval touches is found with two
/// binary searches directly over the sorted copies — equivalent to an
/// [`IntervalIndex::overlapping`] query, without materializing the index.
pub(crate) fn build_edges_into(copies: &[Copy], graph: &mut Digraph) {
    debug_assert_eq!(graph.node_count(), copies.len());
    debug_assert_eq!(graph.edge_count(), 0);
    debug_assert!(copies
        .windows(2)
        .all(|w| w[0].to + w[0].len <= w[1].to && w[0].len > 0));
    for (u, copy) in copies.iter().enumerate() {
        let read = copy.read_interval();
        let lo = copies.partition_point(|c| c.to + c.len <= read.start());
        let hi = copies.partition_point(|c| c.to < read.end());
        for v in lo..hi.max(lo) {
            if v != u {
                graph.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_digraph::topo;

    #[test]
    fn no_conflicts_no_edges() {
        // Straight copy of disjoint regions, reads and writes never cross.
        let crwi = CrwiGraph::build(vec![
            Copy {
                from: 0,
                to: 0,
                len: 10,
            },
            Copy {
                from: 10,
                to: 10,
                len: 10,
            },
        ]);
        // Each command reads exactly its own write interval: self-conflicts
        // are excluded, and neither reads the other's write interval.
        assert_eq!(crwi.edge_count(), 0);
    }

    #[test]
    fn swap_produces_two_cycle() {
        let crwi = CrwiGraph::build(vec![
            Copy {
                from: 8,
                to: 0,
                len: 8,
            },
            Copy {
                from: 0,
                to: 8,
                len: 8,
            },
        ]);
        assert_eq!(crwi.node_count(), 2);
        assert_eq!(crwi.edge_count(), 2);
        assert!(topo::find_cycle(crwi.graph()).is_some());
    }

    #[test]
    fn chain_is_acyclic() {
        // Shift left by 4: command i reads where command i-1 writes... no,
        // reads [4(i+1), 4(i+2)) and writes [4i, 4i+4): command i reads what
        // command i+1 writes, giving edges i -> i+1, a path.
        let copies: Vec<Copy> = (0..10u64)
            .map(|i| Copy {
                from: 4 * (i + 1),
                to: 4 * i,
                len: 4,
            })
            .collect();
        let crwi = CrwiGraph::build(copies);
        assert_eq!(crwi.edge_count(), 9);
        assert!(topo::find_cycle(crwi.graph()).is_none());
    }

    #[test]
    fn vertices_sorted_by_write_offset() {
        let crwi = CrwiGraph::build(vec![
            Copy {
                from: 0,
                to: 100,
                len: 5,
            },
            Copy {
                from: 50,
                to: 0,
                len: 5,
            },
        ]);
        assert_eq!(crwi.copies()[0].to, 0);
        assert_eq!(crwi.copies()[1].to, 100);
    }

    #[test]
    fn self_overlapping_copy_no_self_edge() {
        // Reads [0, 10), writes [5, 15): intersects itself but a command
        // cannot conflict with itself (§4.1).
        let crwi = CrwiGraph::build(vec![Copy {
            from: 0,
            to: 5,
            len: 10,
        }]);
        assert_eq!(crwi.edge_count(), 0);
    }

    #[test]
    fn edge_direction_reader_first() {
        // Command A (writes [0,4)) reads [10, 14), which command B writes.
        // Edge must be A -> B: apply A before B.
        let crwi = CrwiGraph::build(vec![
            Copy {
                from: 10,
                to: 0,
                len: 4,
            }, // A: vertex 0 (to = 0)
            Copy {
                from: 20,
                to: 10,
                len: 4,
            }, // B: vertex 1 (to = 10)
        ]);
        assert_eq!(crwi.edge_count(), 1);
        assert!(crwi.graph().has_edge(0, 1));
    }

    #[test]
    fn lemma1_bound_holds() {
        // Random-ish commands; edges <= sum of read lengths <= L_V.
        let copies: Vec<Copy> = (0..100u64)
            .map(|i| Copy {
                from: (i * 37) % 900,
                to: i * 10,
                len: 10,
            })
            .collect();
        let total_read: u64 = copies.iter().map(|c| c.len).sum();
        let crwi = CrwiGraph::build(copies);
        assert!(crwi.edge_count() as u64 <= total_read);
    }

    #[test]
    fn quadratic_example_figure3() {
        // Paper Fig. 3 in miniature: L = 64, sqrt(L) = 8 blocks of 8.
        // Blocks 1..8 of the version each copy reference block 0; block 0 of
        // the version is 8 single-byte copies from arbitrary locations.
        let b = 8u64;
        let mut copies = Vec::new();
        for i in 0..b {
            copies.push(Copy {
                from: i * 3 % (b * b),
                to: i,
                len: 1,
            });
        }
        for blk in 1..b {
            copies.push(Copy {
                from: 0,
                to: blk * b,
                len: b,
            });
        }
        let crwi = CrwiGraph::build(copies);
        // Every length-b block reads [0, 8), which every 1-byte command
        // writes: (b-1) * b edges from the big copies, at least.
        assert!(crwi.edge_count() >= ((b - 1) * b) as usize);
    }
}

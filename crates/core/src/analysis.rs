//! Structural analysis of CRWI digraphs.
//!
//! §5–§6 of the paper reason about the *shape* of conflict digraphs —
//! sparsity, cycle frequency, component structure. This module computes
//! those statistics for a concrete graph, powering the `ipr stats` CLI
//! command and the experiment reports.

use crate::crwi::CrwiGraph;
use ipr_digraph::{scc, topo};
use std::fmt;

/// Structural statistics of one CRWI digraph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrwiStats {
    /// Vertices (copy commands).
    pub nodes: usize,
    /// Edges (potential write-before-read conflicts).
    pub edges: usize,
    /// Edge density relative to the quadratic worst case
    /// (`edges / nodes²`; §6 shows it can approach 1/4).
    pub density: f64,
    /// Whether the graph is acyclic (reordering alone suffices).
    pub acyclic: bool,
    /// Strongly connected components.
    pub components: usize,
    /// Components that can carry a cycle (size > 1 or self-loop).
    pub cyclic_components: usize,
    /// Vertices in the largest cyclic component (0 if acyclic).
    pub largest_cyclic_component: usize,
    /// Vertices involved in any cycle (sum of cyclic component sizes):
    /// an upper bound on how many copies cycle breaking may convert.
    pub vertices_on_cycles: usize,
    /// Total bytes written by copies on cycles: an upper bound on the
    /// literal bytes conversion can add.
    pub bytes_at_risk: u64,
}

impl CrwiStats {
    /// Analyzes a built CRWI graph.
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_delta::Copy;
    /// use ipr_core::{CrwiGraph, CrwiStats};
    ///
    /// // A two-command swap: one 2-cycle.
    /// let crwi = CrwiGraph::build(vec![
    ///     Copy { from: 8, to: 0, len: 8 },
    ///     Copy { from: 0, to: 8, len: 8 },
    /// ]);
    /// let stats = CrwiStats::analyze(&crwi);
    /// assert!(!stats.acyclic);
    /// assert_eq!(stats.vertices_on_cycles, 2);
    /// assert_eq!(stats.bytes_at_risk, 16);
    /// ```
    #[must_use]
    pub fn analyze(crwi: &CrwiGraph) -> Self {
        let graph = crwi.graph();
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let sccs = scc::tarjan(graph);
        let cyclic = sccs.cyclic_components(graph);
        let largest = cyclic.iter().map(|c| c.len()).max().unwrap_or(0);
        let on_cycles: usize = cyclic.iter().map(|c| c.len()).sum();
        let bytes_at_risk: u64 = cyclic
            .iter()
            .flat_map(|c| c.iter())
            .map(|&v| crwi.copies()[v as usize].len)
            .sum();
        Self {
            nodes,
            edges,
            density: if nodes == 0 {
                0.0
            } else {
                edges as f64 / (nodes as f64 * nodes as f64)
            },
            acyclic: topo::is_acyclic(graph),
            components: sccs.count(),
            cyclic_components: cyclic.len(),
            largest_cyclic_component: largest,
            vertices_on_cycles: on_cycles,
            bytes_at_risk,
        }
    }
}

impl fmt::Display for CrwiStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vertices:                 {}", self.nodes)?;
        writeln!(f, "edges:                    {}", self.edges)?;
        writeln!(f, "density (|E|/|V|^2):      {:.4}", self.density)?;
        writeln!(
            f,
            "acyclic:                  {}",
            if self.acyclic { "yes" } else { "no" }
        )?;
        writeln!(f, "components:               {}", self.components)?;
        writeln!(f, "cyclic components:        {}", self.cyclic_components)?;
        writeln!(
            f,
            "largest cyclic component: {}",
            self.largest_cyclic_component
        )?;
        writeln!(f, "vertices on cycles:       {}", self.vertices_on_cycles)?;
        write!(f, "bytes at risk:            {}", self.bytes_at_risk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_delta::Copy;

    #[test]
    fn acyclic_graph_stats() {
        let crwi = CrwiGraph::build(vec![
            Copy {
                from: 4,
                to: 0,
                len: 4,
            },
            Copy {
                from: 8,
                to: 4,
                len: 4,
            },
        ]);
        let s = CrwiStats::analyze(&crwi);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.edges, 1);
        assert!(s.acyclic);
        assert_eq!(s.cyclic_components, 0);
        assert_eq!(s.vertices_on_cycles, 0);
        assert_eq!(s.bytes_at_risk, 0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn swap_stats() {
        let crwi = CrwiGraph::build(vec![
            Copy {
                from: 8,
                to: 0,
                len: 8,
            },
            Copy {
                from: 0,
                to: 8,
                len: 8,
            },
        ]);
        let s = CrwiStats::analyze(&crwi);
        assert!(!s.acyclic);
        assert_eq!(s.cyclic_components, 1);
        assert_eq!(s.largest_cyclic_component, 2);
        assert_eq!(s.bytes_at_risk, 16);
        assert!((s.density - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_graph_counts_only_cyclic_bytes() {
        // A swap plus an unrelated safe copy.
        let crwi = CrwiGraph::build(vec![
            Copy {
                from: 8,
                to: 0,
                len: 8,
            },
            Copy {
                from: 0,
                to: 8,
                len: 8,
            },
            Copy {
                from: 100,
                to: 50,
                len: 10,
            },
        ]);
        let s = CrwiStats::analyze(&crwi);
        assert_eq!(s.vertices_on_cycles, 2);
        assert_eq!(s.bytes_at_risk, 16);
        assert_eq!(s.nodes, 3);
    }

    #[test]
    fn empty_graph() {
        let crwi = CrwiGraph::build(vec![]);
        let s = CrwiStats::analyze(&crwi);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.density, 0.0);
        assert!(s.acyclic);
    }
}

//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the slice of `rand` it actually uses: a seedable
//! [`rngs::StdRng`], the [`SeedableRng`] and [`Rng`] traits, and uniform
//! sampling over integer ranges. The generator is xoshiro256** seeded via
//! SplitMix64 — statistically strong for workload synthesis and tests,
//! *not* cryptographically secure (neither is upstream `StdRng` for that
//! use; nothing in this repo needs a CSPRNG).
//!
//! Determinism contract: for a fixed seed, the byte streams produced here
//! are stable across releases of this workspace, so every corpus,
//! experiment, and golden test derived from a seed is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits => uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value over the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded by SplitMix64. Mirrors the `rand::rngs::StdRng` surface this
    /// repo uses; the output stream differs from upstream (which is fine —
    /// all seeds in-repo are interpreted by this implementation only).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let s = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn range_distribution_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u32..5);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn standard_samples_all_types() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: u8 = rng.random();
        let _: u32 = rng.random();
        let _: bool = rng.random();
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}

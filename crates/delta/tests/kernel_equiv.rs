//! Property equivalence between the wide-word match kernels and the
//! naive byte-loop reference implementations they replaced.
//!
//! The kernels (`diff::kernel`) are the only place the differs compare
//! bytes, so a single wrong `trailing_zeros` shift or tail-handling slip
//! would silently corrupt every match decision. This suite pins each
//! kernel to the obviously-correct loop on arbitrary slices, offsets and
//! lengths — including unaligned starts, sub-word tails and windows
//! butted against either end of the buffer.

use ipr_delta::diff::kernel::{common_prefix, common_suffix, windows_eq};
use proptest::prelude::*;

/// The byte loop `common_prefix` replaced (see `greedy.rs:211` before
/// the kernel layer).
fn naive_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// The backward-extension byte loop `common_suffix` replaced.
fn naive_suffix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

/// Buffers whose halves share long runs: random bytes alone almost never
/// produce prefixes past a word, which is exactly the regime the word
/// loop must get right. Copy a window of `a` into `b` at a jittered
/// offset so matches of every length and alignment appear.
fn correlated_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        proptest::collection::vec(any::<u8>(), 0..200),
        proptest::collection::vec(any::<u8>(), 0..200),
        any::<u16>(),
    )
        .prop_map(|(a, mut b, salt)| {
            if !a.is_empty() && !b.is_empty() {
                let start = salt as usize % a.len();
                let dst = (salt as usize / 7) % b.len();
                let n = (a.len() - start).min(b.len() - dst);
                b[dst..dst + n].copy_from_slice(&a[start..start + n]);
            }
            (a, b)
        })
}

proptest! {
    #[test]
    fn prefix_matches_naive((a, b) in correlated_pair()) {
        prop_assert_eq!(common_prefix(&a, &b), naive_prefix(&a, &b));
    }

    #[test]
    fn suffix_matches_naive((a, b) in correlated_pair()) {
        prop_assert_eq!(common_suffix(&a, &b), naive_suffix(&a, &b));
    }

    #[test]
    fn windows_eq_matches_slice_eq((a, b) in correlated_pair()) {
        prop_assert_eq!(windows_eq(&a, &b), a == b);
    }

    /// Sub-slices at arbitrary offsets: the kernels see misaligned
    /// windows near buffer ends in production (extension starts at
    /// `c + seed_len`, any phase), so equivalence must hold for every
    /// `(offset, length)` choice, not just whole buffers.
    #[test]
    fn subslice_prefix_matches_naive(
        (a, b) in correlated_pair(),
        off_a in 0usize..64,
        off_b in 0usize..64,
        len in 0usize..200,
    ) {
        let sa = &a[off_a.min(a.len())..];
        let sb = &b[off_b.min(b.len())..];
        let sa = &sa[..len.min(sa.len())];
        let sb = &sb[..len.min(sb.len())];
        prop_assert_eq!(common_prefix(sa, sb), naive_prefix(sa, sb));
        prop_assert_eq!(common_suffix(sa, sb), naive_suffix(sa, sb));
        prop_assert_eq!(windows_eq(sa, sb), sa == sb);
    }

    /// Near-end windows: a planted mismatch in the final sub-word tail
    /// must be found at the exact byte, in both directions.
    #[test]
    fn tail_mismatch_found_exactly(
        base in proptest::collection::vec(any::<u8>(), 1..100),
        pos_salt in any::<u32>(),
    ) {
        let pos = pos_salt as usize % base.len();
        let mut other = base.clone();
        other[pos] ^= 0x01; // always a real difference
        prop_assert_eq!(common_prefix(&base, &other), pos);
        prop_assert_eq!(common_suffix(&base, &other), base.len() - 1 - pos);
        prop_assert!(!windows_eq(&base, &other));
    }
}

/// Exhaustive sweep over all short lengths and single-mismatch positions
/// — cheap enough to check every case rather than sample.
#[test]
fn exhaustive_short_windows() {
    for len in 0usize..=24 {
        let a: Vec<u8> = (0..len as u8).collect();
        assert_eq!(common_prefix(&a, &a), len);
        assert_eq!(common_suffix(&a, &a), len);
        assert!(windows_eq(&a, &a));
        for pos in 0..len {
            let mut b = a.clone();
            b[pos] = 0xff;
            assert_eq!(common_prefix(&a, &b), pos, "len {len} pos {pos}");
            assert_eq!(common_suffix(&a, &b), len - 1 - pos, "len {len} pos {pos}");
            assert!(!windows_eq(&a, &b));
        }
    }
}

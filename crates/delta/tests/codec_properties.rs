//! Property tests for the codec layer: round trips over arbitrary valid
//! scripts (not just differ output) and decoder totality on junk.

use ipr_delta::codec::{decode, encode, encode_checked, Format};
use ipr_delta::{apply, Command, DeltaScript};
use proptest::prelude::*;

/// Strategy: a valid script over an arbitrary segmentation of the target.
///
/// Builds the target from left to right out of random-size segments, each
/// a copy (from a random source offset) or an add, then applies a random
/// rotation of the command order so in-place formats see out-of-order
/// input.
fn script_strategy() -> impl Strategy<Value = (DeltaScript, Vec<u8>)> {
    let segments = proptest::collection::vec(
        (
            any::<bool>(), // copy?
            1u64..64,      // length
            0u64..512,     // source offset (copies)
            any::<u8>(),   // literal fill (adds)
        ),
        0..24,
    );
    (segments, 0usize..8, 600u64..700).prop_map(|(segments, rot, source_len)| {
        let mut commands = Vec::new();
        let mut to = 0u64;
        for (is_copy, len, from, fill) in segments {
            if is_copy {
                let from = from.min(source_len - len);
                commands.push(Command::copy(from, to, len));
            } else {
                commands.push(Command::add(to, vec![fill; len as usize]));
            }
            to += len;
        }
        let n = commands.len();
        if n > 1 {
            commands.rotate_left(rot % n);
        }
        let reference: Vec<u8> = (0..source_len).map(|i| (i * 31 % 251) as u8).collect();
        let script = DeltaScript::new(source_len, to, commands).expect("tiling by construction");
        (script, reference)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact round trip for the non-splitting formats, any command order.
    #[test]
    fn exact_round_trip((script, _) in script_strategy()) {
        for format in [Format::InPlace, Format::Improved] {
            let wire = encode(&script, format).unwrap();
            let decoded = decode(&wire).unwrap();
            prop_assert_eq!(&decoded.script, &script, "format {}", format);
        }
        if script.is_write_ordered() {
            let wire = encode(&script, Format::Ordered).unwrap();
            prop_assert_eq!(&decode(&wire).unwrap().script, &script);
        }
    }

    /// Semantic round trip for every format: the decoded script rebuilds
    /// the same version bytes.
    #[test]
    fn semantic_round_trip((script, reference) in script_strategy()) {
        let expected = apply(&script, &reference).unwrap();
        for format in Format::ALL {
            if !format.supports_out_of_order() && !script.is_write_ordered() {
                continue;
            }
            let wire = encode_checked(&script, format, &expected).unwrap();
            let decoded = decode(&wire).unwrap();
            prop_assert_eq!(decoded.target_crc, Some(ipr_delta::checksum::crc32(&expected)));
            prop_assert_eq!(
                &apply(&decoded.script, &reference).unwrap(),
                &expected,
                "format {}",
                format
            );
        }
    }

    /// Command order is preserved verbatim by in-place formats — it *is*
    /// the safety property.
    #[test]
    fn order_preserved((script, _) in script_strategy()) {
        for format in [Format::InPlace, Format::PaperInPlace, Format::Improved] {
            let wire = encode(&script, format).unwrap();
            let decoded = decode(&wire).unwrap();
            // Compare the sequence of write offsets; paper formats may
            // split commands but splits stay contiguous and in order.
            let original: Vec<u64> = script.commands().iter().map(Command::to).collect();
            let mut decoded_tos: Vec<u64> = decoded.script.commands().iter().map(Command::to).collect();
            if format == Format::PaperInPlace {
                // Collapse split runs: keep offsets that are not the
                // continuation of the previous command.
                let cmds = decoded.script.commands();
                decoded_tos = cmds
                    .iter()
                    .enumerate()
                    .filter(|&(i, c)| {
                        i == 0 || {
                            let prev = &cmds[i - 1];
                            prev.write_interval().end() != c.to()
                                || prev.is_add() != c.is_add()
                        }
                    })
                    .map(|(_, c)| c.to())
                    .collect();
                // Splitting may merge adjacent command boundaries in this
                // heuristic; only check subsequence containment then.
                let mut it = decoded_tos.iter().copied().peekable();
                for &t in &original {
                    while let Some(&d) = it.peek() {
                        if d == t {
                            break;
                        }
                        it.next();
                    }
                }
                continue;
            }
            prop_assert_eq!(decoded_tos, original, "format {}", format);
        }
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_total_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// The decoder never panics on valid headers with corrupted bodies.
    #[test]
    fn decoder_total_on_mutations(
        (script, _) in script_strategy(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..=255), 1..4,)
    ) {
        for format in Format::ALL {
            if !format.supports_out_of_order() && !script.is_write_ordered() {
                continue;
            }
            let mut wire = encode(&script, format).unwrap();
            for (idx, xor) in &flips {
                let at = idx.index(wire.len());
                wire[at] ^= xor;
            }
            let _ = decode(&wire);
        }
    }
}

//! Golden vectors freezing the wire format.
//!
//! Deltas are durable artifacts: a device flashed today must accept a
//! delta encoded by next year's server. These tests pin the exact bytes
//! of every codeword format for a small reference script; any encoder
//! change that breaks them is a wire-format break and must bump the
//! format version instead.

use ipr_delta::codec::{decode, encode, encode_checked, Format};
use ipr_delta::{Command, DeltaScript};

fn golden_script() -> DeltaScript {
    DeltaScript::new(
        300,
        20,
        vec![
            Command::copy(200, 0, 10),
            Command::add(10, vec![0xDE, 0xAD]),
            Command::copy(5, 12, 8),
        ],
    )
    .unwrap()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn golden_ordered() {
    let wire = encode(&golden_script(), Format::Ordered).unwrap();
    assert_eq!(
        hex(&wire),
        concat!(
            "49505201", // magic "IPR\x01"
            "00",       // format: ordered
            "00",       // flags: no crc
            "ac02",     // source_len = 300
            "14",       // target_len = 20
            "03",       // 3 commands
            "00c8010a", // copy from=200 len=10
            "0102dead", // add len=2 + data
            "000508"    // copy from=5 len=8
        )
    );
}

#[test]
fn golden_in_place() {
    let wire = encode(&golden_script(), Format::InPlace).unwrap();
    assert_eq!(
        hex(&wire),
        concat!(
            "49505201",
            "01", // format: in-place
            "00",
            "ac02",
            "14",
            "03",
            "00c801000a", // copy from=200 to=0 len=10
            "010a02dead", // add to=10 len=2 + data
            "00050c08"    // copy from=5 to=12 len=8
        )
    );
}

#[test]
fn golden_paper_ordered() {
    let wire = encode(&golden_script(), Format::PaperOrdered).unwrap();
    assert_eq!(
        hex(&wire),
        concat!(
            "49505201",
            "02",
            "00",
            "ac02",
            "14",
            "03",
            "02000000c8000a", // copy: tag, u32 from=200, u16 len=10
            "0302dead",       // add: tag, u8 len=2, data
            "02000000050008"  // copy: tag, u32 from=5, u16 len=8
        )
    );
}

#[test]
fn golden_paper_in_place() {
    let wire = encode(&golden_script(), Format::PaperInPlace).unwrap();
    assert_eq!(
        hex(&wire),
        concat!(
            "49505201",
            "03",
            "00",
            "ac02",
            "14",
            "03",
            "02000000c800000000000a", // copy: u32 from, u32 to, u16 len
            "030000000a02dead",       // add: u32 to, u8 len, data
            "02000000050000000c0008"
        )
    );
}

#[test]
fn golden_improved() {
    let wire = encode(&golden_script(), Format::Improved).unwrap();
    assert_eq!(
        hex(&wire),
        concat!(
            "49505201", "04", "00", "ac02", "14", "03",
            "02c8010a", // copy, chained (to = 0 = write end): from=200 len=10
            "0302dead", // add, chained (to = 10): len=2, data
            "020508"    // copy, chained (to = 12): from=5 len=8
        )
    );
}

#[test]
fn golden_checked_crc() {
    // CRC of the 20-byte target this script produces from a fixed
    // reference.
    let reference: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
    let target = ipr_delta::apply(&golden_script(), &reference).unwrap();
    let wire = encode_checked(&golden_script(), Format::Ordered, &target).unwrap();
    // Flags byte set; 4 CRC bytes after the command count.
    assert_eq!(wire[5], 0x01);
    let decoded = decode(&wire).unwrap();
    assert_eq!(
        decoded.target_crc,
        Some(ipr_delta::checksum::crc32(&target))
    );
}

#[test]
fn golden_vectors_decode_back() {
    for format in Format::ALL {
        let wire = encode(&golden_script(), format).unwrap();
        let decoded = decode(&wire).unwrap();
        assert_eq!(decoded.format, format);
        assert_eq!(decoded.script.target_len(), 20);
    }
}

//! Exhaustive error-variant coverage for the codec layer: every
//! [`EncodeError`] and [`DecodeError`] variant is constructed through the
//! public API (no hand-rolled error values) and its Display rendering is
//! asserted, so a future refactor can neither silently drop an error path
//! nor garble its message.

use ipr_delta::codec::stream::StreamEncoder;
use ipr_delta::codec::{decode, encode, encode_checked, DecodeError, EncodeError, Format, MAGIC};
use ipr_delta::varint::VarintError;
use ipr_delta::{varint, Command, DeltaScript, ScriptError};

/// A small script that is deliberately *not* in write order.
fn shuffled_script() -> DeltaScript {
    DeltaScript::new(
        8,
        8,
        vec![Command::add(4, vec![0xaa; 4]), Command::copy(0, 0, 4)],
    )
    .unwrap()
}

fn ordered_script() -> DeltaScript {
    DeltaScript::new(
        8,
        8,
        vec![Command::copy(0, 0, 4), Command::add(4, vec![0xaa; 4])],
    )
    .unwrap()
}

/// Hand-builds a wire header; the payload is appended by the caller.
fn header(format_byte: u8, source_len: u64, target_len: u64, count: u64) -> Vec<u8> {
    let mut wire = MAGIC.to_vec();
    wire.push(format_byte);
    wire.push(0); // no CRC
    varint::encode(source_len, &mut wire);
    varint::encode(target_len, &mut wire);
    varint::encode(count, &mut wire);
    wire
}

// ---------------------------------------------------------------------------
// EncodeError
// ---------------------------------------------------------------------------

#[test]
fn encode_error_not_write_ordered() {
    for format in [Format::Ordered, Format::PaperOrdered] {
        let err = encode(&shuffled_script(), format).unwrap_err();
        assert_eq!(err, EncodeError::NotWriteOrdered);
    }
    // The streaming encoder rejects the same condition per command.
    let mut enc = StreamEncoder::new(Format::Ordered, 8, 8, 2, None).unwrap();
    let err = enc
        .push_command(&Command::add(4, vec![0xaa; 4]))
        .unwrap_err();
    assert_eq!(err, EncodeError::NotWriteOrdered);
    assert_eq!(
        err.to_string(),
        "script is not in write order, required by an offset-free format"
    );
}

#[test]
fn encode_error_offset_too_large() {
    // A copy source past u32::MAX cannot fit the paper formats' 4-byte
    // big-endian offset fields.
    let script =
        DeltaScript::new((1u64 << 33) + 4, 4, vec![Command::copy(1u64 << 33, 0, 4)]).unwrap();
    for format in [Format::PaperOrdered, Format::PaperInPlace] {
        let err = encode(&script, format).unwrap_err();
        assert_eq!(err, EncodeError::OffsetTooLarge { index: 0 });
    }
    assert_eq!(
        EncodeError::OffsetTooLarge { index: 7 }.to_string(),
        "command 7 offset exceeds the fixed-width codeword field"
    );
    // The varint formats have no width limit: the same script encodes.
    for format in [Format::Ordered, Format::InPlace, Format::Improved] {
        encode(&script, format).unwrap();
    }
}

#[test]
fn encode_error_target_len_mismatch() {
    let err = encode_checked(&ordered_script(), Format::Ordered, &[0u8; 5]).unwrap_err();
    assert_eq!(
        err,
        EncodeError::TargetLenMismatch {
            expected: 8,
            actual: 5
        }
    );
    assert_eq!(
        err.to_string(),
        "target buffer is 5 bytes, script expects 8"
    );
}

#[test]
fn encode_error_unsupported_streaming() {
    for format in [Format::PaperOrdered, Format::PaperInPlace] {
        let err = StreamEncoder::new(format, 8, 8, 1, None).unwrap_err();
        assert_eq!(err, EncodeError::UnsupportedStreaming);
    }
    assert_eq!(
        EncodeError::UnsupportedStreaming.to_string(),
        "fixed-width paper formats cannot be streamed"
    );
}

#[test]
fn encode_error_command_count_mismatch() {
    // Fewer commands than declared: finish() objects.
    let enc = StreamEncoder::new(Format::InPlace, 8, 8, 2, None).unwrap();
    let err = enc.finish().unwrap_err();
    assert_eq!(err, EncodeError::CommandCountMismatch { declared: 2 });
    assert_eq!(err.to_string(), "stream encoder declared 2 commands");

    // More commands than declared: the extra push objects.
    let mut enc = StreamEncoder::new(Format::InPlace, 8, 8, 1, None).unwrap();
    enc.push_command(&Command::copy(0, 0, 8)).unwrap();
    let err = enc.push_command(&Command::copy(0, 0, 8)).unwrap_err();
    assert_eq!(err, EncodeError::CommandCountMismatch { declared: 1 });
}

// ---------------------------------------------------------------------------
// DecodeError
// ---------------------------------------------------------------------------

#[test]
fn decode_error_bad_magic() {
    for input in [&b"nope"[..], &b"IPR\x02\x00\x00"[..], &[][..]] {
        let err = decode(input).unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }
    assert_eq!(
        DecodeError::BadMagic.to_string(),
        "input is not an IPR delta file"
    );
}

#[test]
fn decode_error_unknown_format() {
    let wire = header(9, 0, 0, 0);
    let err = decode(&wire).unwrap_err();
    assert_eq!(err, DecodeError::UnknownFormat(9));
    assert_eq!(err.to_string(), "unknown format byte 0x09");
}

#[test]
fn decode_error_truncated() {
    // An add command declaring 100 data bytes with 2 present.
    let mut wire = header(1, 0, 100, 1);
    wire.push(0x01); // TAG_ADD
    varint::encode(0, &mut wire); // to
    varint::encode(100, &mut wire); // len
    wire.extend_from_slice(&[0xaa, 0xbb]);
    let err = decode(&wire).unwrap_err();
    assert_eq!(err, DecodeError::Truncated);
    assert_eq!(err.to_string(), "delta file truncated");
}

#[test]
fn decode_error_truncated_on_hostile_command_count() {
    // A declared command count vastly exceeding the input size must be
    // rejected up front — each command occupies at least one wire byte —
    // rather than pre-reserving an attacker-sized Vec. 2^50 commands
    // would previously reserve a capped-but-large buffer before reading
    // a single command.
    for format_byte in 0u8..5 {
        let mut wire = header(format_byte, 1 << 40, 1 << 40, 1 << 50);
        wire.extend_from_slice(&[0u8; 8]);
        let err = decode(&wire).unwrap_err();
        assert_eq!(err, DecodeError::Truncated, "format byte {format_byte}");
    }
}

#[test]
fn decode_error_varint() {
    // 11 continuation bytes: a varint may occupy at most 10.
    let mut wire = MAGIC.to_vec();
    wire.push(1);
    wire.push(0);
    wire.extend_from_slice(&[0xff; 11]);
    let err = decode(&wire).unwrap_err();
    assert_eq!(err, DecodeError::Varint(VarintError::Overflow));
    assert!(err.to_string().starts_with("malformed varint: "));

    // A varint cut off mid-field surfaces the truncation through the
    // same variant.
    let mut wire = MAGIC.to_vec();
    wire.push(1);
    wire.push(0);
    wire.push(0x80); // continuation bit set, then EOF
    let err = decode(&wire).unwrap_err();
    assert_eq!(err, DecodeError::Varint(VarintError::Truncated));
}

#[test]
fn decode_error_trailing_bytes() {
    let mut wire = encode(&ordered_script(), Format::InPlace).unwrap();
    wire.extend_from_slice(&[1, 2, 3]);
    let err = decode(&wire).unwrap_err();
    assert_eq!(err, DecodeError::TrailingBytes { remaining: 3 });
    assert_eq!(err.to_string(), "3 trailing bytes after the last command");
}

#[test]
fn decode_error_script() {
    // Two adds writing the same interval: structurally valid wire whose
    // commands are not a valid script.
    let mut wire = header(1, 0, 4, 2);
    for _ in 0..2 {
        wire.push(0x01); // TAG_ADD
        varint::encode(0, &mut wire); // to
        varint::encode(4, &mut wire); // len
        wire.extend_from_slice(&[0xcc; 4]);
    }
    let err = decode(&wire).unwrap_err();
    assert_eq!(
        err,
        DecodeError::Script(ScriptError::OverlappingWrites {
            first: 0,
            second: 1
        })
    );
    assert!(err
        .to_string()
        .starts_with("decoded commands are invalid: "));
}

#[test]
fn decode_errors_expose_sources() {
    use std::error::Error;
    let varint_err = DecodeError::Varint(VarintError::Overflow);
    assert!(varint_err.source().is_some());
    let script_err = DecodeError::Script(ScriptError::EmptyCommand { index: 0 });
    assert!(script_err.source().is_some());
    assert!(DecodeError::BadMagic.source().is_none());
    assert!(DecodeError::Truncated.source().is_none());
}

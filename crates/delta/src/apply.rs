//! Scratch-space reconstruction: the traditional way to apply a delta,
//! requiring both the reference file and a separate target buffer.

use crate::command::Command;
use crate::script::DeltaScript;
use std::fmt;

/// Error returned when a script cannot be applied to a reference buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// The reference buffer's length differs from the script's declared
    /// source length.
    SourceLenMismatch {
        /// Length the script declares.
        expected: u64,
        /// Length of the buffer supplied.
        actual: u64,
    },
    /// The reconstructed target failed its checksum (see
    /// [`apply_verified`]).
    ChecksumMismatch {
        /// CRC carried in the delta header.
        expected: u32,
        /// CRC of the reconstructed bytes.
        actual: u32,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::SourceLenMismatch { expected, actual } => {
                write!(f, "reference is {actual} bytes, script expects {expected}")
            }
            ApplyError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "reconstructed target crc32 {actual:#010x} != expected {expected:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// Materializes the version file from `reference` using scratch space.
///
/// Because a [`DeltaScript`]'s write intervals are disjoint and complete,
/// the command order is irrelevant here; this is the baseline the in-place
/// algorithm removes the scratch buffer from.
///
/// # Errors
///
/// Returns [`ApplyError::SourceLenMismatch`] if `reference` has the wrong
/// length.
///
/// # Example
///
/// ```
/// use ipr_delta::{apply, Command, DeltaScript};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let script = DeltaScript::new(5, 8, vec![
///     Command::copy(0, 0, 5),
///     Command::add(5, b"!!!".to_vec()),
/// ])?;
/// assert_eq!(apply(&script, b"hello")?, b"hello!!!");
/// # Ok(())
/// # }
/// ```
pub fn apply(script: &DeltaScript, reference: &[u8]) -> Result<Vec<u8>, ApplyError> {
    if reference.len() as u64 != script.source_len() {
        return Err(ApplyError::SourceLenMismatch {
            expected: script.source_len(),
            actual: reference.len() as u64,
        });
    }
    let mut target = vec![0u8; script.target_len() as usize];
    for cmd in script.commands() {
        match cmd {
            Command::Copy(c) => {
                let src = c.read_interval().as_usize_range();
                let dst = c.write_interval().as_usize_range();
                target[dst].copy_from_slice(&reference[src]);
            }
            Command::Add(a) => {
                let dst = a.write_interval().as_usize_range();
                target[dst].copy_from_slice(&a.data);
            }
        }
    }
    Ok(target)
}

/// Like [`apply`], additionally verifying the reconstruction against a
/// CRC-32 carried in the delta header.
///
/// # Errors
///
/// All failures of [`apply`], plus [`ApplyError::ChecksumMismatch`] when
/// the rebuilt bytes do not hash to `expected_crc`.
pub fn apply_verified(
    script: &DeltaScript,
    reference: &[u8],
    expected_crc: u32,
) -> Result<Vec<u8>, ApplyError> {
    let target = apply(script, reference)?;
    let actual = crate::checksum::crc32(&target);
    if actual != expected_crc {
        return Err(ApplyError::ChecksumMismatch {
            expected: expected_crc,
            actual,
        });
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::crc32;

    fn script() -> DeltaScript {
        DeltaScript::new(
            10,
            12,
            vec![
                Command::copy(5, 0, 5),
                Command::add(5, b"-+-".to_vec()),
                Command::copy(0, 8, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn reconstructs_target() {
        let reference = b"0123456789";
        let out = apply(&script(), reference).unwrap();
        assert_eq!(out, b"56789-+-0123");
    }

    #[test]
    fn order_does_not_matter_with_scratch_space() {
        let reference = b"0123456789";
        let s = script();
        let p = s.permuted(&[2, 1, 0]);
        assert_eq!(apply(&s, reference).unwrap(), apply(&p, reference).unwrap());
    }

    #[test]
    fn wrong_reference_length_rejected() {
        let err = apply(&script(), b"0123").unwrap_err();
        assert_eq!(
            err,
            ApplyError::SourceLenMismatch {
                expected: 10,
                actual: 4
            }
        );
    }

    #[test]
    fn verified_apply_checks_crc() {
        let reference = b"0123456789";
        let expected = crc32(b"56789-+-0123");
        assert!(apply_verified(&script(), reference, expected).is_ok());
        let err = apply_verified(&script(), reference, expected ^ 1).unwrap_err();
        assert!(matches!(err, ApplyError::ChecksumMismatch { .. }));
    }

    #[test]
    fn empty_target() {
        let s = DeltaScript::new(3, 0, vec![]).unwrap();
        assert_eq!(apply(&s, b"abc").unwrap(), Vec::<u8>::new());
    }
}

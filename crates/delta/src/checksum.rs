//! CRC-32 (IEEE 802.3) checksums, implemented in-tree to keep the
//! dependency set minimal.
//!
//! Delta-file headers carry the CRC of the version file so an applier can
//! detect a corrupted reconstruction — particularly valuable for in-place
//! application, where a wrongly ordered delta silently corrupts the target.

/// Streaming CRC-32 (IEEE polynomial, reflected).
///
/// # Example
///
/// ```
/// use ipr_delta::checksum::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xcbf4_3926); // the canonical check value
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, generated at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

impl Crc32 {
    /// Creates a fresh checksum state.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xffff_ffff }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut state = self.state;
        for &byte in data {
            let idx = ((state ^ u32::from(byte)) & 0xff) as usize;
            state = (state >> 8) ^ TABLE[idx];
        }
        self.state = state;
    }

    /// Returns the final checksum value.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
///
/// # Example
///
/// ```
/// assert_eq!(ipr_delta::checksum::crc32(b""), 0);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(crc32(b"abc"), 0x3524_41c2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut crc = Crc32::new();
        for chunk in data.chunks(37) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(&data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"abcd"), crc32(b"abce"));
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(Crc32::default(), Crc32::new());
    }
}

//! Delta composition: merge consecutive deltas without materializing the
//! intermediate version.
//!
//! A distribution server holding `Δ(v1→v2)` and `Δ(v2→v3)` can serve a
//! device still running `v1` either two hops or one composed delta
//! `Δ(v1→v3)`. Composition rewrites every read of `v2` through the first
//! delta's command map: pieces that land in a copy of the first delta
//! become copies from `v1`; pieces that land in an add become literal
//! data. No file contents are touched — only command intervals.
//!
//! Composed deltas accumulate fragmentation over long chains (each hop
//! can split commands at the previous hop's command boundaries); the
//! `chains` experiment quantifies the trade against hop-by-hop updates
//! and a direct diff.

use crate::command::Command;
use crate::diff::ScriptBuilder;
use crate::script::DeltaScript;
use ipr_digraph::IntervalIndex;
use std::fmt;

/// Error returned by [`compose`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// The first delta's target length differs from the second's source
    /// length: they are not consecutive.
    LengthMismatch {
        /// Target length of the first delta.
        first_target: u64,
        /// Source length of the second delta.
        second_source: u64,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::LengthMismatch {
                first_target,
                second_source,
            } => write!(
                f,
                "first delta produces {first_target} bytes, second consumes {second_source}"
            ),
        }
    }
}

impl std::error::Error for ComposeError {}

/// Composes two consecutive deltas: `compose(Δ(v1→v2), Δ(v2→v3))`
/// returns `Δ(v1→v3)`.
///
/// For every byte of `v3`, the second delta says where it comes from in
/// `v2` (or gives it literally); the first delta then says where that
/// `v2` byte comes from in `v1` (or gives it literally). Composition
/// resolves the indirection command-wise, so `apply(compose(a, b), v1)
/// == apply(b, apply(a, v1))` always — verified by property tests.
///
/// The result is in write order; adjacent pieces merge where possible.
///
/// # Errors
///
/// [`ComposeError::LengthMismatch`] when the deltas are not consecutive.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{Differ, GreedyDiffer};
/// use ipr_delta::{apply, compose};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let v1 = b"the original file contents, version one".to_vec();
/// let v2 = b"the modified file contents, version two".to_vec();
/// let v3 = b"the modified file contents, version three!".to_vec();
/// let differ = GreedyDiffer::new(4);
/// let d12 = differ.diff(&v1, &v2);
/// let d23 = differ.diff(&v2, &v3);
///
/// let d13 = compose(&d12, &d23)?;
/// assert_eq!(apply(&d13, &v1)?, v3);
/// # Ok(())
/// # }
/// ```
pub fn compose(first: &DeltaScript, second: &DeltaScript) -> Result<DeltaScript, ComposeError> {
    if first.target_len() != second.source_len() {
        return Err(ComposeError::LengthMismatch {
            first_target: first.target_len(),
            second_source: second.source_len(),
        });
    }

    // Index the first delta's commands by their (disjoint, tiling) write
    // intervals in v2 space.
    let mut first_by_write: Vec<&Command> = first.commands().iter().collect();
    first_by_write.sort_by_key(|c| c.to());
    let index = IntervalIndex::new(first_by_write.iter().map(|c| c.write_interval()).collect())
        .expect("script write intervals are disjoint and non-empty");

    // Emit the second delta's commands in write order, rewriting reads.
    let mut second_sorted: Vec<&Command> = second.commands().iter().collect();
    second_sorted.sort_by_key(|c| c.to());

    let mut out = ScriptBuilder::new();
    for cmd in second_sorted {
        match cmd {
            Command::Add(a) => out.push_literal(&a.data),
            Command::Copy(c) => {
                // Split the read range [c.from, c.from + c.len) in v2 by
                // the first delta's command boundaries.
                let read = c.read_interval();
                for i in index.overlapping(read) {
                    let producer = first_by_write[i];
                    let overlap = producer
                        .write_interval()
                        .intersection(read)
                        .expect("index returned an overlapping interval");
                    match producer {
                        Command::Copy(p) => {
                            // v2 bytes [overlap) came from v1 at the same
                            // offset within p's read interval.
                            let delta_in_p = overlap.start() - p.to;
                            out.push_copy(p.from + delta_in_p, overlap.len());
                        }
                        Command::Add(p) => {
                            let start = (overlap.start() - p.to) as usize;
                            let end = start + overlap.len() as usize;
                            out.push_literal(&p.data[start..end]);
                        }
                    }
                }
            }
        }
    }
    Ok(out.finish(first.source_len()))
}

/// Composes a whole chain of consecutive deltas left to right.
///
/// # Errors
///
/// [`ComposeError::LengthMismatch`] at the first non-consecutive hop.
///
/// # Panics
///
/// Panics if `chain` is empty.
pub fn compose_chain(chain: &[DeltaScript]) -> Result<DeltaScript, ComposeError> {
    assert!(!chain.is_empty(), "cannot compose an empty chain");
    let mut acc = chain[0].clone();
    for next in &chain[1..] {
        acc = compose(&acc, next)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::diff::{Differ, GreedyDiffer};

    fn triple() -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let v1: Vec<u8> = (0..6000u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut v2 = v1.clone();
        v2.rotate_left(700);
        v2.truncate(5500);
        let mut v3 = v2.clone();
        v3.splice(1000..1000, (0..300).map(|i| (i % 256) as u8));
        for i in (0..v3.len()).step_by(333) {
            v3[i] ^= 0x11;
        }
        (v1, v2, v3)
    }

    #[test]
    fn composed_delta_equals_two_hops() {
        let (v1, v2, v3) = triple();
        let differ = GreedyDiffer::default();
        let d12 = differ.diff(&v1, &v2);
        let d23 = differ.diff(&v2, &v3);
        let d13 = compose(&d12, &d23).unwrap();
        assert_eq!(d13.source_len(), v1.len() as u64);
        assert_eq!(d13.target_len(), v3.len() as u64);
        assert_eq!(apply(&d13, &v1).unwrap(), v3);
    }

    #[test]
    fn compose_with_identity_is_identityish() {
        // Composing with a "no change" delta preserves semantics.
        let (v1, v2, _) = triple();
        let differ = GreedyDiffer::default();
        let d12 = differ.diff(&v1, &v2);
        let d22 = differ.diff(&v2, &v2);
        let composed = compose(&d12, &d22).unwrap();
        assert_eq!(apply(&composed, &v1).unwrap(), v2);
        let d11 = differ.diff(&v1, &v1);
        let composed = compose(&d11, &d12).unwrap();
        assert_eq!(apply(&composed, &v1).unwrap(), v2);
    }

    #[test]
    fn adds_flow_through_composition() {
        // v3 copies a region of v2 that the first delta added literally:
        // the composed delta must carry those bytes as an add.
        let v1 = vec![1u8; 100];
        let d12 = DeltaScript::new(
            100,
            100,
            vec![
                Command::copy(0, 0, 50),
                Command::add(50, (0..50).map(|i| i as u8).collect()),
            ],
        )
        .unwrap();
        let d23 = DeltaScript::new(
            100,
            60,
            vec![
                Command::copy(40, 0, 30), // straddles copy/add boundary of d12
                Command::copy(0, 30, 30),
            ],
        )
        .unwrap();
        let d13 = compose(&d12, &d23).unwrap();
        let v2 = apply(&d12, &v1).unwrap();
        let v3 = apply(&d23, &v2).unwrap();
        assert_eq!(apply(&d13, &v1).unwrap(), v3);
        // The straddling copy split into one copy piece + one add piece.
        assert!(d13.added_bytes() >= 20);
        assert!(d13.copied_bytes() >= 40);
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = DeltaScript::new(10, 10, vec![Command::copy(0, 0, 10)]).unwrap();
        let b = DeltaScript::new(11, 11, vec![Command::copy(0, 0, 11)]).unwrap();
        let err = compose(&a, &b).unwrap_err();
        assert_eq!(
            err,
            ComposeError::LengthMismatch {
                first_target: 10,
                second_source: 11
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn chain_composition_over_many_versions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let mut versions = vec![(0..4000u32)
            .map(|i| (i * 7 % 251) as u8)
            .collect::<Vec<u8>>()];
        for _ in 0..5 {
            let mut next = versions.last().unwrap().clone();
            // Random block move + point edits.
            let len = next.len();
            let s = rng.random_range(0..len / 2);
            let e = s + rng.random_range(1..len / 4);
            let block: Vec<u8> = next.drain(s..e).collect();
            let d = rng.random_range(0..next.len());
            next.splice(d..d, block);
            for _ in 0..10 {
                let i = rng.random_range(0..next.len());
                next[i] ^= 0x42;
            }
            versions.push(next);
        }
        let differ = GreedyDiffer::default();
        let deltas: Vec<DeltaScript> = versions
            .windows(2)
            .map(|w| differ.diff(&w[0], &w[1]))
            .collect();
        let composed = compose_chain(&deltas).unwrap();
        assert_eq!(
            apply(&composed, &versions[0]).unwrap(),
            *versions.last().unwrap()
        );
    }

    #[test]
    fn composed_delta_converts_in_place() {
        // The composed delta is an ordinary script: the in-place pipeline
        // must accept it. (Exercised via the write-order invariant here;
        // full conversion equivalence lives in the integration tests.)
        let (v1, v2, v3) = triple();
        let differ = GreedyDiffer::default();
        let d13 = compose(&differ.diff(&v1, &v2), &differ.diff(&v2, &v3)).unwrap();
        assert!(d13.is_write_ordered());
        assert_eq!(apply(&d13, &v1).unwrap(), v3);
    }

    #[test]
    fn empty_target_composes() {
        let a = DeltaScript::new(10, 4, vec![Command::copy(0, 0, 4)]).unwrap();
        let b = DeltaScript::new(4, 0, vec![]).unwrap();
        let composed = compose(&a, &b).unwrap();
        assert!(composed.is_empty());
        assert_eq!(composed.source_len(), 10);
    }

    #[test]
    #[should_panic(expected = "empty chain")]
    fn empty_chain_rejected() {
        let _ = compose_chain(&[]);
    }
}

//! A bounds-checked byte cursor shared by the codec decoders.

use super::DecodeError;
use crate::varint;

/// Sequential reader over an encoded delta payload.
#[derive(Clone, Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn consumed(&self) -> usize {
        self.pos
    }

    pub(crate) fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn read_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn read_u16_be(&mut self) -> Result<u16, DecodeError> {
        let bytes = self.read_bytes(2)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    pub(crate) fn read_u32_be(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.read_bytes(4)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    pub(crate) fn read_u32_le(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.read_bytes(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    pub(crate) fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let (value, used) = varint::decode(&self.buf[self.pos..])?;
        self.pos += used;
        Ok(value)
    }

    pub(crate) fn read_bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_sequence() {
        let mut buf = vec![0x2a];
        buf.extend_from_slice(&0x0102u16.to_be_bytes());
        buf.extend_from_slice(&0xdead_beefu32.to_be_bytes());
        buf.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        varint::encode(300, &mut buf);
        buf.extend_from_slice(b"xyz");

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_u8().unwrap(), 0x2a);
        assert_eq!(r.read_u16_be().unwrap(), 0x0102);
        assert_eq!(r.read_u32_be().unwrap(), 0xdead_beef);
        assert_eq!(r.read_u32_le().unwrap(), 0xdead_beef);
        assert_eq!(r.read_varint().unwrap(), 300);
        assert_eq!(r.read_bytes(3).unwrap(), b"xyz");
        assert!(r.is_exhausted());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_errors() {
        let mut r = ByteReader::new(&[0x01]);
        assert!(r.read_u32_be().is_err());
        assert_eq!(r.read_u8().unwrap(), 0x01);
        assert!(r.read_u8().is_err());
        let mut r2 = ByteReader::new(&[0x80]);
        assert!(matches!(r2.read_varint(), Err(DecodeError::Varint(_))));
    }
}

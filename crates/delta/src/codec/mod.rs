//! Serialization of delta scripts into byte-level delta files.
//!
//! Four codeword families reproduce the encodings the paper discusses (§3,
//! §7) plus the redesign it proposes as future work:
//!
//! * [`Format::Ordered`] — the classic delta encoding *without* write
//!   offsets: commands are applied in write order, so each command's `to`
//!   offset is implicit. This is the "Δ compress, no write offsets" column
//!   of Table 1.
//! * [`Format::InPlace`] — the same varint codewords with an *explicit*
//!   write offset per command, as in-place reconstruction requires (the
//!   delta applies commands out of write order). The size difference
//!   between `Ordered` and `InPlace` on the same script is the paper's
//!   1.9% "encoding loss".
//! * [`Format::PaperOrdered`] / [`Format::PaperInPlace`] — faithful to the
//!   fixed-width codewords the paper adopted from earlier differencing
//!   work: 4-byte offsets, 2-byte copy lengths, and a *single byte* for add
//!   lengths, so long literal runs split into many small add commands. The
//!   paper calls out this inefficiency explicitly.
//! * [`Format::Improved`] — the codeword redesign the paper suggests
//!   ("a redesign of the delta compression codewords for in-place
//!   reconstructibility would further reduce lost compression"): varint
//!   fields plus a tag bit that elides `to` when a command chains directly
//!   after the previous command's write interval.
//!
//! Every delta file starts with a small header carrying the format, the
//! source/target lengths and optionally a CRC-32 of the target so appliers
//! can verify reconstruction.
//!
//! # Example
//!
//! ```
//! use ipr_delta::{Command, DeltaScript};
//! use ipr_delta::codec::{decode, encode, Format};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let script = DeltaScript::new(8, 8, vec![Command::copy(0, 0, 8)])?;
//! let bytes = encode(&script, Format::InPlace)?;
//! let decoded = decode(&bytes)?;
//! assert_eq!(decoded.script, script);
//! assert_eq!(decoded.format, Format::InPlace);
//! # Ok(())
//! # }
//! ```

mod improved;
mod inplace;
mod ordered;
mod paper;
mod reader;

pub mod stream;

use crate::checksum::crc32;
use crate::command::Copy;
use crate::script::{DeltaScript, ScriptError};
use crate::varint::{self, VarintError};
use reader::ByteReader;
use std::fmt;

/// Magic bytes opening every encoded delta file.
pub const MAGIC: [u8; 4] = *b"IPR\x01";

/// Header flag bit: a CRC-32 of the target file follows the command count.
const FLAG_TARGET_CRC: u8 = 0x01;

/// Command tag bytes shared by the varint formats.
const TAG_COPY: u8 = 0x00;
const TAG_ADD: u8 = 0x01;

/// A delta-file codeword format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// Varint codewords, write offsets implicit (commands in write order).
    Ordered,
    /// Varint codewords with explicit write offsets (any command order).
    InPlace,
    /// Paper-faithful fixed-width codewords, write offsets implicit.
    PaperOrdered,
    /// Paper-faithful fixed-width codewords with explicit write offsets.
    PaperInPlace,
    /// Redesigned in-place codewords with chained write offsets.
    Improved,
}

impl Format {
    /// All formats, for sweeps and tests.
    pub const ALL: [Format; 5] = [
        Format::Ordered,
        Format::InPlace,
        Format::PaperOrdered,
        Format::PaperInPlace,
        Format::Improved,
    ];

    /// Whether the format carries explicit write offsets and therefore
    /// supports out-of-write-order (in-place reconstructible) deltas.
    #[must_use]
    pub fn supports_out_of_order(self) -> bool {
        matches!(
            self,
            Format::InPlace | Format::PaperInPlace | Format::Improved
        )
    }

    /// The wire byte identifying this format.
    #[must_use]
    fn wire_byte(self) -> u8 {
        match self {
            Format::Ordered => 0,
            Format::InPlace => 1,
            Format::PaperOrdered => 2,
            Format::PaperInPlace => 3,
            Format::Improved => 4,
        }
    }

    fn from_wire_byte(b: u8) -> Option<Format> {
        Some(match b {
            0 => Format::Ordered,
            1 => Format::InPlace,
            2 => Format::PaperOrdered,
            3 => Format::PaperInPlace,
            4 => Format::Improved,
            _ => return None,
        })
    }

    /// Encoded size in bytes of one copy command under this format,
    /// including splits forced by fixed-width length fields.
    ///
    /// Used by cycle-breaking cost models: converting copy `c` to an add
    /// grows the delta by [`Format::add_cost`]` - `[`Format::copy_cost`].
    #[must_use]
    pub fn copy_cost(self, c: &Copy) -> u64 {
        match self {
            Format::Ordered => {
                1 + varint::encoded_len(c.from) as u64 + varint::encoded_len(c.len) as u64
            }
            Format::InPlace => {
                1 + varint::encoded_len(c.from) as u64
                    + varint::encoded_len(c.to) as u64
                    + varint::encoded_len(c.len) as u64
            }
            Format::PaperOrdered => 7 * paper::split_count(c.len, paper::MAX_COPY_LEN),
            Format::PaperInPlace => 11 * paper::split_count(c.len, paper::MAX_COPY_LEN),
            // Worst case: the `to` offset is present (no chaining).
            Format::Improved => {
                1 + varint::encoded_len(c.from) as u64
                    + varint::encoded_len(c.to) as u64
                    + varint::encoded_len(c.len) as u64
            }
        }
    }

    /// Encoded size in bytes of one add command of `len` literal bytes
    /// written at offset `to`, including the data and any splits.
    #[must_use]
    pub fn add_cost(self, to: u64, len: u64) -> u64 {
        match self {
            Format::Ordered => 1 + varint::encoded_len(len) as u64 + len,
            Format::InPlace => {
                1 + varint::encoded_len(to) as u64 + varint::encoded_len(len) as u64 + len
            }
            Format::PaperOrdered => 2 * paper::split_count(len, paper::MAX_ADD_LEN) + len,
            Format::PaperInPlace => 6 * paper::split_count(len, paper::MAX_ADD_LEN) + len,
            Format::Improved => {
                1 + varint::encoded_len(to) as u64 + varint::encoded_len(len) as u64 + len
            }
        }
    }

    /// Bytes the delta grows by when copy `c` is converted to an add.
    ///
    /// This is the paper's `cost(v) = l - |f|` node cost, computed against
    /// real codeword sizes.
    #[must_use]
    pub fn conversion_cost(self, c: &Copy) -> u64 {
        self.add_cost(c.to, c.len).saturating_sub(self.copy_cost(c))
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Format::Ordered => "ordered",
            Format::InPlace => "in-place",
            Format::PaperOrdered => "paper-ordered",
            Format::PaperInPlace => "paper-in-place",
            Format::Improved => "improved",
        };
        f.write_str(name)
    }
}

/// Error returned when a script cannot be encoded in a given format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// The format has implicit write offsets but the script is not in
    /// write order (convert with
    /// [`DeltaScript::into_write_ordered`] first, or use an in-place
    /// format).
    NotWriteOrdered,
    /// An offset exceeds the fixed-width field of a paper format.
    OffsetTooLarge {
        /// Index of the offending command.
        index: usize,
    },
    /// `target` passed to [`encode_checked`] does not match the script's
    /// target length.
    TargetLenMismatch {
        /// The script's declared target length.
        expected: u64,
        /// The actual buffer length supplied.
        actual: u64,
    },
    /// The format cannot be encoded incrementally (the fixed-width paper
    /// formats split commands, so their command count is only known after
    /// a batch pass).
    UnsupportedStreaming,
    /// A [`stream::StreamEncoder`] was given a different number of
    /// commands than it declared in the header.
    CommandCountMismatch {
        /// The count declared at construction.
        declared: u64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NotWriteOrdered => {
                write!(
                    f,
                    "script is not in write order, required by an offset-free format"
                )
            }
            EncodeError::OffsetTooLarge { index } => {
                write!(
                    f,
                    "command {index} offset exceeds the fixed-width codeword field"
                )
            }
            EncodeError::TargetLenMismatch { expected, actual } => {
                write!(
                    f,
                    "target buffer is {actual} bytes, script expects {expected}"
                )
            }
            EncodeError::UnsupportedStreaming => {
                write!(f, "fixed-width paper formats cannot be streamed")
            }
            EncodeError::CommandCountMismatch { declared } => {
                write!(f, "stream encoder declared {declared} commands")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error returned when decoding a malformed delta file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The format byte is unknown.
    UnknownFormat(u8),
    /// The input ended prematurely.
    Truncated,
    /// A varint field is malformed.
    Varint(VarintError),
    /// Bytes remain after the declared command count was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// The decoded commands do not form a valid script.
    Script(ScriptError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "input is not an IPR delta file"),
            DecodeError::UnknownFormat(b) => write!(f, "unknown format byte 0x{b:02x}"),
            DecodeError::Truncated => write!(f, "delta file truncated"),
            DecodeError::Varint(e) => write!(f, "malformed varint: {e}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the last command")
            }
            DecodeError::Script(e) => write!(f, "decoded commands are invalid: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Varint(e) => Some(e),
            DecodeError::Script(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VarintError> for DecodeError {
    fn from(e: VarintError) -> Self {
        DecodeError::Varint(e)
    }
}

impl From<ScriptError> for DecodeError {
    fn from(e: ScriptError) -> Self {
        DecodeError::Script(e)
    }
}

/// A decoded delta file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedDelta {
    /// The decoded script. For formats that split long commands
    /// ([`Format::PaperOrdered`], [`Format::PaperInPlace`]) the command
    /// boundaries may differ from the script originally encoded, but the
    /// materialized version file is identical.
    pub script: DeltaScript,
    /// The codeword format the file used.
    pub format: Format,
    /// CRC-32 of the target file, if the encoder embedded one.
    pub target_crc: Option<u32>,
}

/// Encodes `script` in `format` without a target checksum.
///
/// # Errors
///
/// See [`EncodeError`].
pub fn encode(script: &DeltaScript, format: Format) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    encode_inner_into(script, format, None, &mut out)?;
    Ok(out)
}

/// [`encode`] into a caller-supplied buffer, reusing its capacity.
///
/// `out` is cleared first; header and commands are written into it in
/// one pass (every format's exact command count is known up front), so
/// a warm buffer — e.g. one drawn from a
/// [`ScriptPool`](crate::pool::ScriptPool) — encodes without touching
/// the allocator. On error `out`'s contents are unspecified.
///
/// # Errors
///
/// See [`EncodeError`].
pub fn encode_into(
    script: &DeltaScript,
    format: Format,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    encode_inner_into(script, format, None, out)
}

/// Encodes `script` in `format` and embeds a CRC-32 of `target` so the
/// applier can verify reconstruction.
///
/// # Errors
///
/// Returns [`EncodeError::TargetLenMismatch`] if `target.len()` differs
/// from the script's target length, plus the failures of [`encode`].
pub fn encode_checked(
    script: &DeltaScript,
    format: Format,
    target: &[u8],
) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    encode_checked_into(script, format, target, &mut out)?;
    Ok(out)
}

/// [`encode_checked`] into a caller-supplied buffer (cleared first),
/// reusing its capacity — the allocation-free encode path of
/// `Engine::update`.
///
/// # Errors
///
/// As [`encode_checked`]. On error `out`'s contents are unspecified.
pub fn encode_checked_into(
    script: &DeltaScript,
    format: Format,
    target: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    if target.len() as u64 != script.target_len() {
        return Err(EncodeError::TargetLenMismatch {
            expected: script.target_len(),
            actual: target.len() as u64,
        });
    }
    encode_inner_into(script, format, Some(crc32(target)), out)
}

/// Encodes `script` in `format`, embedding an already-known target
/// CRC-32 — e.g. carried over from another delta producing the same
/// target, as [`compose`](crate::compose) does.
///
/// # Errors
///
/// See [`encode`].
pub fn encode_with_crc(
    script: &DeltaScript,
    format: Format,
    target_crc: u32,
) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    encode_inner_into(script, format, Some(target_crc), &mut out)?;
    Ok(out)
}

/// Encoded size of `script` under `format`, without materializing the file.
///
/// # Errors
///
/// Same failure cases as [`encode`].
pub fn encoded_size(script: &DeltaScript, format: Format) -> Result<u64, EncodeError> {
    // Header cost is computed exactly; command cost via the cost model.
    let bytes = encode(script, format)?;
    Ok(bytes.len() as u64)
}

fn encode_inner_into(
    script: &DeltaScript,
    format: Format,
    target_crc: Option<u32>,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    let _span = ipr_trace::span("codec.encode");
    if !format.supports_out_of_order() && !script.is_write_ordered() {
        return Err(EncodeError::NotWriteOrdered);
    }
    // Every format's wire command count is known before encoding (the
    // varint formats emit one codeword per command; the paper formats
    // split by fixed-width length fields), so header and payload write
    // into one buffer in a single pass — no intermediate payload vec.
    let count = match format {
        Format::Ordered | Format::InPlace | Format::Improved => script.len() as u64,
        Format::PaperOrdered | Format::PaperInPlace => paper::wire_count(script),
    };
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.push(format.wire_byte());
    out.push(if target_crc.is_some() {
        FLAG_TARGET_CRC
    } else {
        0
    });
    varint::encode(script.source_len(), out);
    varint::encode(script.target_len(), out);
    varint::encode(count, out);
    if let Some(crc) = target_crc {
        out.extend_from_slice(&crc.to_le_bytes());
    }
    match format {
        Format::Ordered => ordered::encode_commands_into(script, out)?,
        Format::InPlace => inplace::encode_commands_into(script, out)?,
        Format::PaperOrdered => paper::encode_commands_into(script, false, out)?,
        Format::PaperInPlace => paper::encode_commands_into(script, true, out)?,
        Format::Improved => improved::encode_commands_into(script, out)?,
    }
    ipr_trace::add("codec.encoded_bytes", out.len() as u64);
    Ok(())
}

/// Decodes an encoded delta file.
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode(bytes: &[u8]) -> Result<DecodedDelta, DecodeError> {
    let _span = ipr_trace::span("codec.decode");
    ipr_trace::add("codec.decoded_bytes", bytes.len() as u64);
    let mut r = ByteReader::new(bytes);
    if r.read_bytes(4).map_err(|_| DecodeError::BadMagic)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let format_byte = r.read_u8()?;
    let format =
        Format::from_wire_byte(format_byte).ok_or(DecodeError::UnknownFormat(format_byte))?;
    let flags = r.read_u8()?;
    let source_len = r.read_varint()?;
    let target_len = r.read_varint()?;
    let count = r.read_varint()?;
    let target_crc = if flags & FLAG_TARGET_CRC != 0 {
        Some(r.read_u32_le()?)
    } else {
        None
    };
    let commands = match format {
        Format::Ordered => ordered::decode_commands(&mut r, count)?,
        Format::InPlace => inplace::decode_commands(&mut r, count)?,
        Format::PaperOrdered => paper::decode_commands(&mut r, count, false)?,
        Format::PaperInPlace => paper::decode_commands(&mut r, count, true)?,
        Format::Improved => improved::decode_commands(&mut r, count)?,
    };
    if !r.is_exhausted() {
        return Err(DecodeError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    let script = DeltaScript::new(source_len, target_len, commands)?;
    Ok(DecodedDelta {
        script,
        format,
        target_crc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;

    fn sample_script() -> DeltaScript {
        DeltaScript::new(
            100,
            50,
            vec![
                Command::copy(10, 0, 20),
                Command::add(20, vec![0xaa; 10]),
                Command::copy(90, 30, 10),
                Command::add(40, vec![0xbb; 10]),
            ],
        )
        .unwrap()
    }

    fn out_of_order_script() -> DeltaScript {
        DeltaScript::new(
            100,
            30,
            vec![
                Command::copy(0, 20, 10),
                Command::copy(50, 0, 10),
                Command::add(10, vec![0xcc; 10]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_exact_formats() {
        let s = sample_script();
        for format in [Format::Ordered, Format::InPlace, Format::Improved] {
            let bytes = encode(&s, format).unwrap();
            let d = decode(&bytes).unwrap();
            assert_eq!(d.script, s, "format {format}");
            assert_eq!(d.format, format);
            assert_eq!(d.target_crc, None);
        }
    }

    #[test]
    fn round_trip_paper_formats_semantics() {
        // Paper formats may split commands; the script must still be valid
        // and produce the same bytes.
        let s = sample_script();
        for format in [Format::PaperOrdered, Format::PaperInPlace] {
            let bytes = encode(&s, format).unwrap();
            let d = decode(&bytes).unwrap();
            assert_eq!(d.script.target_len(), s.target_len());
            assert_eq!(d.script.copied_bytes(), s.copied_bytes());
            assert_eq!(d.script.added_bytes(), s.added_bytes());
        }
    }

    #[test]
    fn ordered_formats_reject_out_of_order() {
        let s = out_of_order_script();
        assert_eq!(
            encode(&s, Format::Ordered),
            Err(EncodeError::NotWriteOrdered)
        );
        assert_eq!(
            encode(&s, Format::PaperOrdered),
            Err(EncodeError::NotWriteOrdered)
        );
    }

    #[test]
    fn in_place_formats_accept_out_of_order() {
        let s = out_of_order_script();
        for format in [Format::InPlace, Format::PaperInPlace, Format::Improved] {
            let bytes = encode(&s, format).unwrap();
            let d = decode(&bytes).unwrap();
            // Command order must be preserved exactly: it encodes the safe
            // application order.
            let tos: Vec<u64> = d.script.commands().iter().map(Command::to).collect();
            assert_eq!(tos, vec![20, 0, 10], "format {format}");
        }
    }

    #[test]
    fn checked_encode_embeds_crc() {
        let s = DeltaScript::new(4, 4, vec![Command::copy(0, 0, 4)]).unwrap();
        let target = b"abcd";
        let bytes = encode_checked(&s, Format::InPlace, target).unwrap();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.target_crc, Some(crc32(target)));
    }

    #[test]
    fn checked_encode_rejects_len_mismatch() {
        let s = DeltaScript::new(4, 4, vec![Command::copy(0, 0, 4)]).unwrap();
        let err = encode_checked(&s, Format::InPlace, b"abc").unwrap_err();
        assert_eq!(
            err,
            EncodeError::TargetLenMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn encode_into_reuses_dirty_buffers() {
        // A pooled buffer arrives with stale content and capacity; the
        // into-variants must clear it and produce the exact bytes of the
        // allocating encode — including the paper formats, whose command
        // count is a split pre-pass rather than script.len().
        let long_add = DeltaScript::new(
            10,
            70_000,
            vec![
                Command::add(0, vec![0x5a; 66_000]),
                Command::copy(0, 66_000, 10),
                Command::add(66_010, vec![0xa5; 3_990]),
            ],
        )
        .unwrap();
        let mut buf = vec![0xffu8; 7]; // dirty, undersized
        for s in [&sample_script(), &out_of_order_script(), &long_add] {
            for format in [Format::InPlace, Format::PaperInPlace, Format::Improved] {
                encode_into(s, format, &mut buf).unwrap();
                assert_eq!(buf, encode(s, format).unwrap(), "{format}");
                encode_checked_into(s, format, &vec![1; s.target_len() as usize], &mut buf)
                    .unwrap();
                assert_eq!(
                    buf,
                    encode_checked(s, format, &vec![1; s.target_len() as usize]).unwrap()
                );
                // The pre-declared count matches what decode walks.
                assert!(decode(&buf).is_ok(), "{format}");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_magic() {
        assert_eq!(decode(b"nope"), Err(DecodeError::BadMagic));
        assert_eq!(decode(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn decode_rejects_unknown_format() {
        let s = DeltaScript::new(1, 1, vec![Command::copy(0, 0, 1)]).unwrap();
        let mut bytes = encode(&s, Format::Ordered).unwrap();
        bytes[4] = 0x77;
        assert_eq!(decode(&bytes), Err(DecodeError::UnknownFormat(0x77)));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let s = sample_script();
        let bytes = encode(&s, Format::InPlace).unwrap();
        for cut in 1..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncated input must fail");
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated
                        | DecodeError::BadMagic
                        | DecodeError::Varint(_)
                        | DecodeError::Script(_)
                ),
                "cut {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let s = sample_script();
        let mut bytes = encode(&s, Format::InPlace).unwrap();
        bytes.push(0x00);
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn empty_script_round_trips() {
        let s = DeltaScript::new(10, 0, vec![]).unwrap();
        for format in Format::ALL {
            let bytes = encode(&s, format).unwrap();
            let d = decode(&bytes).unwrap();
            assert!(d.script.is_empty());
            assert_eq!(d.script.source_len(), 10);
        }
    }

    #[test]
    fn cost_model_matches_encoding_for_varint_formats() {
        let s = sample_script();
        for format in [Format::Ordered, Format::InPlace] {
            let header = encode(&DeltaScript::new(100, 0, vec![]).unwrap(), format)
                .unwrap()
                .len() as u64
                // the empty script encodes target_len=0 and count=0; the real
                // header differs only in those varints, both 1 byte here
                ;
            let mut expected = header;
            // target_len 50 and count 4 still fit in 1-byte varints, so the
            // header size matches the empty-script header.
            for cmd in s.commands() {
                expected += match cmd {
                    Command::Copy(c) => format.copy_cost(c),
                    Command::Add(a) => format.add_cost(a.to, a.len()),
                };
            }
            assert_eq!(
                encode(&s, format).unwrap().len() as u64,
                expected,
                "{format}"
            );
        }
    }

    #[test]
    fn conversion_cost_positive_for_long_copies() {
        let c = crate::command::Copy {
            from: 1000,
            to: 2000,
            len: 500,
        };
        for format in Format::ALL {
            assert!(format.conversion_cost(&c) > 400, "{format}");
        }
    }

    #[test]
    fn in_place_encoding_larger_than_ordered() {
        // The 1.9% "encoding loss" of Table 1 in miniature: explicit write
        // offsets cost bytes.
        let s = sample_script();
        let ordered = encode(&s, Format::Ordered).unwrap().len();
        let inplace = encode(&s, Format::InPlace).unwrap().len();
        assert!(inplace > ordered);
    }

    #[test]
    fn format_display_and_wire_bytes_unique() {
        let mut seen = std::collections::HashSet::new();
        for f in Format::ALL {
            assert!(!f.to_string().is_empty());
            assert!(seen.insert(f.wire_byte()));
            assert_eq!(Format::from_wire_byte(f.wire_byte()), Some(f));
        }
    }
}

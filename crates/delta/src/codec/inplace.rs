//! The varint format with explicit write offsets, required for deltas that
//! apply out of write order (§3, §7: the "write offsets" encoding).

use super::reader::ByteReader;
use super::{DecodeError, EncodeError, TAG_ADD, TAG_COPY};
use crate::command::Command;
use crate::script::DeltaScript;
use crate::varint;

pub(super) fn encode_commands_into(
    script: &DeltaScript,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    for cmd in script.commands() {
        match cmd {
            Command::Copy(c) => {
                out.push(TAG_COPY);
                varint::encode(c.from, out);
                varint::encode(c.to, out);
                varint::encode(c.len, out);
            }
            Command::Add(a) => {
                out.push(TAG_ADD);
                varint::encode(a.to, out);
                varint::encode(a.len(), out);
                out.extend_from_slice(&a.data);
            }
        }
    }
    Ok(())
}

/// Decodes one command (write offsets are explicit; no carried state).
pub(super) fn decode_one(r: &mut ByteReader<'_>) -> Result<Command, DecodeError> {
    match r.read_u8()? {
        TAG_COPY => {
            let from = r.read_varint()?;
            let to = r.read_varint()?;
            let len = r.read_varint()?;
            Ok(Command::copy(from, to, len))
        }
        TAG_ADD => {
            let to = r.read_varint()?;
            let len = r.read_varint()?;
            let len_usize = usize::try_from(len).map_err(|_| DecodeError::Truncated)?;
            let data = r.read_bytes(len_usize)?.to_vec();
            Ok(Command::add(to, data))
        }
        b => Err(DecodeError::UnknownFormat(b)),
    }
}

pub(super) fn decode_commands(
    r: &mut ByteReader<'_>,
    count: u64,
) -> Result<Vec<Command>, DecodeError> {
    // Every wire command occupies at least one byte, so a declared count
    // beyond the remaining input is hostile: reject it up front instead
    // of reserving an attacker-controlled allocation.
    if count > r.remaining() as u64 {
        return Err(DecodeError::Truncated);
    }
    let mut commands = Vec::with_capacity(count as usize);
    for _ in 0..count {
        commands.push(decode_one(r)?);
    }
    Ok(commands)
}

#[cfg(test)]
mod tests {
    use super::super::{decode, encode, Format};
    use crate::command::Command;
    use crate::script::DeltaScript;

    #[test]
    fn preserves_arbitrary_command_order() {
        // Adds interleaved with copies, out of write order: exactly what a
        // converted in-place delta looks like before adds are moved last.
        let s = DeltaScript::new(
            32,
            32,
            vec![
                Command::copy(16, 24, 8),
                Command::add(8, vec![9; 8]),
                Command::copy(0, 16, 8),
                Command::copy(24, 0, 8),
            ],
        )
        .unwrap();
        let bytes = encode(&s, Format::InPlace).unwrap();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.script, s);
    }

    #[test]
    fn large_offsets_round_trip() {
        let big = u64::from(u32::MAX) + 1000;
        let s = DeltaScript::new(big + 10, 10, vec![Command::copy(big, 0, 10)]).unwrap();
        let bytes = encode(&s, Format::InPlace).unwrap();
        assert_eq!(decode(&bytes).unwrap().script, s);
    }
}

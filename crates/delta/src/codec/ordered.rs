//! The offset-free varint format: commands in write order, `to` implicit.

use super::reader::ByteReader;
use super::{DecodeError, EncodeError, TAG_ADD, TAG_COPY};
use crate::command::Command;
use crate::script::DeltaScript;
use crate::varint;

pub(super) fn encode_commands_into(
    script: &DeltaScript,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    debug_assert!(script.is_write_ordered());
    for cmd in script.commands() {
        match cmd {
            Command::Copy(c) => {
                out.push(TAG_COPY);
                varint::encode(c.from, out);
                varint::encode(c.len, out);
            }
            Command::Add(a) => {
                out.push(TAG_ADD);
                varint::encode(a.len(), out);
                out.extend_from_slice(&a.data);
            }
        }
    }
    Ok(())
}

/// Decodes one command; `next_write` carries the implicit write offset.
pub(super) fn decode_one(
    r: &mut ByteReader<'_>,
    next_write: &mut u64,
) -> Result<Command, DecodeError> {
    let to = *next_write;
    let cmd = match r.read_u8()? {
        TAG_COPY => {
            let from = r.read_varint()?;
            let len = r.read_varint()?;
            Command::copy(from, to, len)
        }
        TAG_ADD => {
            let len = r.read_varint()?;
            let len_usize = usize::try_from(len).map_err(|_| DecodeError::Truncated)?;
            let data = r.read_bytes(len_usize)?.to_vec();
            Command::add(to, data)
        }
        b => return Err(DecodeError::UnknownFormat(b)),
    };
    *next_write = to.saturating_add(cmd.len());
    Ok(cmd)
}

pub(super) fn decode_commands(
    r: &mut ByteReader<'_>,
    count: u64,
) -> Result<Vec<Command>, DecodeError> {
    // Every wire command occupies at least one byte, so a declared count
    // beyond the remaining input is hostile: reject it up front instead
    // of reserving an attacker-controlled allocation.
    if count > r.remaining() as u64 {
        return Err(DecodeError::Truncated);
    }
    let mut commands = Vec::with_capacity(count as usize);
    let mut next_write = 0u64;
    for _ in 0..count {
        commands.push(decode_one(r, &mut next_write)?);
    }
    Ok(commands)
}

#[cfg(test)]
mod tests {
    use super::super::{decode, encode, Format};
    use crate::command::Command;
    use crate::script::DeltaScript;

    #[test]
    fn implicit_offsets_reconstructed() {
        let s = DeltaScript::new(
            64,
            24,
            vec![
                Command::copy(0, 0, 8),
                Command::add(8, vec![1; 8]),
                Command::copy(32, 16, 8),
            ],
        )
        .unwrap();
        let bytes = encode(&s, Format::Ordered).unwrap();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.script, s);
    }

    #[test]
    fn corrupt_tag_rejected() {
        let s = DeltaScript::new(8, 8, vec![Command::copy(0, 0, 8)]).unwrap();
        let mut bytes = encode(&s, Format::Ordered).unwrap();
        // The first command tag sits right after the fixed header (4 magic +
        // 1 format + 1 flags + 3 one-byte varints).
        let tag_pos = 9;
        bytes[tag_pos] = 0x9e;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn smaller_than_in_place_format() {
        let s =
            DeltaScript::new(1 << 20, 1 << 16, vec![Command::copy(1 << 19, 0, 1 << 16)]).unwrap();
        let ordered = encode(&s, Format::Ordered).unwrap();
        let inplace = encode(&s, Format::InPlace).unwrap();
        assert!(ordered.len() < inplace.len());
    }
}

//! Paper-faithful fixed-width codewords.
//!
//! §7 of the paper: *"The encoding scheme uses only a single byte to encode
//! the length of add commands and therefore generates many short add
//! commands. … The many small add commands produced by the delta
//! compression algorithm create an unnecessary encoding overhead."*
//!
//! We model those codewords directly: 4-byte big-endian offsets, 2-byte
//! copy lengths and 1-byte add lengths. Commands longer than a codeword's
//! length field are split into several commands at encode time, so decoding
//! preserves semantics (same materialized file) but not necessarily the
//! original command boundaries.

use super::reader::ByteReader;
use super::{DecodeError, EncodeError};
use crate::command::Command;
use crate::script::DeltaScript;

/// Paper-format copy commands carry a 2-byte length.
pub(super) const MAX_COPY_LEN: u64 = u16::MAX as u64;
/// Paper-format add commands carry a 1-byte length.
pub(super) const MAX_ADD_LEN: u64 = u8::MAX as u64;

const TAG_COPY: u8 = 0x02;
const TAG_ADD: u8 = 0x03;

/// Number of commands a length-`len` command splits into when each piece
/// carries at most `max` bytes.
pub(super) fn split_count(len: u64, max: u64) -> u64 {
    len.div_ceil(max)
}

fn fit_u32(v: u64, index: usize) -> Result<u32, EncodeError> {
    u32::try_from(v).map_err(|_| EncodeError::OffsetTooLarge { index })
}

/// Exact number of wire codewords `script` encodes to, splits included —
/// computable before encoding, so the header's count varint can be
/// written into the same output buffer the payload follows it in.
pub(super) fn wire_count(script: &DeltaScript) -> u64 {
    script
        .commands()
        .iter()
        .map(|cmd| match cmd {
            Command::Copy(c) => split_count(c.len, MAX_COPY_LEN),
            Command::Add(a) => split_count(a.len(), MAX_ADD_LEN),
        })
        .sum()
}

pub(super) fn encode_commands_into(
    script: &DeltaScript,
    explicit_to: bool,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    for (index, cmd) in script.commands().iter().enumerate() {
        match cmd {
            Command::Copy(c) => {
                let mut done = 0u64;
                while done < c.len {
                    let piece = (c.len - done).min(MAX_COPY_LEN);
                    out.push(TAG_COPY);
                    out.extend_from_slice(&fit_u32(c.from + done, index)?.to_be_bytes());
                    if explicit_to {
                        out.extend_from_slice(&fit_u32(c.to + done, index)?.to_be_bytes());
                    }
                    out.extend_from_slice(&(piece as u16).to_be_bytes());
                    done += piece;
                }
            }
            Command::Add(a) => {
                let mut done = 0u64;
                let len = a.len();
                while done < len {
                    let piece = (len - done).min(MAX_ADD_LEN);
                    out.push(TAG_ADD);
                    if explicit_to {
                        out.extend_from_slice(&fit_u32(a.to + done, index)?.to_be_bytes());
                    }
                    out.push(piece as u8);
                    let start = done as usize;
                    out.extend_from_slice(&a.data[start..start + piece as usize]);
                    done += piece;
                }
            }
        }
    }
    Ok(())
}

/// Decodes one codeword; `implicit_to` carries the write cursor for the
/// offset-free variant.
pub(super) fn decode_one(
    r: &mut ByteReader<'_>,
    explicit_to: bool,
    implicit_to: &mut u64,
) -> Result<Command, DecodeError> {
    let cmd = match r.read_u8()? {
        TAG_COPY => {
            let from = u64::from(r.read_u32_be()?);
            let to = if explicit_to {
                u64::from(r.read_u32_be()?)
            } else {
                *implicit_to
            };
            let len = u64::from(r.read_u16_be()?);
            Command::copy(from, to, len)
        }
        TAG_ADD => {
            let to = if explicit_to {
                u64::from(r.read_u32_be()?)
            } else {
                *implicit_to
            };
            let len = u64::from(r.read_u8()?);
            let data = r.read_bytes(len as usize)?.to_vec();
            Command::add(to, data)
        }
        b => return Err(DecodeError::UnknownFormat(b)),
    };
    *implicit_to = implicit_to.saturating_add(cmd.len());
    Ok(cmd)
}

pub(super) fn decode_commands(
    r: &mut ByteReader<'_>,
    count: u64,
    explicit_to: bool,
) -> Result<Vec<Command>, DecodeError> {
    // Every wire command occupies at least one byte, so a declared count
    // beyond the remaining input is hostile: reject it up front instead
    // of reserving an attacker-controlled allocation.
    if count > r.remaining() as u64 {
        return Err(DecodeError::Truncated);
    }
    let mut commands = Vec::with_capacity(count as usize);
    let mut implicit_to = 0u64;
    for _ in 0..count {
        commands.push(decode_one(r, explicit_to, &mut implicit_to)?);
    }
    Ok(commands)
}

#[cfg(test)]
mod tests {
    use super::super::{decode, encode, EncodeError, Format};
    use super::*;
    use crate::command::Command;
    use crate::script::DeltaScript;

    #[test]
    fn split_count_math() {
        assert_eq!(split_count(1, 255), 1);
        assert_eq!(split_count(255, 255), 1);
        assert_eq!(split_count(256, 255), 2);
        assert_eq!(split_count(1000, 255), 4);
        assert_eq!(split_count(65536, 65535), 2);
    }

    #[test]
    fn long_add_splits_into_one_byte_length_pieces() {
        // A 700-byte literal run: the paper codeword forces ceil(700/255)=3
        // add commands.
        let s = DeltaScript::new(0, 700, vec![Command::add(0, vec![7; 700])]).unwrap();
        let bytes = encode(&s, Format::PaperOrdered).unwrap();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.script.add_count(), 3);
        assert_eq!(d.script.added_bytes(), 700);
        // Pieces rebuild the same data contiguously.
        let adds = d.script.adds();
        assert_eq!(adds[0].to, 0);
        assert_eq!(adds[1].to, 255);
        assert_eq!(adds[2].to, 510);
    }

    #[test]
    fn long_copy_splits() {
        let len = 200_000u64;
        let s = DeltaScript::new(len, len, vec![Command::copy(0, 0, len)]).unwrap();
        let bytes = encode(&s, Format::PaperInPlace).unwrap();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.script.copy_count() as u64, split_count(len, MAX_COPY_LEN));
        assert_eq!(d.script.copied_bytes(), len);
    }

    #[test]
    fn offsets_beyond_u32_rejected() {
        let big = u64::from(u32::MAX) + 1;
        let s = DeltaScript::new(big + 8, 8, vec![Command::copy(big, 0, 8)]).unwrap();
        assert_eq!(
            encode(&s, Format::PaperInPlace),
            Err(EncodeError::OffsetTooLarge { index: 0 })
        );
    }

    #[test]
    fn explicit_to_preserves_out_of_order() {
        let s =
            DeltaScript::new(16, 16, vec![Command::copy(0, 8, 8), Command::copy(8, 0, 8)]).unwrap();
        let bytes = encode(&s, Format::PaperInPlace).unwrap();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.script.commands()[0].to(), 8);
        assert_eq!(d.script.commands()[1].to(), 0);
    }

    #[test]
    fn cost_model_matches_split_encoding() {
        let c = crate::command::Copy {
            from: 0,
            to: 0,
            len: 100_000,
        };
        let s = DeltaScript::new(100_000, 100_000, vec![Command::Copy(c)]).unwrap();
        let header_len = encode(
            &DeltaScript::new(100_000, 0, vec![]).unwrap(),
            Format::PaperOrdered,
        )
        .unwrap()
        .len() as u64;
        let body = encode(&s, Format::PaperOrdered).unwrap().len() as u64;
        // Header varints differ: target_len (0 vs 100000: 1 vs 3 bytes) and
        // count (0 vs 2: both 1 byte), so adjust by 2.
        assert_eq!(body - (header_len + 2), Format::PaperOrdered.copy_cost(&c));
    }
}

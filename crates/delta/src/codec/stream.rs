//! Incremental delta-file decoding.
//!
//! A device installing an update over a slow link need not buffer the
//! whole delta: [`StreamDecoder`] consumes bytes as they arrive and
//! yields commands as soon as they are complete, so application can
//! overlap the transfer with memory bounded by one command plus the
//! network chunk.
//!
//! ```
//! use ipr_delta::codec::stream::StreamDecoder;
//! use ipr_delta::codec::{encode, Format};
//! use ipr_delta::{Command, DeltaScript};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let script = DeltaScript::new(4, 4, vec![Command::copy(0, 0, 4)])?;
//! let wire = encode(&script, Format::InPlace)?;
//!
//! let mut decoder = StreamDecoder::new();
//! let mut commands = Vec::new();
//! for byte in wire {
//!     decoder.push(&[byte]); // bytes dribble in one at a time
//!     while let Some(cmd) = decoder.next_command()? {
//!         commands.push(cmd);
//!     }
//! }
//! assert_eq!(commands, script.commands());
//! decoder.finish()?;
//! # Ok(())
//! # }
//! ```

use super::reader::ByteReader;
use super::{improved, inplace, ordered, paper, DecodeError, Format, FLAG_TARGET_CRC, MAGIC};
use crate::command::Command;
use crate::varint::VarintError;

/// The fixed information at the head of a delta file, available from a
/// [`StreamDecoder`] once enough bytes have arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamHeader {
    /// Codeword format of the command stream.
    pub format: Format,
    /// Length of the reference (old) file.
    pub source_len: u64,
    /// Length of the version (new) file.
    pub target_len: u64,
    /// Number of encoded commands that will follow.
    pub command_count: u64,
    /// CRC-32 of the target file, if embedded.
    pub target_crc: Option<u32>,
}

/// A serializable snapshot of a [`StreamDecoder`] at a command
/// boundary, from which decoding can restart after a mid-stream cut.
///
/// The decoder only advances its consumed offset on whole commands, so
/// a checkpoint never captures partial-command state: the bytes of a
/// half-received command are simply re-requested from `byte_offset`.
/// Together with the parsed header and the format's implicit write
/// cursor this is the decoder's *entire* state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// Wire bytes fully consumed; the next byte to request on resume.
    pub byte_offset: u64,
    /// Commands fully decoded before this checkpoint.
    pub commands_decoded: u64,
    /// Implicit write cursor / chain state of the format.
    pub next_write: u64,
    /// The stream header (always parsed before the first checkpoint).
    pub header: StreamHeader,
}

/// Magic prefix of a serialized [`StreamCheckpoint`].
const CHECKPOINT_MAGIC: [u8; 4] = *b"IPK1";

impl StreamCheckpoint {
    /// Serializes the checkpoint (fixed-width little-endian fields).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.push(self.header.format.wire_byte());
        out.push(u8::from(self.header.target_crc.is_some()));
        out.extend_from_slice(&self.header.target_crc.unwrap_or(0).to_le_bytes());
        for v in [
            self.header.source_len,
            self.header.target_len,
            self.header.command_count,
            self.byte_offset,
            self.commands_decoded,
            self.next_write,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a checkpoint written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadMagic`], [`DecodeError::Truncated`], or
    /// [`DecodeError::UnknownFormat`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(bytes);
        if r.read_bytes(4).map_err(|_| DecodeError::BadMagic)? != CHECKPOINT_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let format_byte = r.read_u8()?;
        let format =
            Format::from_wire_byte(format_byte).ok_or(DecodeError::UnknownFormat(format_byte))?;
        let has_crc = r.read_u8()? != 0;
        let crc = r.read_u32_le()?;
        let mut fields = [0u64; 6];
        for f in &mut fields {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(r.read_bytes(8)?);
            *f = u64::from_le_bytes(raw);
        }
        if r.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(Self {
            byte_offset: fields[3],
            commands_decoded: fields[4],
            next_write: fields[5],
            header: StreamHeader {
                format,
                source_len: fields[0],
                target_len: fields[1],
                command_count: fields[2],
                target_crc: has_crc.then_some(crc),
            },
        })
    }
}

/// Incremental decoder: push bytes, pull commands.
///
/// The internal buffer self-compacts: every [`push`](Self::push) drains
/// the already-consumed prefix first, so resident memory is bounded by
/// the largest single command frame (an add carries its literal data)
/// plus one incoming chunk — never by the stream length.
#[derive(Clone, Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    consumed: usize,
    /// Total wire bytes consumed since the start of the stream
    /// (survives compaction, which resets `consumed`).
    offset: u64,
    /// High-water mark of `buf.len()` — the resident-memory bound.
    high_water: usize,
    header: Option<StreamHeader>,
    decoded: u64,
    /// Implicit write cursor / chain state, depending on the format.
    next_write: u64,
}

impl StreamDecoder {
    /// Creates a decoder expecting a delta file from its first byte.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a decoder from a checkpoint, positioned to receive
    /// wire bytes starting at `checkpoint.byte_offset`.
    #[must_use]
    pub fn resume(checkpoint: StreamCheckpoint) -> Self {
        Self {
            buf: Vec::new(),
            consumed: 0,
            offset: checkpoint.byte_offset,
            high_water: 0,
            header: Some(checkpoint.header),
            decoded: checkpoint.commands_decoded,
            next_write: checkpoint.next_write,
        }
    }

    /// Snapshots the decoder at its last command boundary, or `None`
    /// before the header has been parsed (nothing to resume from yet).
    ///
    /// Unconsumed buffered bytes (a partial command) are *not* part of
    /// the checkpoint; a resumed decoder re-requests them from
    /// [`byte_offset`](StreamCheckpoint::byte_offset).
    #[must_use]
    pub fn checkpoint(&self) -> Option<StreamCheckpoint> {
        self.header.map(|header| StreamCheckpoint {
            byte_offset: self.offset,
            commands_decoded: self.decoded,
            next_write: self.next_write,
            header,
        })
    }

    /// Feeds more wire bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Eagerly drain the consumed prefix: the residue is at most one
        // partial command frame, so the buffer stays O(frame + chunk).
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
        self.high_water = self.high_water.max(self.buf.len());
    }

    /// Unconsumed bytes currently buffered (partial-command residue).
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Largest number of bytes the buffer ever held: at most one
    /// maximal command frame plus the largest pushed chunk.
    #[must_use]
    pub fn buffered_high_water(&self) -> usize {
        self.high_water
    }

    /// Total wire bytes consumed since the start of the stream.
    #[must_use]
    pub fn stream_offset(&self) -> u64 {
        self.offset
    }

    /// The header, once decodable.
    #[must_use]
    pub fn header(&self) -> Option<&StreamHeader> {
        self.header.as_ref()
    }

    /// Attempts to parse the header from buffered bytes *without*
    /// decoding any command; `Ok(None)` means more input is needed.
    ///
    /// # Errors
    ///
    /// Same wire errors as [`next_command`](Self::next_command).
    pub fn poll_header(&mut self) -> Result<Option<&StreamHeader>, DecodeError> {
        if self.header.is_none() && !self.try_parse_header()? {
            return Ok(None);
        }
        Ok(self.header.as_ref())
    }

    /// Commands decoded so far.
    #[must_use]
    pub fn commands_decoded(&self) -> u64 {
        self.decoded
    }

    /// Whether every declared command has been decoded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.header
            .map(|h| self.decoded == h.command_count)
            .unwrap_or(false)
    }

    /// Attempts to decode the next command.
    ///
    /// Returns `Ok(None)` when more input is needed *or* when all
    /// declared commands have been decoded (check [`is_complete`]).
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] other than truncation is a real wire error;
    /// truncation is reported as `Ok(None)` (feed more bytes).
    ///
    /// [`is_complete`]: StreamDecoder::is_complete
    pub fn next_command(&mut self) -> Result<Option<Command>, DecodeError> {
        if self.header.is_none() {
            match self.try_parse_header() {
                Ok(true) => {}
                Ok(false) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
        let header = self.header.expect("parsed above");
        if self.decoded == header.command_count {
            return Ok(None);
        }
        let mut r = ByteReader::new(&self.buf[self.consumed..]);
        let mut next_write = self.next_write;
        let result = match header.format {
            Format::Ordered => ordered::decode_one(&mut r, &mut next_write),
            Format::InPlace => inplace::decode_one(&mut r),
            Format::PaperOrdered => paper::decode_one(&mut r, false, &mut next_write),
            Format::PaperInPlace => paper::decode_one(&mut r, true, &mut next_write),
            Format::Improved => improved::decode_one(&mut r, &mut next_write),
        };
        match result {
            Ok(cmd) => {
                self.consumed += r.consumed();
                self.offset += r.consumed() as u64;
                self.next_write = next_write;
                self.decoded += 1;
                Ok(Some(cmd))
            }
            Err(DecodeError::Truncated) | Err(DecodeError::Varint(VarintError::Truncated)) => {
                Ok(None) // incomplete command: wait for more bytes
            }
            Err(e) => Err(e),
        }
    }

    /// Declares end of input: every command must have been decoded and no
    /// payload bytes may remain.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if the stream ended mid-file,
    /// [`DecodeError::TrailingBytes`] if bytes follow the last command.
    pub fn finish(self) -> Result<StreamHeader, DecodeError> {
        let Some(header) = self.header else {
            return Err(DecodeError::Truncated);
        };
        if self.decoded != header.command_count {
            return Err(DecodeError::Truncated);
        }
        let remaining = self.buf.len() - self.consumed;
        if remaining != 0 {
            return Err(DecodeError::TrailingBytes { remaining });
        }
        Ok(header)
    }

    /// Tries to parse the header from buffered bytes; `Ok(false)` means
    /// more input is needed.
    fn try_parse_header(&mut self) -> Result<bool, DecodeError> {
        let mut r = ByteReader::new(&self.buf[self.consumed..]);
        let magic = match r.read_bytes(4) {
            Ok(m) => m,
            Err(_) => {
                // Reject obviously wrong magic as early as possible.
                let have = &self.buf[self.consumed..];
                if !MAGIC.starts_with(have) && !have.is_empty() {
                    return Err(DecodeError::BadMagic);
                }
                return Ok(false);
            }
        };
        if magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let parse = |r: &mut ByteReader<'_>| -> Result<StreamHeader, DecodeError> {
            let format_byte = r.read_u8()?;
            let format = Format::from_wire_byte(format_byte)
                .ok_or(DecodeError::UnknownFormat(format_byte))?;
            let flags = r.read_u8()?;
            let source_len = r.read_varint()?;
            let target_len = r.read_varint()?;
            let command_count = r.read_varint()?;
            let target_crc = if flags & FLAG_TARGET_CRC != 0 {
                Some(r.read_u32_le()?)
            } else {
                None
            };
            Ok(StreamHeader {
                format,
                source_len,
                target_len,
                command_count,
                target_crc,
            })
        };
        match parse(&mut r) {
            Ok(header) => {
                self.consumed += r.consumed();
                self.offset += r.consumed() as u64;
                self.header = Some(header);
                Ok(true)
            }
            Err(DecodeError::Truncated) | Err(DecodeError::Varint(VarintError::Truncated)) => {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

/// Incremental encoder: the server-side counterpart of [`StreamDecoder`].
///
/// Commands are encoded as they are produced (e.g. while composing or
/// converting on the fly) and the wire bytes drained in chunks, so the
/// whole delta never needs to sit in memory. Limited to the non-splitting
/// formats ([`Format::Ordered`], [`Format::InPlace`],
/// [`Format::Improved`]); the fixed-width paper formats re-split commands
/// and are batch-only.
///
/// ```
/// use ipr_delta::codec::stream::{StreamDecoder, StreamEncoder};
/// use ipr_delta::codec::Format;
/// use ipr_delta::Command;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut enc = StreamEncoder::new(Format::InPlace, 8, 8, 1, None)?;
/// enc.push_command(&Command::copy(0, 0, 8))?;
/// let wire = enc.finish()?;
/// let mut dec = StreamDecoder::new();
/// dec.push(&wire);
/// assert_eq!(dec.next_command()?, Some(Command::copy(0, 0, 8)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct StreamEncoder {
    format: Format,
    buf: Vec<u8>,
    declared: u64,
    encoded: u64,
    /// Implicit write cursor (ordered) / chain state (improved).
    next_write: u64,
}

impl StreamEncoder {
    /// Starts a delta file of the declared dimensions.
    ///
    /// # Errors
    ///
    /// [`EncodeError::UnsupportedStreaming`] for the fixed-width paper
    /// formats, whose command splitting requires batch encoding.
    ///
    /// [`EncodeError::UnsupportedStreaming`]: super::EncodeError::UnsupportedStreaming
    pub fn new(
        format: Format,
        source_len: u64,
        target_len: u64,
        command_count: u64,
        target_crc: Option<u32>,
    ) -> Result<Self, super::EncodeError> {
        if matches!(format, Format::PaperOrdered | Format::PaperInPlace) {
            return Err(super::EncodeError::UnsupportedStreaming);
        }
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.push(format.wire_byte());
        buf.push(if target_crc.is_some() {
            super::FLAG_TARGET_CRC
        } else {
            0
        });
        crate::varint::encode(source_len, &mut buf);
        crate::varint::encode(target_len, &mut buf);
        crate::varint::encode(command_count, &mut buf);
        if let Some(crc) = target_crc {
            buf.extend_from_slice(&crc.to_le_bytes());
        }
        Ok(Self {
            format,
            buf,
            declared: command_count,
            encoded: 0,
            next_write: 0,
        })
    }

    /// Appends one command.
    ///
    /// # Errors
    ///
    /// [`EncodeError::NotWriteOrdered`] if an offset-implicit format
    /// receives a command out of write order, or
    /// [`EncodeError::CommandCountMismatch`] past the declared count.
    ///
    /// [`EncodeError::NotWriteOrdered`]: super::EncodeError::NotWriteOrdered
    /// [`EncodeError::CommandCountMismatch`]: super::EncodeError::CommandCountMismatch
    pub fn push_command(&mut self, cmd: &Command) -> Result<(), super::EncodeError> {
        use crate::command::Command as C;
        if self.encoded == self.declared {
            return Err(super::EncodeError::CommandCountMismatch {
                declared: self.declared,
            });
        }
        match self.format {
            Format::Ordered => {
                if cmd.to() != self.next_write {
                    return Err(super::EncodeError::NotWriteOrdered);
                }
                match cmd {
                    C::Copy(c) => {
                        self.buf.push(super::TAG_COPY);
                        crate::varint::encode(c.from, &mut self.buf);
                        crate::varint::encode(c.len, &mut self.buf);
                    }
                    C::Add(a) => {
                        self.buf.push(super::TAG_ADD);
                        crate::varint::encode(a.len(), &mut self.buf);
                        self.buf.extend_from_slice(&a.data);
                    }
                }
            }
            Format::InPlace => match cmd {
                C::Copy(c) => {
                    self.buf.push(super::TAG_COPY);
                    crate::varint::encode(c.from, &mut self.buf);
                    crate::varint::encode(c.to, &mut self.buf);
                    crate::varint::encode(c.len, &mut self.buf);
                }
                C::Add(a) => {
                    self.buf.push(super::TAG_ADD);
                    crate::varint::encode(a.to, &mut self.buf);
                    crate::varint::encode(a.len(), &mut self.buf);
                    self.buf.extend_from_slice(&a.data);
                }
            },
            Format::Improved => {
                let chained = cmd.to() == self.next_write;
                let mut tag = 0u8;
                if cmd.is_add() {
                    tag |= 0x01;
                }
                if chained {
                    tag |= 0x02;
                }
                self.buf.push(tag);
                match cmd {
                    C::Copy(c) => {
                        crate::varint::encode(c.from, &mut self.buf);
                        if !chained {
                            crate::varint::encode(c.to, &mut self.buf);
                        }
                        crate::varint::encode(c.len, &mut self.buf);
                    }
                    C::Add(a) => {
                        if !chained {
                            crate::varint::encode(a.to, &mut self.buf);
                        }
                        crate::varint::encode(a.len(), &mut self.buf);
                        self.buf.extend_from_slice(&a.data);
                    }
                }
            }
            Format::PaperOrdered | Format::PaperInPlace => {
                unreachable!("rejected at construction")
            }
        }
        self.next_write = cmd.to().saturating_add(cmd.len());
        self.encoded += 1;
        Ok(())
    }

    /// Drains the bytes encoded so far (callable repeatedly; each call
    /// returns only new bytes).
    pub fn take_bytes(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Finishes the stream, returning any remaining bytes.
    ///
    /// # Errors
    ///
    /// [`EncodeError::CommandCountMismatch`] if fewer commands were
    /// pushed than declared.
    ///
    /// [`EncodeError::CommandCountMismatch`]: super::EncodeError::CommandCountMismatch
    pub fn finish(mut self) -> Result<Vec<u8>, super::EncodeError> {
        if self.encoded != self.declared {
            return Err(super::EncodeError::CommandCountMismatch {
                declared: self.declared,
            });
        }
        Ok(self.take_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode, encode_checked};
    use crate::script::DeltaScript;

    fn sample() -> (DeltaScript, Vec<u8>) {
        let script = DeltaScript::new(
            100,
            50,
            vec![
                Command::copy(10, 0, 20),
                Command::add(20, vec![0xAA; 10]),
                Command::copy(90, 30, 10),
                Command::add(40, vec![0xBB; 10]),
            ],
        )
        .unwrap();
        let target = crate::apply(&script, &[3u8; 100]).unwrap();
        (script, target)
    }

    #[test]
    fn whole_buffer_at_once() {
        let (script, _) = sample();
        for format in Format::ALL {
            let wire = encode(&script, format).unwrap();
            let mut d = StreamDecoder::new();
            d.push(&wire);
            let mut commands = Vec::new();
            while let Some(c) = d.next_command().unwrap() {
                commands.push(c);
            }
            assert!(d.is_complete(), "{format}");
            let header = d.finish().unwrap();
            assert_eq!(header.format, format);
            assert_eq!(header.target_len, 50);
            // Semantic equivalence (paper formats split commands).
            let rebuilt = DeltaScript::new(100, 50, commands).unwrap();
            assert_eq!(
                crate::apply(&rebuilt, &[3u8; 100]).unwrap(),
                crate::apply(&script, &[3u8; 100]).unwrap(),
                "{format}"
            );
        }
    }

    #[test]
    fn byte_by_byte_dribble() {
        let (script, target) = sample();
        let wire = encode_checked(&script, Format::Improved, &target).unwrap();
        let mut d = StreamDecoder::new();
        let mut commands = Vec::new();
        for &b in &wire {
            d.push(&[b]);
            while let Some(c) = d.next_command().unwrap() {
                commands.push(c);
            }
        }
        assert_eq!(commands, script.commands());
        let header = d.finish().unwrap();
        assert_eq!(header.target_crc, Some(crate::checksum::crc32(&target)));
    }

    #[test]
    fn arbitrary_chunking_matches_batch() {
        let (script, _) = sample();
        let wire = encode(&script, Format::InPlace).unwrap();
        for chunk in [1usize, 2, 3, 7, 11, 100] {
            let mut d = StreamDecoder::new();
            let mut commands = Vec::new();
            for part in wire.chunks(chunk) {
                d.push(part);
                while let Some(c) = d.next_command().unwrap() {
                    commands.push(c);
                }
            }
            assert_eq!(commands, script.commands(), "chunk {chunk}");
            d.finish().unwrap();
        }
    }

    #[test]
    fn early_bad_magic() {
        let mut d = StreamDecoder::new();
        d.push(b"IP");
        assert!(d.next_command().is_ok(), "prefix of magic: undecided");
        d.push(b"XX");
        assert_eq!(d.next_command(), Err(DecodeError::BadMagic));

        let mut d = StreamDecoder::new();
        d.push(b"Z");
        assert_eq!(d.next_command(), Err(DecodeError::BadMagic));
    }

    #[test]
    fn finish_rejects_truncation_and_trailing() {
        let (script, _) = sample();
        let wire = encode(&script, Format::InPlace).unwrap();

        // Truncated: stop before the end.
        let mut d = StreamDecoder::new();
        d.push(&wire[..wire.len() - 1]);
        while d.next_command().unwrap().is_some() {}
        assert!(matches!(d.finish(), Err(DecodeError::Truncated)));

        // Trailing garbage after the last command.
        let mut d = StreamDecoder::new();
        d.push(&wire);
        d.push(&[0xFF, 0xFF]);
        while d.next_command().unwrap().is_some() {}
        assert!(matches!(
            d.finish(),
            Err(DecodeError::TrailingBytes { remaining: 2 })
        ));
    }

    #[test]
    fn header_available_before_commands() {
        let (script, _) = sample();
        let wire = encode(&script, Format::PaperInPlace).unwrap();
        let mut d = StreamDecoder::new();
        d.push(&wire[..12]); // header only
        let _ = d.next_command().unwrap();
        let h = d.header().expect("header parsed");
        assert_eq!(h.source_len, 100);
        assert_eq!(h.format, Format::PaperInPlace);
        assert_eq!(d.commands_decoded(), 0);
    }

    #[test]
    fn empty_stream_finish_fails() {
        assert!(matches!(
            StreamDecoder::new().finish(),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn encoder_matches_batch_encoding() {
        let (script, _) = sample();
        for format in [Format::Ordered, Format::InPlace, Format::Improved] {
            let batch = encode(&script, format).unwrap();
            let mut enc = StreamEncoder::new(
                format,
                script.source_len(),
                script.target_len(),
                script.len() as u64,
                None,
            )
            .unwrap();
            let mut streamed = Vec::new();
            for cmd in script.commands() {
                enc.push_command(cmd).unwrap();
                streamed.extend(enc.take_bytes()); // drain incrementally
            }
            streamed.extend(enc.finish().unwrap());
            assert_eq!(streamed, batch, "{format}");
        }
    }

    #[test]
    fn encoder_rejects_paper_formats() {
        for format in [Format::PaperOrdered, Format::PaperInPlace] {
            assert!(matches!(
                StreamEncoder::new(format, 0, 0, 0, None),
                Err(crate::codec::EncodeError::UnsupportedStreaming)
            ));
        }
    }

    #[test]
    fn encoder_enforces_count_and_order() {
        use crate::codec::EncodeError;
        // Too many commands.
        let mut enc = StreamEncoder::new(Format::InPlace, 8, 8, 1, None).unwrap();
        enc.push_command(&Command::copy(0, 0, 8)).unwrap();
        assert!(matches!(
            enc.push_command(&Command::copy(0, 0, 8)),
            Err(EncodeError::CommandCountMismatch { declared: 1 })
        ));
        // Too few commands.
        let enc = StreamEncoder::new(Format::InPlace, 8, 8, 2, None).unwrap();
        assert!(matches!(
            enc.finish(),
            Err(EncodeError::CommandCountMismatch { declared: 2 })
        ));
        // Out-of-order command in the offset-free format.
        let mut enc = StreamEncoder::new(Format::Ordered, 16, 16, 2, None).unwrap();
        assert!(matches!(
            enc.push_command(&Command::copy(0, 8, 8)),
            Err(EncodeError::NotWriteOrdered)
        ));
    }

    #[test]
    fn encoder_decoder_pipeline_with_crc() {
        let (script, target) = sample();
        let crc = crate::checksum::crc32(&target);
        let mut enc = StreamEncoder::new(
            Format::Improved,
            script.source_len(),
            script.target_len(),
            script.len() as u64,
            Some(crc),
        )
        .unwrap();
        let mut dec = StreamDecoder::new();
        let mut decoded = Vec::new();
        for cmd in script.commands() {
            enc.push_command(cmd).unwrap();
            dec.push(&enc.take_bytes());
            while let Some(c) = dec.next_command().unwrap() {
                decoded.push(c);
            }
        }
        dec.push(&enc.finish().unwrap());
        while let Some(c) = dec.next_command().unwrap() {
            decoded.push(c);
        }
        assert_eq!(decoded, script.commands());
        assert_eq!(dec.finish().unwrap().target_crc, Some(crc));
    }

    #[test]
    fn checkpoint_resume_matches_uncut_decode() {
        // Cut the stream at every command boundary, serialize the
        // checkpoint, resume a fresh decoder from it, and replay the
        // rest of the wire: the combined command list must equal the
        // uncut decode for every format.
        let (script, _) = sample();
        for format in Format::ALL {
            let wire = encode(&script, format).unwrap();

            // Reference: uncut decode.
            let mut d = StreamDecoder::new();
            d.push(&wire);
            let mut uncut = Vec::new();
            while let Some(c) = d.next_command().unwrap() {
                uncut.push(c);
            }
            let uncut_header = d.finish().unwrap();

            for cut_after in 0..=uncut.len() {
                // First power cycle: decode `cut_after` commands.
                let mut d = StreamDecoder::new();
                d.push(&wire);
                for _ in 0..cut_after {
                    d.next_command().unwrap().unwrap();
                }
                if cut_after == 0 {
                    // Poll once so the header gets parsed (this may
                    // also decode a command; the checkpoint records
                    // exactly how many are done).
                    let _ = d.next_command().unwrap();
                }
                let cp = d.checkpoint().expect("header parsed");

                // Serialize + deserialize across the "power cut".
                let restored = StreamCheckpoint::decode(&cp.encode()).unwrap();
                assert_eq!(restored, cp, "{format} cut {cut_after}");

                // Second power cycle: re-request from byte_offset.
                let mut d = StreamDecoder::resume(restored);
                d.push(&wire[restored.byte_offset as usize..]);
                let mut rest = Vec::new();
                while let Some(c) = d.next_command().unwrap() {
                    rest.push(c);
                }
                let header = d.finish().unwrap();
                assert_eq!(header, uncut_header, "{format} cut {cut_after}");

                let mut combined = uncut[..restored.commands_decoded as usize].to_vec();
                combined.extend(rest);
                assert_eq!(combined, uncut, "{format} cut {cut_after}");
            }
        }
    }

    #[test]
    fn checkpoint_decode_rejects_malformed() {
        let cp = StreamCheckpoint {
            byte_offset: 17,
            commands_decoded: 2,
            next_write: 30,
            header: StreamHeader {
                format: Format::InPlace,
                source_len: 100,
                target_len: 50,
                command_count: 4,
                target_crc: Some(0xDEAD_BEEF),
            },
        };
        let bytes = cp.encode();
        assert_eq!(StreamCheckpoint::decode(&bytes), Ok(cp));
        assert_eq!(
            StreamCheckpoint::decode(b"nope"),
            Err(DecodeError::BadMagic)
        );
        assert_eq!(
            StreamCheckpoint::decode(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            StreamCheckpoint::decode(&trailing),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
        let mut bad_format = bytes;
        bad_format[4] = 0x77;
        assert_eq!(
            StreamCheckpoint::decode(&bad_format),
            Err(DecodeError::UnknownFormat(0x77))
        );
    }

    #[test]
    fn buffer_stays_bounded_by_frame_plus_chunk() {
        // A long stream of small commands, fed in small chunks: the
        // buffer high-water mark must stay near (max frame + chunk),
        // not grow with the stream.
        let n = 4000u64;
        let cmds: Vec<Command> = (0..n).map(|i| Command::copy(i, i, 1)).collect();
        let script = DeltaScript::new(n, n, cmds).unwrap();
        let wire = encode(&script, Format::InPlace).unwrap();
        let chunk = 64;
        let mut d = StreamDecoder::new();
        for part in wire.chunks(chunk) {
            d.push(part);
            while d.next_command().unwrap().is_some() {}
            assert!(d.buffered_bytes() < 32, "partial-command residue only");
        }
        // Header (< 32 bytes) and every command frame here are tiny, so
        // the bound is dominated by the chunk size.
        assert!(
            d.buffered_high_water() <= chunk + 32,
            "high water {} exceeds frame+chunk bound",
            d.buffered_high_water()
        );
        d.finish().unwrap();
    }

    #[test]
    fn stream_offset_tracks_consumed_bytes() {
        let (script, _) = sample();
        let wire = encode(&script, Format::InPlace).unwrap();
        let mut d = StreamDecoder::new();
        d.push(&wire);
        while d.next_command().unwrap().is_some() {}
        assert_eq!(d.stream_offset(), wire.len() as u64);
        assert_eq!(
            d.checkpoint().unwrap().byte_offset,
            wire.len() as u64,
            "checkpoint offset is the full stream length at EOF"
        );
    }

    #[test]
    fn compaction_keeps_decoding_correct() {
        // A long script forces buffer compaction mid-stream.
        let n = 2000u64;
        let cmds: Vec<Command> = (0..n).map(|i| Command::copy(i, i, 1)).collect();
        let script = DeltaScript::new(n, n, cmds).unwrap();
        let wire = encode(&script, Format::InPlace).unwrap();
        let mut d = StreamDecoder::new();
        let mut count = 0u64;
        for part in wire.chunks(13) {
            d.push(part);
            while let Some(c) = d.next_command().unwrap() {
                assert_eq!(c, Command::copy(count, count, 1));
                count += 1;
            }
        }
        assert_eq!(count, n);
        d.finish().unwrap();
    }
}

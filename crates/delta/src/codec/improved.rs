//! The redesigned in-place codewords the paper proposes as future work.
//!
//! §7: *"A redesign of the delta compression codewords for in-place
//! reconstructibility would further reduce lost compression."* This format
//! keeps explicit write offsets (required for out-of-order application) but
//! recovers most of their cost two ways:
//!
//! * varint length fields, so long adds need not split;
//! * a *chain bit* in the tag: when a command writes exactly where the
//!   previous command's write interval ended, the `to` offset is omitted.
//!   Runs of commands that stay in write order — common even in converted
//!   deltas — then pay nothing for their write offsets.

use super::reader::ByteReader;
use super::DecodeError;
use crate::command::Command;
use crate::script::DeltaScript;
use crate::varint;

const KIND_ADD: u8 = 0x01;
const CHAINED: u8 = 0x02;

pub(super) fn encode_commands_into(
    script: &DeltaScript,
    out: &mut Vec<u8>,
) -> Result<(), super::EncodeError> {
    let mut write_end = 0u64;
    for cmd in script.commands() {
        let chained = cmd.to() == write_end;
        let mut tag = 0u8;
        if cmd.is_add() {
            tag |= KIND_ADD;
        }
        if chained {
            tag |= CHAINED;
        }
        out.push(tag);
        match cmd {
            Command::Copy(c) => {
                varint::encode(c.from, out);
                if !chained {
                    varint::encode(c.to, out);
                }
                varint::encode(c.len, out);
            }
            Command::Add(a) => {
                if !chained {
                    varint::encode(a.to, out);
                }
                varint::encode(a.len(), out);
                out.extend_from_slice(&a.data);
            }
        }
        write_end = cmd.write_interval().end();
    }
    Ok(())
}

/// Decodes one codeword; `write_end` carries the chain state.
pub(super) fn decode_one(
    r: &mut ByteReader<'_>,
    write_end: &mut u64,
) -> Result<Command, DecodeError> {
    let tag = r.read_u8()?;
    if tag & !(KIND_ADD | CHAINED) != 0 {
        return Err(DecodeError::UnknownFormat(tag));
    }
    let chained = tag & CHAINED != 0;
    let cmd = if tag & KIND_ADD != 0 {
        let to = if chained {
            *write_end
        } else {
            r.read_varint()?
        };
        let len = r.read_varint()?;
        let len_usize = usize::try_from(len).map_err(|_| DecodeError::Truncated)?;
        let data = r.read_bytes(len_usize)?.to_vec();
        Command::add(to, data)
    } else {
        let from = r.read_varint()?;
        let to = if chained {
            *write_end
        } else {
            r.read_varint()?
        };
        let len = r.read_varint()?;
        Command::copy(from, to, len)
    };
    // Saturating: malformed input may claim offsets near u64::MAX; script
    // validation rejects it later without this decoder overflowing.
    *write_end = cmd.to().saturating_add(cmd.len());
    Ok(cmd)
}

pub(super) fn decode_commands(
    r: &mut ByteReader<'_>,
    count: u64,
) -> Result<Vec<Command>, DecodeError> {
    // Every wire command occupies at least one byte, so a declared count
    // beyond the remaining input is hostile: reject it up front instead
    // of reserving an attacker-controlled allocation.
    if count > r.remaining() as u64 {
        return Err(DecodeError::Truncated);
    }
    let mut commands = Vec::with_capacity(count as usize);
    let mut write_end = 0u64;
    for _ in 0..count {
        commands.push(decode_one(r, &mut write_end)?);
    }
    Ok(commands)
}

#[cfg(test)]
mod tests {
    use super::super::{decode, encode, Format};
    use crate::command::Command;
    use crate::script::DeltaScript;

    #[test]
    fn round_trip_mixed_order() {
        let s = DeltaScript::new(
            32,
            32,
            vec![
                Command::copy(0, 16, 8),     // not chained (to=16, write_end=0)
                Command::copy(8, 24, 8),     // chained (to=24 == 16+8)
                Command::copy(16, 0, 8),     // not chained
                Command::add(8, vec![5; 8]), // chained (to=8 == 0+8)
            ],
        )
        .unwrap();
        let bytes = encode(&s, Format::Improved).unwrap();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.script, s);
    }

    #[test]
    fn chained_runs_cost_less_than_plain_in_place() {
        // A fully write-ordered script chains every command after the first,
        // so the large `to` offsets are elided.
        let cmds: Vec<Command> = (0..50u64)
            .map(|i| Command::copy(4_000_000, i * 64, 64))
            .collect();
        let s = DeltaScript::new(5_000_000, 50 * 64, cmds).unwrap();
        let improved = encode(&s, Format::Improved).unwrap().len();
        let plain = encode(&s, Format::InPlace).unwrap().len();
        assert!(improved < plain, "improved {improved} vs in-place {plain}");
    }

    #[test]
    fn bad_tag_bits_rejected() {
        let s = DeltaScript::new(8, 8, vec![Command::copy(0, 0, 8)]).unwrap();
        let mut bytes = encode(&s, Format::Improved).unwrap();
        let tag_pos = 9; // after 4 magic + format + flags + 3 varints
        bytes[tag_pos] = 0xf0;
        assert!(decode(&bytes).is_err());
    }
}

//! The copy/add command vocabulary of delta files.
//!
//! A delta file is an ordered sequence of *copy* and *add* commands (§3 of
//! the paper). A copy command `⟨f, t, l⟩` copies `l` bytes from offset `f`
//! of the reference file to offset `t` of the version file; an add command
//! `⟨t, l⟩` writes `l` literal bytes, carried in the delta file itself, at
//! offset `t`.

use ipr_digraph::Interval;
use std::fmt;

/// A copy command `⟨f, t, l⟩`: copy `len` bytes from reference offset
/// `from` to version offset `to`.
///
/// # Example
///
/// ```
/// use ipr_delta::Copy;
///
/// let c = Copy { from: 0, to: 100, len: 8 };
/// assert_eq!(c.read_interval().as_range(), 0..8);
/// assert_eq!(c.write_interval().as_range(), 100..108);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Copy {
    /// Offset in the reference file that the command reads from (`f`).
    pub from: u64,
    /// Offset in the version file that the command writes to (`t`).
    pub to: u64,
    /// Number of bytes copied (`l`).
    pub len: u64,
}

impl Copy {
    /// The interval `[f, f + l)` read from the reference file.
    #[must_use]
    pub fn read_interval(&self) -> Interval {
        Interval::from_offset_len(self.from, self.len)
    }

    /// The interval `[t, t + l)` written in the version file.
    #[must_use]
    pub fn write_interval(&self) -> Interval {
        Interval::from_offset_len(self.to, self.len)
    }

    /// Whether the command's own read and write intervals overlap.
    ///
    /// Such a command does *not* conflict with itself (§4.1): it is applied
    /// left-to-right when `from >= to` and right-to-left otherwise.
    #[must_use]
    pub fn is_self_overlapping(&self) -> bool {
        self.read_interval().intersects(self.write_interval())
    }
}

impl fmt::Display for Copy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "copy ⟨{}, {}, {}⟩", self.from, self.to, self.len)
    }
}

/// An add command `⟨t, l⟩` followed by `l` bytes of literal data.
///
/// # Example
///
/// ```
/// use ipr_delta::Add;
///
/// let a = Add::new(4, b"new!".to_vec());
/// assert_eq!(a.write_interval().as_range(), 4..8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Add {
    /// Offset in the version file that the command writes to (`t`).
    pub to: u64,
    /// The literal bytes written.
    pub data: Vec<u8>,
}

impl Add {
    /// Creates an add command writing `data` at version offset `to`.
    #[must_use]
    pub fn new(to: u64, data: Vec<u8>) -> Self {
        Self { to, data }
    }

    /// Number of bytes written (`l`).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Whether the command writes no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The interval `[t, t + l)` written in the version file.
    #[must_use]
    pub fn write_interval(&self) -> Interval {
        Interval::from_offset_len(self.to, self.len())
    }
}

impl fmt::Display for Add {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "add ⟨{}, {}⟩", self.to, self.len())
    }
}

/// One delta-file command: either a [`struct@Copy`] or an [`Add`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Command {
    /// Copy bytes from the reference file.
    Copy(Copy),
    /// Write literal bytes carried in the delta file.
    Add(Add),
}

impl Command {
    /// Creates a copy command.
    #[must_use]
    pub fn copy(from: u64, to: u64, len: u64) -> Self {
        Command::Copy(Copy { from, to, len })
    }

    /// Creates an add command.
    #[must_use]
    pub fn add(to: u64, data: Vec<u8>) -> Self {
        Command::Add(Add::new(to, data))
    }

    /// Version-file offset the command writes at (`t`).
    #[must_use]
    pub fn to(&self) -> u64 {
        match self {
            Command::Copy(c) => c.to,
            Command::Add(a) => a.to,
        }
    }

    /// Number of bytes the command writes (`l`).
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            Command::Copy(c) => c.len,
            Command::Add(a) => a.len(),
        }
    }

    /// Whether the command writes no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The interval written in the version file.
    #[must_use]
    pub fn write_interval(&self) -> Interval {
        match self {
            Command::Copy(c) => c.write_interval(),
            Command::Add(a) => a.write_interval(),
        }
    }

    /// The interval read from the reference file; `None` for adds, which
    /// never read the reference (§4.1).
    #[must_use]
    pub fn read_interval(&self) -> Option<Interval> {
        match self {
            Command::Copy(c) => Some(c.read_interval()),
            Command::Add(_) => None,
        }
    }

    /// Returns the inner copy command, if this is one.
    #[must_use]
    pub fn as_copy(&self) -> Option<&Copy> {
        match self {
            Command::Copy(c) => Some(c),
            Command::Add(_) => None,
        }
    }

    /// Returns the inner add command, if this is one.
    #[must_use]
    pub fn as_add(&self) -> Option<&Add> {
        match self {
            Command::Copy(_) => None,
            Command::Add(a) => Some(a),
        }
    }

    /// Whether this is a copy command.
    #[must_use]
    pub fn is_copy(&self) -> bool {
        matches!(self, Command::Copy(_))
    }

    /// Whether this is an add command.
    #[must_use]
    pub fn is_add(&self) -> bool {
        matches!(self, Command::Add(_))
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Copy(c) => c.fmt(f),
            Command::Add(a) => a.fmt(f),
        }
    }
}

impl From<Copy> for Command {
    fn from(c: Copy) -> Self {
        Command::Copy(c)
    }
}

impl From<Add> for Command {
    fn from(a: Add) -> Self {
        Command::Add(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_intervals() {
        let c = Copy {
            from: 5,
            to: 20,
            len: 10,
        };
        assert_eq!(c.read_interval(), Interval::new(5, 15));
        assert_eq!(c.write_interval(), Interval::new(20, 30));
        assert!(!c.is_self_overlapping());
    }

    #[test]
    fn self_overlap_detection() {
        // Reads [0, 10), writes [5, 15): overlapping.
        assert!(Copy {
            from: 0,
            to: 5,
            len: 10
        }
        .is_self_overlapping());
        // Reads [5, 15), writes [0, 10): overlapping the other way.
        assert!(Copy {
            from: 5,
            to: 0,
            len: 10
        }
        .is_self_overlapping());
        // Identity copy overlaps itself entirely.
        assert!(Copy {
            from: 3,
            to: 3,
            len: 4
        }
        .is_self_overlapping());
        // Abutting intervals do not overlap.
        assert!(!Copy {
            from: 0,
            to: 10,
            len: 10
        }
        .is_self_overlapping());
    }

    #[test]
    fn add_basics() {
        let a = Add::new(7, vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.write_interval(), Interval::new(7, 10));
        assert!(Add::new(0, vec![]).is_empty());
    }

    #[test]
    fn command_accessors() {
        let c = Command::copy(1, 2, 3);
        assert_eq!(c.to(), 2);
        assert_eq!(c.len(), 3);
        assert!(c.is_copy());
        assert!(!c.is_add());
        assert!(c.as_copy().is_some());
        assert!(c.as_add().is_none());
        assert_eq!(c.read_interval(), Some(Interval::new(1, 4)));

        let a = Command::add(9, vec![0xff; 4]);
        assert_eq!(a.to(), 9);
        assert_eq!(a.len(), 4);
        assert!(a.is_add());
        assert_eq!(a.read_interval(), None);
        assert_eq!(a.write_interval(), Interval::new(9, 13));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Command::copy(1, 2, 3).to_string(), "copy ⟨1, 2, 3⟩");
        assert_eq!(Command::add(4, vec![7, 7]).to_string(), "add ⟨4, 2⟩");
    }

    #[test]
    fn conversions() {
        let c: Command = Copy {
            from: 0,
            to: 0,
            len: 1,
        }
        .into();
        assert!(c.is_copy());
        let a: Command = Add::new(0, vec![1]).into();
        assert!(a.is_add());
    }
}

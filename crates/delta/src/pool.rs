//! Recyclable script storage: the allocator bypass behind warm-engine
//! zero-allocation diffing and conversion.
//!
//! A [`DeltaScript`] owns two kinds of heap storage: the command vector and
//! one byte vector per add command. In a steady-state update pipeline those
//! allocations dominate what [`super::diff::DiffScratch`] alone cannot
//! eliminate — every produced script used to allocate its storage fresh and
//! free it on drop. A [`ScriptPool`] closes the loop: finished scripts are
//! [recycled](ScriptPool::recycle) back into the pool, and the next script
//! is built out of the returned (cleared, capacity-preserving) vectors.
//!
//! The pool is plain storage with no configuration; one pool serves any mix
//! of script shapes, growing to the workload's high-water mark and staying
//! there.

use crate::command::Command;
use crate::script::DeltaScript;

/// A pool of recycled script storage; see the module docs.
#[derive(Debug, Default)]
pub struct ScriptPool {
    commands: Vec<Vec<Command>>,
    bytes: Vec<Vec<u8>>,
}

impl ScriptPool {
    /// Creates an empty pool. Storage accrues through
    /// [`ScriptPool::recycle`] and the `give_*` methods.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared command vector out of the pool (empty if the pool
    /// has none spare). The largest spare is handed out first: arbitrary
    /// (LIFO) handout lets a small vector land on a big script over and
    /// over, so steady state would keep reallocating instead of
    /// converging to zero.
    #[must_use]
    pub fn take_commands(&mut self) -> Vec<Command> {
        take_largest(&mut self.commands)
    }

    /// Takes a cleared byte vector out of the pool (empty if the pool has
    /// none spare); largest spare first, as [`ScriptPool::take_commands`].
    #[must_use]
    pub fn take_bytes(&mut self) -> Vec<u8> {
        take_largest(&mut self.bytes)
    }

    /// Returns a byte vector to the pool; it is cleared, its capacity kept.
    pub fn give_bytes(&mut self, mut bytes: Vec<u8>) {
        bytes.clear();
        self.bytes.push(bytes);
    }

    /// Returns a command vector to the pool, harvesting the payload of
    /// every add command into the byte stash first.
    pub fn give_commands(&mut self, mut commands: Vec<Command>) {
        for cmd in commands.drain(..) {
            if let Command::Add(add) = cmd {
                self.give_bytes(add.data);
            }
        }
        self.commands.push(commands);
    }

    /// Dismantles a finished script and returns all its storage to the
    /// pool.
    pub fn recycle(&mut self, script: DeltaScript) {
        let (_, _, commands) = script.into_parts();
        self.give_commands(commands);
    }

    /// Number of spare command vectors currently pooled.
    #[must_use]
    pub fn spare_commands(&self) -> usize {
        self.commands.len()
    }

    /// Number of spare byte vectors currently pooled.
    #[must_use]
    pub fn spare_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Moves the whole byte stash out of the pool (for a builder to draw
    /// from without holding a borrow on the pool).
    pub(crate) fn take_bytes_stash(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.bytes)
    }

    /// Restores a byte stash previously taken with
    /// [`ScriptPool::take_bytes_stash`]. Existing entries (if any) are
    /// kept.
    pub(crate) fn restore_bytes_stash(&mut self, mut stash: Vec<Vec<u8>>) {
        if self.bytes.is_empty() {
            self.bytes = stash;
        } else {
            self.bytes.append(&mut stash);
        }
    }
}

/// Removes and returns the highest-capacity vector (empty if none).
fn take_largest<T>(pool: &mut Vec<Vec<T>>) -> Vec<T> {
    let best = pool
        .iter()
        .enumerate()
        .max_by_key(|(_, v)| v.capacity())
        .map(|(i, _)| i);
    match best {
        Some(i) => pool.swap_remove(i),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_round_trips_capacity() {
        let mut pool = ScriptPool::new();
        let script = DeltaScript::new(
            0,
            8,
            vec![Command::add(0, vec![1; 4]), Command::add(4, vec![2; 4])],
        )
        .unwrap();
        pool.recycle(script);
        assert_eq!(pool.spare_commands(), 1);
        assert_eq!(pool.spare_bytes(), 2);
        let cmds = pool.take_commands();
        assert!(cmds.is_empty());
        assert!(cmds.capacity() >= 2);
        let bytes = pool.take_bytes();
        assert!(bytes.is_empty());
        assert!(bytes.capacity() >= 4);
    }

    #[test]
    fn empty_pool_hands_out_fresh_vectors() {
        let mut pool = ScriptPool::new();
        assert!(pool.take_commands().is_empty());
        assert!(pool.take_bytes().is_empty());
    }

    #[test]
    fn stash_round_trip_preserves_entries() {
        let mut pool = ScriptPool::new();
        pool.give_bytes(Vec::with_capacity(16));
        pool.give_bytes(Vec::with_capacity(8));
        let stash = pool.take_bytes_stash();
        assert_eq!(stash.len(), 2);
        assert_eq!(pool.spare_bytes(), 0);
        pool.give_bytes(Vec::new());
        pool.restore_bytes_stash(stash);
        assert_eq!(pool.spare_bytes(), 3);
    }
}

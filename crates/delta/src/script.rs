//! The delta script: a validated sequence of commands encoding one file
//! version against another.

use crate::command::{Add, Command, Copy};
use ipr_digraph::Interval;
use std::fmt;

/// Error returned when a command sequence does not form a well-formed delta
/// script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptError {
    /// A command writes zero bytes; empty commands are forbidden so that
    /// interval reasoning stays non-degenerate.
    EmptyCommand {
        /// Index of the offending command.
        index: usize,
    },
    /// A copy command reads past the end of the reference file.
    ReadOutOfBounds {
        /// Index of the offending command.
        index: usize,
        /// Length of the reference file.
        source_len: u64,
    },
    /// A command writes past the end of the version file.
    WriteOutOfBounds {
        /// Index of the offending command.
        index: usize,
        /// Length of the version file.
        target_len: u64,
    },
    /// Two commands write overlapping version intervals; §3 requires the
    /// write intervals of a delta file to be disjoint.
    OverlappingWrites {
        /// Indices of the two conflicting commands (in input order).
        first: usize,
        /// Second conflicting command.
        second: usize,
    },
    /// The write intervals do not cover the whole version file.
    IncompleteCoverage {
        /// Bytes covered by all write intervals.
        covered: u64,
        /// Length of the version file.
        target_len: u64,
    },
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::EmptyCommand { index } => {
                write!(f, "command {index} writes zero bytes")
            }
            ScriptError::ReadOutOfBounds { index, source_len } => {
                write!(
                    f,
                    "command {index} reads past the reference file (length {source_len})"
                )
            }
            ScriptError::WriteOutOfBounds { index, target_len } => {
                write!(
                    f,
                    "command {index} writes past the version file (length {target_len})"
                )
            }
            ScriptError::OverlappingWrites { first, second } => {
                write!(
                    f,
                    "commands {first} and {second} write overlapping intervals"
                )
            }
            ScriptError::IncompleteCoverage {
                covered,
                target_len,
            } => {
                write!(
                    f,
                    "write intervals cover {covered} of {target_len} version bytes"
                )
            }
        }
    }
}

impl std::error::Error for ScriptError {}

/// A validated delta script: an ordered sequence of commands that encodes a
/// `target_len`-byte version file against a `source_len`-byte reference
/// file.
///
/// Invariants enforced at construction (the paper's §3 requirements):
///
/// * every command writes at least one byte;
/// * every copy reads inside `[0, source_len)`;
/// * every command writes inside `[0, target_len)`;
/// * the write intervals are pairwise disjoint and exactly tile
///   `[0, target_len)`.
///
/// Because the write intervals are disjoint and complete, *any* permutation
/// of the commands materializes the same version file when scratch space is
/// available; the order only matters for in-place reconstruction.
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
///
/// let script = DeltaScript::new(3, 6, vec![
///     Command::copy(0, 0, 3),
///     Command::add(3, b"xyz".to_vec()),
/// ])?;
/// assert_eq!(script.copy_count(), 1);
/// assert_eq!(script.add_count(), 1);
/// # Ok::<(), ipr_delta::ScriptError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaScript {
    source_len: u64,
    target_len: u64,
    commands: Vec<Command>,
}

impl DeltaScript {
    /// Validates `commands` and builds a script.
    ///
    /// # Errors
    ///
    /// Returns a [`ScriptError`] describing the first violated invariant.
    pub fn new(
        source_len: u64,
        target_len: u64,
        commands: Vec<Command>,
    ) -> Result<Self, ScriptError> {
        check_bounds(&commands, source_len, target_len)?;
        if commands.windows(2).all(|w| w[0].to() <= w[1].to()) {
            // Already write-ordered (every builder-produced script is):
            // validate in place without materializing a sort permutation.
            // A stable sort of a non-strictly ordered sequence is the
            // identity, so this walk visits the same pairs in the same
            // order as the sorting path below.
            check_tiling(&commands, 0..commands.len(), target_len)?;
        } else {
            let mut order: Vec<usize> = (0..commands.len()).collect();
            order.sort_by_key(|&i| commands[i].to());
            check_tiling(&commands, order.iter().copied(), target_len)?;
        }
        Ok(Self {
            source_len,
            target_len,
            commands,
        })
    }

    /// Validates `commands` and builds a script, reusing `order_scratch`
    /// for the sort permutation so steady-state construction performs no
    /// heap allocation.
    ///
    /// Behaviour matches [`DeltaScript::new`], except that when several
    /// commands share a write offset (always an error) the reported
    /// [`ScriptError::OverlappingWrites`] pair may differ: the sort here is
    /// unstable. In valid scripts write offsets are unique, so the two
    /// constructors accept and reject exactly the same inputs.
    ///
    /// # Errors
    ///
    /// Returns a [`ScriptError`] describing the first violated invariant.
    pub fn new_with_scratch(
        source_len: u64,
        target_len: u64,
        commands: Vec<Command>,
        order_scratch: &mut Vec<usize>,
    ) -> Result<Self, ScriptError> {
        check_bounds(&commands, source_len, target_len)?;
        if commands.windows(2).all(|w| w[0].to() <= w[1].to()) {
            check_tiling(&commands, 0..commands.len(), target_len)?;
        } else {
            order_scratch.clear();
            order_scratch.extend(0..commands.len());
            order_scratch.sort_unstable_by_key(|&i| commands[i].to());
            check_tiling(&commands, order_scratch.iter().copied(), target_len)?;
        }
        Ok(Self {
            source_len,
            target_len,
            commands,
        })
    }

    /// Length of the reference (old) file.
    #[must_use]
    pub fn source_len(&self) -> u64 {
        self.source_len
    }

    /// Length of the version (new) file.
    #[must_use]
    pub fn target_len(&self) -> u64 {
        self.target_len
    }

    /// The commands in application order.
    #[must_use]
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the script has no commands (only possible for an empty
    /// version file).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Number of copy commands.
    #[must_use]
    pub fn copy_count(&self) -> usize {
        self.commands.iter().filter(|c| c.is_copy()).count()
    }

    /// Number of add commands.
    #[must_use]
    pub fn add_count(&self) -> usize {
        self.commands.iter().filter(|c| c.is_add()).count()
    }

    /// Total bytes materialized by copy commands.
    #[must_use]
    pub fn copied_bytes(&self) -> u64 {
        self.commands
            .iter()
            .filter(|c| c.is_copy())
            .map(Command::len)
            .sum()
    }

    /// Total literal bytes carried by add commands.
    #[must_use]
    pub fn added_bytes(&self) -> u64 {
        self.commands
            .iter()
            .filter(|c| c.is_add())
            .map(Command::len)
            .sum()
    }

    /// The copy commands, in application order.
    #[must_use]
    pub fn copies(&self) -> Vec<Copy> {
        self.commands
            .iter()
            .filter_map(|c| c.as_copy().copied())
            .collect()
    }

    /// The add commands, in application order.
    #[must_use]
    pub fn adds(&self) -> Vec<Add> {
        self.commands
            .iter()
            .filter_map(|c| c.as_add().cloned())
            .collect()
    }

    /// Whether the commands are listed in write order (ascending `to`),
    /// which the offset-free [ordered codec](crate::codec::Format::Ordered)
    /// requires.
    #[must_use]
    pub fn is_write_ordered(&self) -> bool {
        self.commands.windows(2).all(|w| w[0].to() <= w[1].to())
    }

    /// Returns the same script with commands sorted into write order.
    #[must_use]
    pub fn into_write_ordered(mut self) -> DeltaScript {
        self.commands.sort_by_key(Command::to);
        self
    }

    /// Returns a script with the same commands in the given permutation.
    ///
    /// Since write intervals are disjoint and complete, the permuted script
    /// materializes the same version file under scratch-space application.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..len()`.
    #[must_use]
    pub fn permuted(&self, order: &[usize]) -> DeltaScript {
        assert_eq!(
            order.len(),
            self.commands.len(),
            "permutation length mismatch"
        );
        let mut seen = vec![false; self.commands.len()];
        let mut commands = Vec::with_capacity(self.commands.len());
        for &i in order {
            assert!(!seen[i], "duplicate index {i} in permutation");
            seen[i] = true;
            commands.push(self.commands[i].clone());
        }
        DeltaScript {
            source_len: self.source_len,
            target_len: self.target_len,
            commands,
        }
    }

    /// Merges adjacent compatible commands of a write-ordered script:
    /// back-to-back adds coalesce, and copies whose source and
    /// destination are both contiguous coalesce.
    ///
    /// The main use is undoing the splits forced by fixed-width codecs
    /// ([`Format::PaperOrdered`](crate::codec::Format::PaperOrdered)
    /// caps adds at 255 bytes): decode, then normalize, and the original
    /// command boundaries are restored.
    ///
    /// # Panics
    ///
    /// Panics if the script is not write-ordered — for out-of-order
    /// (in-place) scripts the command order is the safety property and
    /// must not be resorted implicitly; call
    /// [`DeltaScript::into_write_ordered`] first if that is really what
    /// you want.
    #[must_use]
    pub fn normalized(&self) -> DeltaScript {
        assert!(
            self.is_write_ordered(),
            "normalization requires a write-ordered script"
        );
        let mut builder = crate::diff::ScriptBuilder::new();
        for cmd in &self.commands {
            match cmd {
                Command::Copy(c) => builder.push_copy(c.from, c.len),
                Command::Add(a) => builder.push_literal(&a.data),
            }
        }
        let normalized = builder.finish(self.source_len);
        debug_assert_eq!(normalized.target_len(), self.target_len);
        normalized
    }

    /// Decomposes the script into `(source_len, target_len, commands)`.
    #[must_use]
    pub fn into_parts(self) -> (u64, u64, Vec<Command>) {
        (self.source_len, self.target_len, self.commands)
    }

    /// The version-file intervals written by each command, in command order.
    #[must_use]
    pub fn write_intervals(&self) -> Vec<Interval> {
        self.commands.iter().map(Command::write_interval).collect()
    }
}

/// Bounds and non-emptiness checks shared by the constructors. Offsets come
/// straight off the wire, so `to + len` may overflow u64: use checked
/// arithmetic rather than interval construction (which would panic).
fn check_bounds(commands: &[Command], source_len: u64, target_len: u64) -> Result<(), ScriptError> {
    for (index, cmd) in commands.iter().enumerate() {
        if cmd.is_empty() {
            return Err(ScriptError::EmptyCommand { index });
        }
        match cmd.to().checked_add(cmd.len()) {
            Some(end) if end <= target_len => {}
            _ => return Err(ScriptError::WriteOutOfBounds { index, target_len }),
        }
        if let Command::Copy(c) = cmd {
            match c.from.checked_add(c.len) {
                Some(end) if end <= source_len => {}
                _ => return Err(ScriptError::ReadOutOfBounds { index, source_len }),
            }
        }
    }
    Ok(())
}

/// Disjointness and coverage over the write intervals, visited in the
/// (start-sorted) index order produced by `order`.
fn check_tiling(
    commands: &[Command],
    order: impl Iterator<Item = usize>,
    target_len: u64,
) -> Result<(), ScriptError> {
    let mut covered = 0u64;
    let mut prev_end = 0u64;
    let mut prev_index = usize::MAX;
    for i in order {
        let w = commands[i].write_interval();
        if prev_index != usize::MAX && w.start() < prev_end {
            let (a, b) = (prev_index.min(i), prev_index.max(i));
            return Err(ScriptError::OverlappingWrites {
                first: a,
                second: b,
            });
        }
        covered += w.len();
        prev_end = w.end();
        prev_index = i;
    }
    if covered != target_len {
        return Err(ScriptError::IncompleteCoverage {
            covered,
            target_len,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmds() -> Vec<Command> {
        vec![
            Command::copy(0, 0, 4),
            Command::add(4, b"abcd".to_vec()),
            Command::copy(4, 8, 2),
        ]
    }

    #[test]
    fn valid_script() {
        let s = DeltaScript::new(10, 10, cmds()).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.copy_count(), 2);
        assert_eq!(s.add_count(), 1);
        assert_eq!(s.copied_bytes(), 6);
        assert_eq!(s.added_bytes(), 4);
        assert!(s.is_write_ordered());
    }

    #[test]
    fn empty_script_for_empty_target() {
        let s = DeltaScript::new(5, 0, vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.target_len(), 0);
    }

    #[test]
    fn rejects_empty_command() {
        let err = DeltaScript::new(10, 4, vec![Command::copy(0, 0, 4), Command::add(4, vec![])])
            .unwrap_err();
        assert_eq!(err, ScriptError::EmptyCommand { index: 1 });
    }

    #[test]
    fn rejects_read_out_of_bounds() {
        let err = DeltaScript::new(3, 4, vec![Command::copy(0, 0, 4)]).unwrap_err();
        assert_eq!(
            err,
            ScriptError::ReadOutOfBounds {
                index: 0,
                source_len: 3
            }
        );
    }

    #[test]
    fn rejects_write_out_of_bounds() {
        let err = DeltaScript::new(10, 3, vec![Command::copy(0, 0, 4)]).unwrap_err();
        assert_eq!(
            err,
            ScriptError::WriteOutOfBounds {
                index: 0,
                target_len: 3
            }
        );
    }

    #[test]
    fn rejects_offset_overflow_without_panicking() {
        // Hostile wire input: to + len overflows u64.
        let err = DeltaScript::new(u64::MAX, u64::MAX, vec![Command::copy(0, u64::MAX - 1, 3)])
            .unwrap_err();
        assert!(matches!(err, ScriptError::WriteOutOfBounds { .. }));
        let err =
            DeltaScript::new(u64::MAX, 4, vec![Command::copy(u64::MAX - 1, 0, 4)]).unwrap_err();
        assert!(matches!(err, ScriptError::ReadOutOfBounds { .. }));
    }

    #[test]
    fn rejects_overlapping_writes() {
        let err = DeltaScript::new(10, 6, vec![Command::copy(0, 0, 4), Command::copy(0, 3, 3)])
            .unwrap_err();
        assert_eq!(
            err,
            ScriptError::OverlappingWrites {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn rejects_incomplete_coverage() {
        let err = DeltaScript::new(10, 6, vec![Command::copy(0, 0, 4)]).unwrap_err();
        assert_eq!(
            err,
            ScriptError::IncompleteCoverage {
                covered: 4,
                target_len: 6
            }
        );
    }

    #[test]
    fn rejects_gap_between_commands() {
        let err = DeltaScript::new(10, 8, vec![Command::copy(0, 0, 3), Command::copy(0, 5, 3)])
            .unwrap_err();
        assert!(matches!(
            err,
            ScriptError::IncompleteCoverage { covered: 6, .. }
        ));
    }

    #[test]
    fn permutation_independent_validity() {
        // Out-of-write-order command sequences are still valid scripts.
        let s =
            DeltaScript::new(10, 6, vec![Command::copy(0, 3, 3), Command::copy(5, 0, 3)]).unwrap();
        assert!(!s.is_write_ordered());
        let ordered = s.clone().into_write_ordered();
        assert!(ordered.is_write_ordered());
        assert_eq!(ordered.commands()[0].to(), 0);
    }

    #[test]
    fn permuted_reorders() {
        let s = DeltaScript::new(10, 10, cmds()).unwrap();
        let p = s.permuted(&[2, 0, 1]);
        assert_eq!(p.commands()[0], Command::copy(4, 8, 2));
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn permuted_rejects_duplicates() {
        let s = DeltaScript::new(10, 10, cmds()).unwrap();
        let _ = s.permuted(&[0, 0, 1]);
    }

    #[test]
    fn normalized_merges_adjacent_commands() {
        let s = DeltaScript::new(
            100,
            20,
            vec![
                Command::copy(10, 0, 4),
                Command::copy(14, 4, 4), // contiguous with the previous copy
                Command::add(8, vec![1, 2]),
                Command::add(10, vec![3, 4]), // contiguous add
                Command::copy(50, 12, 4),
                Command::copy(90, 16, 4), // NOT source-contiguous
            ],
        )
        .unwrap();
        let n = s.normalized();
        assert_eq!(n.len(), 4);
        assert_eq!(n.commands()[0], Command::copy(10, 0, 8));
        assert_eq!(n.commands()[1], Command::add(8, vec![1, 2, 3, 4]));
        assert_eq!(n.target_len(), 20);
    }

    #[test]
    fn normalized_undoes_paper_codec_splits() {
        use crate::codec::{decode, encode, Format};
        let original = DeltaScript::new(0, 700, vec![Command::add(0, vec![7; 700])]).unwrap();
        let wire = encode(&original, Format::PaperOrdered).unwrap();
        let decoded = decode(&wire).unwrap();
        assert_eq!(decoded.script.add_count(), 3, "codec split the add");
        assert_eq!(decoded.script.normalized(), original);
    }

    #[test]
    #[should_panic(expected = "write-ordered")]
    fn normalized_rejects_out_of_order_scripts() {
        let s =
            DeltaScript::new(10, 6, vec![Command::copy(0, 3, 3), Command::copy(5, 0, 3)]).unwrap();
        let _ = s.normalized();
    }

    #[test]
    fn scratch_constructor_matches_plain_constructor() {
        let mut order = Vec::new();
        // Valid ordered, valid unordered, and each error class.
        let cases: Vec<(u64, u64, Vec<Command>)> = vec![
            (10, 10, cmds()),
            (10, 6, vec![Command::copy(0, 3, 3), Command::copy(5, 0, 3)]),
            (5, 0, vec![]),
            (10, 4, vec![Command::copy(0, 0, 4), Command::add(4, vec![])]),
            (3, 4, vec![Command::copy(0, 0, 4)]),
            (10, 3, vec![Command::copy(0, 0, 4)]),
            (10, 6, vec![Command::copy(0, 0, 4), Command::copy(0, 3, 3)]),
            (10, 6, vec![Command::copy(0, 0, 4)]),
        ];
        for (source_len, target_len, commands) in cases {
            let plain = DeltaScript::new(source_len, target_len, commands.clone());
            let scratch =
                DeltaScript::new_with_scratch(source_len, target_len, commands, &mut order);
            assert_eq!(plain, scratch);
        }
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ScriptError> = vec![
            ScriptError::EmptyCommand { index: 0 },
            ScriptError::ReadOutOfBounds {
                index: 1,
                source_len: 2,
            },
            ScriptError::WriteOutOfBounds {
                index: 1,
                target_len: 2,
            },
            ScriptError::OverlappingWrites {
                first: 0,
                second: 1,
            },
            ScriptError::IncompleteCoverage {
                covered: 0,
                target_len: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

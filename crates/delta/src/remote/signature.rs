//! Reference signatures: one weak + strong checksum pair per block,
//! with a varint wire format.
//!
//! A signature is everything the version holder needs to know about the
//! reference — a few dozen bytes per block instead of the file itself.
//! The device (which holds the reference) computes and uploads it once;
//! the server diffs every future version against it with
//! [`generate_delta`](super::generate_delta), never touching the
//! reference bytes again.
//!
//! The wire layout (full field tables in docs/REMOTE.md):
//!
//! ```text
//! "IPS\x01"  chunking-byte  varint…header  varint-count  blocks…  crc32
//! ```
//!
//! Block lengths are varint-encoded and offsets are implicit (each
//! block starts where the previous ended), so fixed-block signatures
//! cost ~21 bytes per block and decode validates that the lengths sum
//! to the declared source length. The trailing CRC-32 covers every
//! preceding byte.

use super::cdc::{cut_points, CdcParams, Chunker};
use super::strong::strong_of;
use super::weak::weak_of;
use crate::checksum::Crc32;
use crate::varint::{self, VarintError};
use std::fmt;
use std::io::Read;

/// Magic number opening every signature file: `IPS` + version 1.
///
/// Distinct from the delta codec's `IPR\x01` so the two file kinds can
/// never be confused.
pub const SIGNATURE_MAGIC: [u8; 4] = *b"IPS\x01";

/// Default fixed block length (rsync's ballpark).
pub const DEFAULT_BLOCK_LEN: usize = 2048;

/// Wire byte for fixed-size blocks.
const CHUNKING_FIXED: u8 = 0;
/// Wire byte for content-defined chunking.
const CHUNKING_CDC: u8 = 1;

/// How a reference is split into blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Chunking {
    /// Fixed-size blocks of the given length (the final block may be
    /// shorter). Cheap and dense, but an insertion shifts every later
    /// boundary.
    Fixed(usize),
    /// Content-defined (Gear) chunks within [`CdcParams`] bounds; an
    /// insertion disturbs only the O(1) boundaries near the edit.
    Cdc(CdcParams),
}

impl Default for Chunking {
    fn default() -> Self {
        Chunking::Fixed(DEFAULT_BLOCK_LEN)
    }
}

impl Chunking {
    /// Validates the parameters (positive block length, CDC bounds).
    ///
    /// # Errors
    ///
    /// [`SignatureError::BadChunking`] describing the violation.
    pub fn validate(&self) -> Result<(), SignatureError> {
        match self {
            Chunking::Fixed(0) => Err(SignatureError::BadChunking(
                "fixed block length must be positive".into(),
            )),
            Chunking::Fixed(len) if *len as u64 > u64::from(u32::MAX) => Err(
                SignatureError::BadChunking(format!("fixed block length {len} exceeds u32")),
            ),
            Chunking::Fixed(_) => Ok(()),
            Chunking::Cdc(params) => params.validate().map_err(SignatureError::BadChunking),
        }
    }

    /// The longest block this chunking can produce — the streaming
    /// generator's window size (its memory bound).
    #[must_use]
    pub fn max_block_len(&self) -> usize {
        match self {
            Chunking::Fixed(len) => *len,
            Chunking::Cdc(params) => params.max,
        }
    }
}

impl fmt::Display for Chunking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Chunking::Fixed(len) => write!(f, "fixed/{len}"),
            Chunking::Cdc(p) => write!(f, "cdc/{}:{}:{}", p.min, p.avg, p.max),
        }
    }
}

/// Default wire-signature byte budget for [`BlockSize::Auto`]: 512 KiB
/// of signature buys ≈ 24 000 blocks, i.e. 1 KiB resolution on a
/// 24 MiB reference.
pub const DEFAULT_SIGNATURE_BUDGET: usize = 512 * 1024;

/// Fixed-block size selection: a concrete length, or the smallest block
/// whose wire signature fits a byte budget.
///
/// Small blocks give high match resolution (less literal spill around
/// each edit) but cost ~22 wire bytes per block; [`BlockSize::Auto`]
/// resolves the tension per reference by walking the power-of-two
/// ladder `[256, 1 MiB]` and picking the smallest block length whose
/// exact encoded signature ([`fixed_signature_wire_len`]) fits the
/// budget — largest if none fit.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::{BlockSize, Chunking};
///
/// let auto = BlockSize::Auto { budget: 64 * 1024 };
/// // A small reference affords the finest block.
/// assert_eq!(auto.resolve(100_000), 256);
/// // A large one is coarsened until the signature fits 64 KiB.
/// assert_eq!(auto.resolve(100_000_000), 65_536);
/// assert_eq!(auto.chunking(100_000_000), Chunking::Fixed(65_536));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockSize {
    /// Use exactly this block length.
    Fixed(usize),
    /// Pick the smallest power-of-two block length in
    /// `[MIN_AUTO, MAX_AUTO]` whose encoded signature fits `budget`
    /// bytes.
    Auto {
        /// Wire-signature byte budget.
        budget: usize,
    },
}

impl BlockSize {
    /// Finest block length [`BlockSize::Auto`] will pick.
    pub const MIN_AUTO: usize = 256;
    /// Coarsest block length [`BlockSize::Auto`] will pick.
    pub const MAX_AUTO: usize = 1 << 20;

    /// The block length to use for a `source_len`-byte reference.
    #[must_use]
    pub fn resolve(self, source_len: u64) -> usize {
        match self {
            BlockSize::Fixed(len) => len,
            BlockSize::Auto { budget } => {
                let mut len = Self::MIN_AUTO;
                while len < Self::MAX_AUTO
                    && fixed_signature_wire_len(source_len, len as u64) > budget as u64
                {
                    len *= 2;
                }
                len
            }
        }
    }

    /// The [`Chunking`] to build the signature with.
    #[must_use]
    pub fn chunking(self, source_len: u64) -> Chunking {
        Chunking::Fixed(self.resolve(source_len))
    }
}

impl Default for BlockSize {
    fn default() -> Self {
        BlockSize::Fixed(DEFAULT_BLOCK_LEN)
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockSize::Fixed(len) => write!(f, "{len}"),
            BlockSize::Auto { budget } => write!(f, "auto:{budget}"),
        }
    }
}

/// Exact encoded size ([`Signature::encoded_len`]) of a fixed-block
/// signature over a `source_len`-byte reference, without building it.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::{fixed_signature_wire_len, Chunking, Signature};
///
/// let sig = Signature::build(&[7u8; 10_000], Chunking::Fixed(4096)).unwrap();
/// assert_eq!(fixed_signature_wire_len(10_000, 4096), sig.encoded_len() as u64);
/// ```
#[must_use]
pub fn fixed_signature_wire_len(source_len: u64, block_len: u64) -> u64 {
    debug_assert!(block_len > 0);
    let full = source_len / block_len;
    let tail = source_len % block_len;
    let count = full + u64::from(tail != 0);
    let mut len = (SIGNATURE_MAGIC.len() + 1 + 4) as u64
        + varint::encoded_len(source_len) as u64
        + varint::encoded_len(block_len) as u64
        + varint::encoded_len(count) as u64;
    len += full.saturating_mul((varint::encoded_len(block_len) + 4 + 16) as u64);
    if tail != 0 {
        len += (varint::encoded_len(tail) + 4 + 16) as u64;
    }
    len
}

/// The signature of one reference block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSignature {
    /// Byte offset of the block in the reference.
    pub offset: u64,
    /// Block length in bytes (at most the chunking's maximum).
    pub len: u32,
    /// Weak rolling checksum ([`weak_of`]).
    pub weak: u32,
    /// Strong 128-bit hash ([`strong_of`]).
    pub strong: u128,
}

/// A reference's complete signature set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    chunking: Chunking,
    source_len: u64,
    blocks: Vec<BlockSignature>,
}

impl Signature {
    /// Builds the signature of `reference` under `chunking`.
    ///
    /// Emits a `remote.sign` span and a `remote.blocks` counter through
    /// [`ipr_trace`].
    ///
    /// # Errors
    ///
    /// [`SignatureError::BadChunking`] when the parameters are invalid.
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_delta::remote::{Chunking, Signature};
    ///
    /// let sig = Signature::build(&[7u8; 10_000], Chunking::Fixed(4096)).unwrap();
    /// assert_eq!(sig.blocks().len(), 3); // 4096 + 4096 + 1808
    /// assert_eq!(sig.source_len(), 10_000);
    /// ```
    pub fn build(reference: &[u8], chunking: Chunking) -> Result<Self, SignatureError> {
        chunking.validate()?;
        let _span = ipr_trace::span("remote.sign");
        let mut blocks = Vec::new();
        let mut push = |offset: usize, end: usize| {
            let data = &reference[offset..end];
            blocks.push(BlockSignature {
                offset: offset as u64,
                len: (end - offset) as u32,
                weak: weak_of(data),
                strong: strong_of(data),
            });
        };
        match chunking {
            Chunking::Fixed(len) => {
                let mut offset = 0;
                while offset < reference.len() {
                    let end = (offset + len).min(reference.len());
                    push(offset, end);
                    offset = end;
                }
            }
            Chunking::Cdc(params) => {
                let mut offset = 0;
                for end in cut_points(reference, params) {
                    push(offset, end);
                    offset = end;
                }
            }
        }
        ipr_trace::add("remote.blocks", blocks.len() as u64);
        Ok(Self {
            chunking,
            source_len: reference.len() as u64,
            blocks,
        })
    }

    /// Builds the signature from a reader without ever holding the
    /// reference in memory: resident state is one block-sized buffer
    /// (`chunking.max_block_len()` bytes) plus the growing block table.
    ///
    /// Produces exactly the same signature as [`Signature::build`] on
    /// the same bytes.
    ///
    /// # Errors
    ///
    /// Invalid chunking parameters surface as
    /// [`std::io::ErrorKind::InvalidInput`]; reader errors pass
    /// through.
    pub fn build_streaming<R: Read>(mut reference: R, chunking: Chunking) -> std::io::Result<Self> {
        chunking
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let _span = ipr_trace::span("remote.sign");
        let mut blocks = Vec::new();
        let mut offset = 0u64;
        let mut buf = vec![0u8; chunking.max_block_len().clamp(1, 1 << 20)];
        let mut push = |offset: &mut u64, data: &[u8]| {
            blocks.push(BlockSignature {
                offset: *offset,
                len: data.len() as u32,
                weak: weak_of(data),
                strong: strong_of(data),
            });
            *offset += data.len() as u64;
        };
        match chunking {
            Chunking::Fixed(len) => {
                let mut block = vec![0u8; len];
                loop {
                    let filled = fill(&mut reference, &mut block)?;
                    if filled == 0 {
                        break;
                    }
                    push(&mut offset, &block[..filled]);
                    if filled < len {
                        break;
                    }
                }
            }
            Chunking::Cdc(params) => {
                let mut chunker = Chunker::new(params);
                let mut chunk = Vec::with_capacity(params.max);
                loop {
                    let n = reference.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    for &b in &buf[..n] {
                        chunk.push(b);
                        if chunker.push(b) {
                            push(&mut offset, &chunk);
                            chunk.clear();
                        }
                    }
                }
                if !chunk.is_empty() {
                    push(&mut offset, &chunk);
                }
            }
        }
        ipr_trace::add("remote.blocks", blocks.len() as u64);
        Ok(Self {
            chunking,
            source_len: offset,
            blocks,
        })
    }

    /// The chunking the signature was built with.
    #[must_use]
    pub fn chunking(&self) -> Chunking {
        self.chunking
    }

    /// Reference length in bytes (the delta scripts' `source_len`).
    #[must_use]
    pub fn source_len(&self) -> u64 {
        self.source_len
    }

    /// The per-block signatures, in reference order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockSignature] {
        &self.blocks
    }

    /// In-memory footprint of the signature itself (the block table);
    /// the match-side footprint including the lookup index is
    /// [`MatchTable::resident_bytes`](super::MatchTable::resident_bytes).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.blocks.capacity() * std::mem::size_of::<BlockSignature>()
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        let header = match self.chunking {
            Chunking::Fixed(len) => varint::encoded_len(len as u64),
            Chunking::Cdc(p) => {
                varint::encoded_len(p.min as u64)
                    + varint::encoded_len(p.avg as u64)
                    + varint::encoded_len(p.max as u64)
            }
        };
        let blocks: usize = self
            .blocks
            .iter()
            .map(|b| varint::encoded_len(u64::from(b.len)) + 4 + 16)
            .sum();
        SIGNATURE_MAGIC.len()
            + 1
            + varint::encoded_len(self.source_len)
            + header
            + varint::encoded_len(self.blocks.len() as u64)
            + blocks
            + 4
    }

    /// Serializes the signature (format above; field tables in
    /// docs/REMOTE.md).
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_delta::remote::{Chunking, Signature};
    ///
    /// let sig = Signature::build(b"0123456789", Chunking::Fixed(4)).unwrap();
    /// let wire = sig.encode();
    /// assert_eq!(wire.len(), sig.encoded_len());
    /// assert_eq!(Signature::decode(&wire).unwrap(), sig);
    /// ```
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&SIGNATURE_MAGIC);
        match self.chunking {
            Chunking::Fixed(len) => {
                out.push(CHUNKING_FIXED);
                varint::encode(self.source_len, &mut out);
                varint::encode(len as u64, &mut out);
            }
            Chunking::Cdc(p) => {
                out.push(CHUNKING_CDC);
                varint::encode(self.source_len, &mut out);
                varint::encode(p.min as u64, &mut out);
                varint::encode(p.avg as u64, &mut out);
                varint::encode(p.max as u64, &mut out);
            }
        }
        varint::encode(self.blocks.len() as u64, &mut out);
        for block in &self.blocks {
            varint::encode(u64::from(block.len), &mut out);
            out.extend_from_slice(&block.weak.to_le_bytes());
            out.extend_from_slice(&block.strong.to_le_bytes());
        }
        let mut crc = Crc32::new();
        crc.update(&out);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }

    /// Decodes a serialized signature, validating the magic, chunking
    /// parameters, block-length sum and trailing CRC.
    ///
    /// # Errors
    ///
    /// A [`SignatureError`] naming the first malformation.
    pub fn decode(input: &[u8]) -> Result<Self, SignatureError> {
        let body_len = input.len().checked_sub(4).ok_or(SignatureError::TooShort)?;
        let (body, crc_bytes) = input.split_at(body_len);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
        let mut crc = Crc32::new();
        crc.update(body);
        let actual = crc.finish();
        if stored != actual {
            return Err(SignatureError::ChecksumMismatch { stored, actual });
        }
        let mut cursor = Cursor { buf: body, pos: 0 };
        let magic = cursor.take(4)?;
        if magic != SIGNATURE_MAGIC {
            return Err(SignatureError::BadMagic);
        }
        let chunking_byte = cursor.take(1)?[0];
        let source_len = cursor.varint()?;
        let chunking = match chunking_byte {
            CHUNKING_FIXED => Chunking::Fixed(cursor.varint()? as usize),
            CHUNKING_CDC => Chunking::Cdc(CdcParams {
                min: cursor.varint()? as usize,
                avg: cursor.varint()? as usize,
                max: cursor.varint()? as usize,
            }),
            other => return Err(SignatureError::BadChunkingByte(other)),
        };
        chunking.validate()?;
        let count = cursor.varint()?;
        if count > body.len() as u64 {
            // Each block costs ≥ 21 wire bytes; a count beyond the
            // input length is hostile. Reject before allocating.
            return Err(SignatureError::TooShort);
        }
        let mut blocks = Vec::with_capacity(count as usize);
        let mut offset = 0u64;
        for _ in 0..count {
            let len = cursor.varint()?;
            if len == 0 || len > chunking.max_block_len() as u64 {
                return Err(SignatureError::BadBlockLen {
                    len,
                    max: chunking.max_block_len() as u64,
                });
            }
            let weak = u32::from_le_bytes(cursor.take(4)?.try_into().expect("4-byte slice"));
            let strong = u128::from_le_bytes(cursor.take(16)?.try_into().expect("16-byte slice"));
            blocks.push(BlockSignature {
                offset,
                len: len as u32,
                weak,
                strong,
            });
            offset += len;
        }
        if offset != source_len {
            return Err(SignatureError::LengthMismatch {
                declared: source_len,
                blocks: offset,
            });
        }
        if cursor.pos != body.len() {
            return Err(SignatureError::TrailingBytes(body.len() - cursor.pos));
        }
        Ok(Self {
            chunking,
            source_len,
            blocks,
        })
    }
}

/// Reads exactly `buf.len()` bytes unless EOF comes first; returns the
/// count actually read.
fn fill<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// Bounds-checked wire reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SignatureError> {
        let end = self.pos.checked_add(n).ok_or(SignatureError::TooShort)?;
        if end > self.buf.len() {
            return Err(SignatureError::TooShort);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, SignatureError> {
        let (value, consumed) = varint::decode(&self.buf[self.pos..])?;
        self.pos += consumed;
        Ok(value)
    }
}

/// Why a signature failed to decode or build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignatureError {
    /// Input ended before a declared field.
    TooShort,
    /// The magic number is not `IPS\x01`.
    BadMagic,
    /// Unknown chunking discriminator byte.
    BadChunkingByte(u8),
    /// Chunking parameters violate their bounds.
    BadChunking(String),
    /// A varint field is malformed.
    Varint(VarintError),
    /// A block length is zero or exceeds the chunking's maximum.
    BadBlockLen {
        /// The offending length.
        len: u64,
        /// The chunking's maximum block length.
        max: u64,
    },
    /// Block lengths do not sum to the declared source length.
    LengthMismatch {
        /// Declared source length.
        declared: u64,
        /// Sum of the block lengths.
        blocks: u64,
    },
    /// Bytes remain after the block table.
    TrailingBytes(usize),
    /// The trailing CRC-32 does not match the content.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC of the received bytes.
        actual: u32,
    },
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooShort => write!(f, "signature input ends before a declared field"),
            Self::BadMagic => write!(f, "not a signature file (bad magic)"),
            Self::BadChunkingByte(b) => write!(f, "unknown chunking discriminator {b:#04x}"),
            Self::BadChunking(msg) => write!(f, "invalid chunking: {msg}"),
            Self::Varint(e) => write!(f, "malformed varint: {e}"),
            Self::BadBlockLen { len, max } => {
                write!(f, "block length {len} outside (0, {max}]")
            }
            Self::LengthMismatch { declared, blocks } => write!(
                f,
                "block lengths sum to {blocks} but source length says {declared}"
            ),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after the block table"),
            Self::ChecksumMismatch { stored, actual } => write!(
                f,
                "signature checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for SignatureError {}

impl From<VarintError> for SignatureError {
    fn from(e: VarintError) -> Self {
        Self::Varint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn fixed_blocks_tile_the_reference() {
        let data = pseudo(10_000, 1);
        let sig = Signature::build(&data, Chunking::Fixed(1024)).unwrap();
        assert_eq!(sig.blocks().len(), 10);
        let mut offset = 0;
        for b in sig.blocks() {
            assert_eq!(b.offset, offset);
            offset += u64::from(b.len);
            assert_eq!(
                b.weak,
                weak_of(&data[b.offset as usize..(b.offset + u64::from(b.len)) as usize])
            );
        }
        assert_eq!(offset, 10_000);
        assert_eq!(sig.blocks()[9].len, 10_000 - 9 * 1024);
    }

    #[test]
    fn cdc_blocks_tile_the_reference() {
        let data = pseudo(50_000, 2);
        let params = CdcParams {
            min: 64,
            avg: 256,
            max: 1024,
        };
        let sig = Signature::build(&data, Chunking::Cdc(params)).unwrap();
        let total: u64 = sig.blocks().iter().map(|b| u64::from(b.len)).sum();
        assert_eq!(total, 50_000);
        assert!(sig.blocks().iter().all(|b| b.len <= 1024));
    }

    #[test]
    fn wire_round_trips() {
        let data = pseudo(33_000, 3);
        for chunking in [
            Chunking::Fixed(700),
            Chunking::Fixed(1),
            Chunking::Cdc(CdcParams {
                min: 16,
                avg: 128,
                max: 512,
            }),
        ] {
            let sig = Signature::build(&data, chunking).unwrap();
            let wire = sig.encode();
            assert_eq!(wire.len(), sig.encoded_len());
            assert_eq!(Signature::decode(&wire).unwrap(), sig);
        }
        let empty = Signature::build(&[], Chunking::Fixed(8)).unwrap();
        assert_eq!(Signature::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn streaming_build_matches_slice_build() {
        let data = pseudo(20_011, 4);
        for chunking in [
            Chunking::Fixed(512),
            Chunking::Cdc(CdcParams {
                min: 16,
                avg: 64,
                max: 256,
            }),
        ] {
            let slice = Signature::build(&data, chunking).unwrap();
            // A reader that trickles 13 bytes at a time exercises refill.
            struct Trickle<'a>(&'a [u8]);
            impl Read for Trickle<'_> {
                fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                    let n = self.0.len().min(buf.len()).min(13);
                    buf[..n].copy_from_slice(&self.0[..n]);
                    self.0 = &self.0[n..];
                    Ok(n)
                }
            }
            let streamed = Signature::build_streaming(Trickle(&data), chunking).unwrap();
            assert_eq!(streamed, slice, "{chunking}");
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let sig = Signature::build(&pseudo(4_000, 5), Chunking::Fixed(256)).unwrap();
        let wire = sig.encode();
        assert_eq!(Signature::decode(&[]), Err(SignatureError::TooShort));
        // Flip one byte anywhere: the CRC catches it.
        for i in [0usize, 4, wire.len() / 2, wire.len() - 5] {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    Signature::decode(&bad),
                    Err(SignatureError::ChecksumMismatch { .. } | SignatureError::BadMagic)
                ),
                "byte {i} flip not caught"
            );
        }
        // Truncation loses the CRC trailer.
        assert!(Signature::decode(&wire[..wire.len() - 1]).is_err());
        // Hostile count: huge declared block count with a fixed-up CRC
        // must not allocate or panic.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&SIGNATURE_MAGIC);
        hostile.push(CHUNKING_FIXED);
        varint::encode(1 << 40, &mut hostile); // source_len
        varint::encode(4096, &mut hostile); // block_len
        varint::encode(u64::MAX, &mut hostile); // count
        let mut crc = Crc32::new();
        crc.update(&hostile);
        let digest = crc.finish();
        hostile.extend_from_slice(&digest.to_le_bytes());
        assert_eq!(Signature::decode(&hostile), Err(SignatureError::TooShort));
    }

    #[test]
    fn wire_len_predictor_is_exact() {
        for (len, block) in [
            (0usize, 256u64),
            (1, 256),
            (255, 256),
            (256, 256),
            (257, 256),
            (10_000, 4096),
            (100_000, 700),
            (65_536, 65_536),
        ] {
            let sig = Signature::build(&pseudo(len, 6), Chunking::Fixed(block as usize)).unwrap();
            assert_eq!(
                fixed_signature_wire_len(len as u64, block),
                sig.encoded_len() as u64,
                "{len}B at block {block}"
            );
        }
    }

    #[test]
    fn auto_block_size_fits_the_budget() {
        let auto = BlockSize::Auto { budget: 4096 };
        for source_len in [0u64, 1, 1000, 100_000, 1 << 24, 1 << 32] {
            let block = auto.resolve(source_len);
            assert!(block.is_power_of_two());
            assert!((BlockSize::MIN_AUTO..=BlockSize::MAX_AUTO).contains(&block));
            let wire = fixed_signature_wire_len(source_len, block as u64);
            if block < BlockSize::MAX_AUTO {
                assert!(wire <= 4096, "{source_len}: {wire} over budget at {block}");
                // Smallest such block: one step finer must overflow.
                if block > BlockSize::MIN_AUTO {
                    assert!(fixed_signature_wire_len(source_len, block as u64 / 2) > 4096);
                }
            }
        }
        // Fixed ignores the source length entirely.
        assert_eq!(BlockSize::Fixed(1234).resolve(u64::MAX), 1234);
        assert_eq!(BlockSize::default().resolve(0), DEFAULT_BLOCK_LEN);
        // Impossible budget: clamps to the coarsest rung.
        let starved = BlockSize::Auto { budget: 0 };
        assert_eq!(starved.resolve(u64::MAX), BlockSize::MAX_AUTO);
        assert_eq!(format!("{starved}"), "auto:0");
    }

    #[test]
    fn invalid_chunking_is_rejected() {
        assert!(Signature::build(b"x", Chunking::Fixed(0)).is_err());
        assert!(Signature::build(
            b"x",
            Chunking::Cdc(CdcParams {
                min: 9,
                avg: 5,
                max: 3
            })
        )
        .is_err());
    }
}

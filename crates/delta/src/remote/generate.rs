//! The streaming delta generator: version reader + reference signature
//! → [`DeltaScript`], in constant memory.
//!
//! This is the rsync generator recast to emit this workspace's delta
//! commands. The version file is consumed through a bounded
//! [`StreamWindow`] (one block plus one read-chunk of look-ahead), the
//! reference is represented *only* by its [`Signature`] — the full
//! reference is never resident — and matches become `copy` commands
//! against the reference offsets recorded in the signature. The
//! resulting script is write-ordered and exactly tiling (built through
//! [`ScriptBuilder`]), so it feeds the scratch applier, the in-place
//! converter and the engine unchanged.
//!
//! Two match strategies, picked by the signature's [`Chunking`]:
//!
//! * **Fixed blocks** — the classic two-level rolling match: slide a
//!   block-sized window one byte at a time, maintain the weak checksum
//!   in O(1) per step, and only on a weak hit compute the strong hash
//!   to confirm. Consecutive block matches coalesce into one long copy
//!   (block-granular match extension) inside the builder. At end of
//!   stream the window shrinks byte by byte (the weak checksum also
//!   shrinks in O(1)) so a short final reference block still matches.
//! * **CDC chunks** — chunk the version with the same Gear parameters
//!   the signature used and look whole chunks up by weak-then-strong
//!   hash. Boundaries re-align after insertions/deletions, so matching
//!   never needs to slide.
//!
//! Negative weak lookups — almost every position when files diverge —
//! cost one bit probe in a scaled [`WeakFilter`] before touching the
//! block table (rsync's tag table), and the batched kernel in
//! [`super::scan`] probes eight positions per word pair so miss-runs
//! skip in bulk.

use super::scan::{self, WeakFilter, LANES};
use super::signature::{BlockSignature, Chunking, Signature};
use super::strong::strong_of;
use super::weak::{weak_of, RollingWeak};
use crate::diff::ScriptBuilder;
use crate::script::DeltaScript;
use std::io::Read;

/// Read granularity of the streaming window.
const READ_CHUNK: usize = 64 * 1024;

/// Weak-checksum lookup structure over a signature's blocks.
///
/// A scaled [`WeakFilter`] rejects almost every non-matching window in
/// one probe; survivors binary-search an equal range inside a small
/// bucket of a contiguous key table (bucketed by the top weak bits, so
/// the search never chases the block table through an indirection).
/// Candidates preserve reference order within equal checksums, so the
/// generator deterministically prefers the earliest matching block.
#[derive(Clone, Debug)]
pub struct MatchTable<'a> {
    signature: &'a Signature,
    filter: WeakFilter,
    /// Block indices sorted by (weak, index).
    sorted: Vec<u32>,
    /// `keys[k]` is the weak checksum of block `sorted[k]` — contiguous
    /// and ascending, so equal-range searches touch only this array.
    keys: Vec<u32>,
    /// Bucket boundaries over `keys`: bucket `q` spans
    /// `keys[starts[q]..starts[q + 1]]`, where `q = weak >> bucket_shift`
    /// (monotone in the sort order).
    starts: Vec<u32>,
    bucket_shift: u32,
}

impl<'a> MatchTable<'a> {
    /// Indexes `signature` for matching.
    #[must_use]
    pub fn build(signature: &'a Signature) -> Self {
        let blocks = signature.blocks();
        let mut filter = WeakFilter::with_capacity(blocks.len());
        let mut sorted: Vec<u32> = (0..blocks.len() as u32).collect();
        sorted.sort_by_key(|&i| blocks[i as usize].weak);
        let keys: Vec<u32> = sorted.iter().map(|&i| blocks[i as usize].weak).collect();
        for block in blocks {
            filter.insert(block.weak);
        }
        // ~8 keys per bucket: the equal-range search stays within a
        // couple of cache lines while the boundary table stays small
        // relative to the per-block residency cap.
        let buckets = (blocks.len() / 8)
            .next_power_of_two()
            .clamp(1 << 10, 1 << 16);
        let bucket_shift = 32 - buckets.trailing_zeros();
        let mut starts = vec![0u32; buckets + 1];
        for &k in &keys {
            starts[(k >> bucket_shift) as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        Self {
            signature,
            filter,
            sorted,
            keys,
            starts,
            bucket_shift,
        }
    }

    /// The blocks whose weak checksum equals `weak`, in reference
    /// order. Usually empty, decided by one filter probe.
    #[must_use]
    pub fn candidates(&self, weak: u32) -> &[u32] {
        if !self.filter.contains(weak) {
            return &[];
        }
        let bucket = (weak >> self.bucket_shift) as usize;
        let lo = self.starts[bucket] as usize;
        let hi = self.starts[bucket + 1] as usize;
        // One shared slice: both equal-range bounds come off the same
        // contiguous key run instead of re-deriving the start bound.
        let keys = &self.keys[lo..hi];
        let start = keys.partition_point(|&k| k < weak);
        let end = start + keys[start..].partition_point(|&k| k == weak);
        &self.sorted[lo + start..lo + end]
    }

    /// The presence filter the batched scan kernel probes.
    #[must_use]
    pub fn filter(&self) -> &WeakFilter {
        &self.filter
    }

    /// In-memory footprint of signature + lookup structures — the
    /// generator's whole per-reference residency.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.signature.resident_bytes()
            + self.filter.resident_bytes()
            + (self.sorted.capacity() + self.keys.capacity() + self.starts.capacity()) * 4
    }
}

/// A bounded look-ahead window over a reader.
///
/// Holds at most `window + READ_CHUNK` bytes: the generator's memory is
/// independent of both file sizes. `make_available(n)` refills from the
/// reader and compacts consumed bytes in amortised O(1) per byte.
struct StreamWindow<R: Read> {
    reader: R,
    buf: Vec<u8>,
    start: usize,
    eof: bool,
}

impl<R: Read> StreamWindow<R> {
    fn new(reader: R, window: usize) -> Self {
        Self {
            reader,
            buf: Vec::with_capacity(window + 2 * READ_CHUNK),
            start: 0,
            eof: false,
        }
    }

    /// Bytes currently readable without touching the reader.
    fn available(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Tries to make `n` bytes available; fewer only at end of stream.
    fn make_available(&mut self, n: usize) -> std::io::Result<&[u8]> {
        while !self.eof && self.buf.len() - self.start < n {
            // Compact before growing past the high-water mark.
            if self.start > 0 && self.buf.len() + READ_CHUNK > self.buf.capacity() {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let old_len = self.buf.len();
            self.buf.resize(old_len + READ_CHUNK, 0);
            let got = self.reader.read(&mut self.buf[old_len..])?;
            self.buf.truncate(old_len + got);
            if got == 0 {
                self.eof = true;
            }
        }
        Ok(self.available())
    }

    /// Consumes `n` bytes from the front of the window.
    fn consume(&mut self, n: usize) {
        debug_assert!(self.start + n <= self.buf.len());
        self.start += n;
    }
}

/// Generates a delta script for the version streamed by `version`
/// against the reference described by `signature`.
///
/// Resident memory is the match table (≈ signature size) plus one
/// block-sized window — never the reference, never the whole version.
/// The emitted script is write-ordered, exactly tiling and valid
/// against `signature.source_len()`, so it plugs directly into
/// `apply`, `convert_to_in_place` and the [`Engine`] stages.
///
/// Emits a `remote.diff` span and the `remote.weak_hits` /
/// `remote.strong_matches` / `remote.false_weak` /
/// `remote.matched_bytes` / `remote.literal_bytes` /
/// `remote.scan_batches` / `remote.skip_bytes` counters.
///
/// [`Engine`]: https://docs.rs/ipr-pipeline
///
/// # Errors
///
/// Propagates reader errors; generation itself cannot fail.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::{generate_delta, Chunking, Signature};
///
/// let reference = b"the quick brown fox jumps over the lazy dog".repeat(20);
/// let version = [&reference[..400], b" (annotated)", &reference[400..]].concat();
///
/// let signature = Signature::build(&reference, Chunking::Fixed(64)).unwrap();
/// let script = generate_delta(&signature, &version[..]).unwrap();
///
/// assert_eq!(ipr_delta::apply(&script, &reference).unwrap(), version);
/// // Almost everything matched; only the edit region ships literally.
/// assert!(script.added_bytes() < 200);
/// ```
pub fn generate_delta<R: Read>(signature: &Signature, version: R) -> std::io::Result<DeltaScript> {
    generate(signature, version, true)
}

/// Byte-at-a-time reference implementation of [`generate_delta`].
///
/// Identical to [`generate_delta`] except that the fixed-block path
/// never enters the batched [`scan`] kernel: every window position is
/// probed by one scalar [`RollingWeak::roll`]. The two must emit
/// byte-identical command streams — `tests/remote_scan.rs`, the
/// `remote` fuzz oracle and the `remote_diff` bench all pin the batched
/// path to this one.
///
/// # Errors
///
/// Propagates reader errors; generation itself cannot fail.
pub fn generate_delta_scalar<R: Read>(
    signature: &Signature,
    version: R,
) -> std::io::Result<DeltaScript> {
    generate(signature, version, false)
}

fn generate<R: Read>(
    signature: &Signature,
    version: R,
    batched: bool,
) -> std::io::Result<DeltaScript> {
    let _span = ipr_trace::span("remote.diff");
    let table = MatchTable::build(signature);
    let mut builder = ScriptBuilder::new();
    match signature.chunking() {
        Chunking::Fixed(block_len) => {
            generate_fixed(&table, version, block_len, &mut builder, batched)?;
        }
        Chunking::Cdc(_) => generate_cdc(&table, version, &mut builder)?,
    }
    Ok(builder.finish(signature.source_len()))
}

/// [`generate_delta`] over in-memory bytes (infallible).
///
/// Produces exactly the same script as the streaming form; the `remote`
/// fuzz oracle holds the two equal across read granularities.
#[must_use]
pub fn generate_delta_bytes(signature: &Signature, version: &[u8]) -> DeltaScript {
    generate_delta(signature, version).expect("slice reads cannot fail")
}

/// The fixed-block rolling two-level match.
fn generate_fixed<R: Read>(
    table: &MatchTable<'_>,
    version: R,
    block_len: usize,
    builder: &mut ScriptBuilder,
    batched: bool,
) -> std::io::Result<()> {
    let mut window = StreamWindow::new(version, block_len);
    let mut weak = RollingWeak::new();
    let mut seeded = false;
    let mut stats = MatchStats::default();
    loop {
        // One byte beyond the window so a miss can roll instead of
        // reseeding.
        let avail = window.make_available(block_len + 1)?;
        if avail.is_empty() {
            break;
        }
        let win_len = avail.len().min(block_len);
        if !seeded || weak.len() as usize != win_len {
            weak.reseed(&avail[..win_len]);
            seeded = true;
        }
        if batched && avail.len() >= win_len + LANES {
            // Full window with ≥ one stride of look-ahead: let the
            // batched kernel skip the miss-run in bulk. It stops with
            // the rolling state exactly where the scalar loop would be,
            // so everything below is unchanged.
            let skip = scan::skip_misses(&mut weak, avail, table.filter());
            stats.scan_batches += skip.batches as u64;
            if skip.skipped > 0 {
                builder.push_literal(&avail[..skip.skipped]);
                stats.literal += skip.skipped as u64;
                stats.skip_bytes += skip.skipped as u64;
                window.consume(skip.skipped);
                continue;
            }
        }
        if let Some(block) = confirm(table, weak.digest(), &avail[..win_len], &mut stats) {
            builder.push_copy(block.offset, u64::from(block.len));
            stats.matched += u64::from(block.len);
            window.consume(win_len);
            seeded = false; // reseed over the next window
        } else {
            builder.push_byte(avail[0]);
            stats.literal += 1;
            if avail.len() > win_len {
                // Full window with look-ahead: slide.
                weak.roll(avail[0], avail[win_len]);
            } else {
                // End of stream: the window shrinks instead of sliding,
                // chasing a possible short final reference block.
                weak.shrink_front(avail[0]);
            }
            window.consume(1);
        }
    }
    stats.flush();
    Ok(())
}

/// The CDC whole-chunk match: re-chunk the version with the signature's
/// parameters, then match chunks by weak + strong hash.
fn generate_cdc<R: Read>(
    table: &MatchTable<'_>,
    version: R,
    builder: &mut ScriptBuilder,
) -> std::io::Result<()> {
    let Chunking::Cdc(params) = table.signature.chunking() else {
        unreachable!("caller checked the chunking");
    };
    let mut chunker = super::cdc::Chunker::new(params);
    let mut window = StreamWindow::new(version, params.max);
    let mut stats = MatchStats::default();
    loop {
        let avail = window.make_available(params.max)?;
        if avail.is_empty() {
            break;
        }
        // Find this chunk's cut within the (max-bounded) look-ahead.
        let mut cut = avail.len();
        for (i, &b) in avail.iter().enumerate() {
            if chunker.push(b) {
                cut = i + 1;
                break;
            }
        }
        let chunk = &avail[..cut];
        if let Some(block) = confirm(table, weak_of(chunk), chunk, &mut stats) {
            builder.push_copy(block.offset, u64::from(block.len));
            stats.matched += u64::from(block.len);
        } else {
            builder.push_literal(chunk);
            stats.literal += chunk.len() as u64;
        }
        // A cut found at the end of a partial final window still leaves
        // the chunker mid-chunk state correct: `push` reset it on cut,
        // and an EOF chunk without a cut never recurs.
        window.consume(cut);
    }
    stats.flush();
    Ok(())
}

/// Weak hit → strong confirmation. Returns the earliest matching block.
fn confirm<'a>(
    table: &'a MatchTable<'_>,
    weak: u32,
    window: &[u8],
    stats: &mut MatchStats,
) -> Option<&'a BlockSignature> {
    let candidates = table.candidates(weak);
    if candidates.is_empty() {
        return None;
    }
    stats.weak_hits += 1;
    let blocks = table.signature.blocks();
    let mut strong = None;
    for &i in candidates {
        let block = &blocks[i as usize];
        if block.len as usize != window.len() {
            continue;
        }
        let strong = *strong.get_or_insert_with(|| strong_of(window));
        if block.strong == strong {
            stats.strong_matches += 1;
            return Some(block);
        }
    }
    stats.false_weak += 1;
    None
}

/// Locally accumulated counters, flushed once per generation so the
/// per-byte hot loop never crosses the recorder.
#[derive(Default)]
struct MatchStats {
    weak_hits: u64,
    strong_matches: u64,
    false_weak: u64,
    matched: u64,
    literal: u64,
    scan_batches: u64,
    skip_bytes: u64,
}

impl MatchStats {
    fn flush(&self) {
        ipr_trace::with(|r| {
            r.add("remote.weak_hits", self.weak_hits);
            r.add("remote.strong_matches", self.strong_matches);
            r.add("remote.false_weak", self.false_weak);
            r.add("remote.matched_bytes", self.matched);
            r.add("remote.literal_bytes", self.literal);
            r.add("remote.scan_batches", self.scan_batches);
            r.add("remote.skip_bytes", self.skip_bytes);
        });
    }
}

/// A [`Read`] adaptor that CRC-32s and counts everything passing
/// through — how the CLI computes the delta trailer checksum of a
/// version it never holds in memory.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::CrcReader;
/// use std::io::Read;
///
/// let mut tee = CrcReader::new(&b"stream me"[..]);
/// let mut out = Vec::new();
/// tee.read_to_end(&mut out).unwrap();
/// assert_eq!(tee.crc(), ipr_delta::checksum::crc32(b"stream me"));
/// assert_eq!(tee.bytes_read(), 9);
/// ```
pub struct CrcReader<R> {
    inner: R,
    crc: crate::checksum::Crc32,
    bytes: u64,
}

impl<R: Read> CrcReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            crc: crate::checksum::Crc32::new(),
            bytes: 0,
        }
    }

    /// CRC-32 of the bytes read so far.
    #[must_use]
    pub fn crc(&self) -> u32 {
        self.crc.finish()
    }

    /// Number of bytes read so far.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::remote::CdcParams;

    fn pseudo(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    /// A reader delivering at most `chunk` bytes per call.
    struct Trickle<'a> {
        data: &'a [u8],
        chunk: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.data.len().min(buf.len()).min(self.chunk);
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    fn check(reference: &[u8], version: &[u8], chunking: Chunking) -> DeltaScript {
        let sig = Signature::build(reference, chunking).unwrap();
        let script = generate_delta_bytes(&sig, version);
        assert_eq!(
            apply(&script, reference).unwrap(),
            version,
            "{chunking} failed on {}B -> {}B",
            reference.len(),
            version.len()
        );
        assert!(script.is_write_ordered());
        // The batched scan must emit the scalar scan's command stream.
        let scalar = generate_delta_scalar(&sig, version).unwrap();
        assert_eq!(
            scalar.commands(),
            script.commands(),
            "{chunking} batched scan diverged from scalar"
        );
        // Stream granularity must not change the output.
        for chunk in [1, 7, 1024] {
            let streamed = generate_delta(
                &sig,
                Trickle {
                    data: version,
                    chunk,
                },
            )
            .unwrap();
            assert_eq!(
                streamed.commands(),
                script.commands(),
                "{chunking} differs at read chunk {chunk}"
            );
        }
        script
    }

    fn chunkings() -> [Chunking; 4] {
        [
            Chunking::Fixed(64),
            Chunking::Fixed(1000),
            Chunking::Cdc(CdcParams {
                min: 16,
                avg: 64,
                max: 256,
            }),
            Chunking::Cdc(CdcParams {
                min: 64,
                avg: 512,
                max: 2048,
            }),
        ]
    }

    #[test]
    fn identical_files_are_pure_copies() {
        let data = pseudo(30_000, 1);
        for chunking in chunkings() {
            let script = check(&data, &data, chunking);
            assert_eq!(script.added_bytes(), 0, "{chunking}");
            // All blocks coalesce into one copy.
            assert_eq!(script.len(), 1, "{chunking}");
        }
    }

    #[test]
    fn disjoint_files_are_pure_literals() {
        let reference = pseudo(10_000, 2);
        let version = pseudo(9_000, 3);
        for chunking in chunkings() {
            let script = check(&reference, &version, chunking);
            assert_eq!(script.added_bytes(), 9_000, "{chunking}");
        }
    }

    #[test]
    fn edits_ship_mostly_copies() {
        let reference = pseudo(40_000, 4);
        // Insert near the front, delete in the middle, mutate the tail.
        let mut version = reference.clone();
        version.splice(1000..1000, pseudo(100, 5));
        version.drain(20_000..21_000);
        let n = version.len();
        version[n - 500..].copy_from_slice(&pseudo(500, 6));
        for chunking in chunkings() {
            let script = check(&reference, &version, chunking);
            let max_block = chunking.max_block_len() as u64;
            // Each of the three edit sites can spoil at most a couple of
            // blocks around it.
            assert!(
                script.added_bytes() < 1600 + 8 * max_block,
                "{chunking}: {} literal bytes",
                script.added_bytes()
            );
        }
    }

    #[test]
    fn degenerate_shapes() {
        for chunking in chunkings() {
            check(b"", b"", chunking);
            check(b"", b"brand new content", chunking);
            check(b"all gone", b"", chunking);
            check(b"x", b"x", chunking);
            let run = vec![9u8; 5_000];
            check(&run, &run, chunking);
            check(&run, &pseudo(5_000, 7), chunking);
        }
    }

    #[test]
    fn short_final_block_matches_at_stream_tail() {
        // Reference tail block is 10 bytes; a version sharing the tail
        // must copy it, exercising the shrinking-window path.
        let reference = pseudo(1_034, 8); // 16×64 + 10
        let version = [&pseudo(50, 9)[..], &reference[..]].concat();
        let sig = Signature::build(&reference, Chunking::Fixed(64)).unwrap();
        let script = generate_delta_bytes(&sig, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
        // 50 prefix literals + one coalesced whole-reference copy.
        assert_eq!(script.added_bytes(), 50);
        let copied: u64 = script.copies().iter().map(|c| c.len).sum();
        assert_eq!(copied, 1_034);
    }

    #[test]
    fn match_table_candidates_agree_with_scan() {
        let data = pseudo(8_192, 10);
        let sig = Signature::build(&data, Chunking::Fixed(32)).unwrap();
        let table = MatchTable::build(&sig);
        for block in sig.blocks() {
            let c = table.candidates(block.weak);
            assert!(c
                .iter()
                .any(|&i| sig.blocks()[i as usize].offset == block.offset));
        }
        assert!(table.resident_bytes() > sig.resident_bytes());
    }

    #[test]
    fn candidates_return_the_exact_equal_range() {
        // A reference of repeated pages: many blocks share one weak
        // checksum, and `candidates` must return all of them, in
        // reference order, with nothing else — the equal-range bounds
        // off the hoisted bucket slice.
        let page = pseudo(64, 11);
        let reference: Vec<u8> = page
            .iter()
            .copied()
            .cycle()
            .take(64 * 37)
            .chain(pseudo(64 * 5, 12))
            .collect();
        let sig = Signature::build(&reference, Chunking::Fixed(64)).unwrap();
        let table = MatchTable::build(&sig);
        for weak in sig.blocks().iter().map(|b| b.weak) {
            let expected: Vec<u32> = (0..sig.blocks().len() as u32)
                .filter(|&i| sig.blocks()[i as usize].weak == weak)
                .collect();
            assert_eq!(table.candidates(weak), expected, "weak {weak:#010x}");
        }
        // The repeated page shares one equal range of 37 entries.
        assert_eq!(table.candidates(sig.blocks()[0].weak).len(), 37);
        // An absent checksum that may pass the filter still resolves to
        // an empty range through the same bucket search.
        let absent = (0..u32::MAX)
            .find(|w| sig.blocks().iter().all(|b| b.weak != *w))
            .unwrap();
        assert!(table.candidates(absent).is_empty());
    }
}

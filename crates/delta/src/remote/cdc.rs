//! Content-defined chunking: Gear/FastCDC-style rolling cut-points.
//!
//! Fixed-size blocks are brittle under insertion and deletion: one byte
//! inserted near the front shifts every later block boundary, so no
//! later block matches its signature even though almost all content is
//! unchanged — exactly the failure mode the InDel-updates literature
//! (Wang et al., PAPERS.md) formalises. Content-defined chunking cuts
//! where the *content* says to cut: a rolling hash over the last few
//! dozen bytes declares a boundary wherever its top bits are all zero,
//! so an edit disturbs only the O(1) boundaries whose deciding window
//! overlaps the edit and every later boundary re-aligns.
//!
//! The rolling hash is the Gear construction:
//!
//! ```text
//! h ← (h << 1) + GEAR[byte]
//! ```
//!
//! with a 256-entry table of pseudo-random 64-bit constants (derived
//! deterministically from splitmix64, so chunking — and therefore every
//! signature — is stable across builds and platforms). A byte pushed
//! `j` steps ago contributes `GEAR[b] << j`, fully shifted out after 64
//! steps: the cut decision at a position depends on at most the last
//! **64 bytes** plus the current chunk length. Cuts fire when the top
//! `log2(avg)` bits of `h` are zero (the top bits see the longest
//! history, per FastCDC's analysis), subject to [`CdcParams`] bounds:
//! never before `min` bytes, always by `max` bytes.

/// splitmix64 — the generator behind the [`GEAR`] table.
const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The Gear table: 256 fixed pseudo-random 64-bit constants.
///
/// Part of the wire contract (docs/REMOTE.md): signatures chunked with
/// one build must match versions chunked with another, so this table
/// may never change.
pub const GEAR: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = splitmix64(i as u64);
        i += 1;
    }
    table
};

/// Chunk-size bounds for content-defined chunking.
///
/// `avg` must be a power of two (it becomes a bit mask); cuts fire with
/// probability `1/avg` per byte on random data, so chunk sizes are
/// roughly geometric with mean `min + avg`, clamped to `[min, max]`.
///
/// For the boundary-stability guarantee — an edit perturbs only O(1)
/// boundaries — choose `min ≥ 64`: the Gear hash forgets bytes after 64
/// shifts, so with chunks at least that long a cut decision never
/// reaches back past its own chunk start and two chunkings of the same
/// bytes re-align at the first boundary they share. Smaller `min`
/// still chunks correctly (the fuzz oracle sweeps down to `min = 1`)
/// but re-alignment becomes probabilistic rather than immediate.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::CdcParams;
///
/// let p = CdcParams::default();
/// assert!(p.validate().is_ok());
/// assert!(CdcParams { min: 0, avg: 4096, max: 65536 }.validate().is_err());
/// assert!(CdcParams { min: 64, avg: 100, max: 1024 }.validate().is_err()); // avg not 2^k
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CdcParams {
    /// Minimum chunk length in bytes (cuts are suppressed below this).
    pub min: usize,
    /// Target average chunk length; must be a power of two.
    pub avg: usize,
    /// Maximum chunk length (a cut is forced at this length).
    pub max: usize,
}

impl Default for CdcParams {
    /// 2 KiB / 8 KiB / 64 KiB — the FastCDC-ish defaults.
    fn default() -> Self {
        Self {
            min: 2 * 1024,
            avg: 8 * 1024,
            max: 64 * 1024,
        }
    }
}

impl CdcParams {
    /// Checks the bounds: `0 < min ≤ avg ≤ max` and `avg` a power of
    /// two.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.min == 0 {
            return Err("cdc min chunk length must be positive".into());
        }
        if !self.avg.is_power_of_two() {
            return Err(format!(
                "cdc avg chunk length {} is not a power of two",
                self.avg
            ));
        }
        if !(self.min <= self.avg && self.avg <= self.max) {
            return Err(format!(
                "cdc bounds must satisfy min <= avg <= max, got {}/{}/{}",
                self.min, self.avg, self.max
            ));
        }
        Ok(())
    }

    /// The cut mask: the top `log2(avg)` bits of the Gear hash.
    #[must_use]
    pub fn mask(&self) -> u64 {
        debug_assert!(self.avg.is_power_of_two() && self.avg > 0);
        let bits = self.avg.trailing_zeros();
        if bits == 0 {
            0 // every position cuts (avg == 1)
        } else {
            !0u64 << (64 - bits)
        }
    }
}

/// Incremental content-defined chunker: push bytes, learn where the
/// chunks end.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::{cut_points, CdcParams, Chunker};
///
/// let params = CdcParams { min: 4, avg: 16, max: 64 };
/// let data: Vec<u8> = (0..200u32).map(|i| (i * 37 % 251) as u8).collect();
/// let mut chunker = Chunker::new(params);
/// let mut cuts = Vec::new();
/// for (i, &b) in data.iter().enumerate() {
///     if chunker.push(b) {
///         cuts.push(i + 1);
///     }
/// }
/// if chunker.pending() > 0 {
///     cuts.push(data.len()); // the final partial chunk
/// }
/// assert_eq!(cuts, cut_points(&data, params));
/// ```
#[derive(Clone, Debug)]
pub struct Chunker {
    params: CdcParams,
    mask: u64,
    hash: u64,
    pending: usize,
}

impl Chunker {
    /// Creates a chunker; `params` should be [validated](CdcParams::validate).
    #[must_use]
    pub fn new(params: CdcParams) -> Self {
        Self {
            params,
            mask: params.mask(),
            hash: 0,
            pending: 0,
        }
    }

    /// Feeds one byte; returns `true` when a chunk ends *after* this
    /// byte, resetting for the next chunk.
    #[inline]
    pub fn push(&mut self, byte: u8) -> bool {
        self.hash = (self.hash << 1).wrapping_add(GEAR[byte as usize]);
        self.pending += 1;
        let cut = self.pending >= self.params.max
            || (self.pending >= self.params.min && self.hash & self.mask == 0);
        if cut {
            self.hash = 0;
            self.pending = 0;
        }
        cut
    }

    /// Bytes fed since the last cut (the length of the open chunk).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// Chunk end offsets of `data` (ascending; the final offset is
/// `data.len()` unless `data` is empty).
///
/// # Example
///
/// ```
/// use ipr_delta::remote::{cut_points, CdcParams};
///
/// let params = CdcParams { min: 2, avg: 8, max: 32 };
/// let data = b"content-defined chunking survives insertions".repeat(4);
/// let cuts = cut_points(&data, params);
/// assert_eq!(*cuts.last().unwrap(), data.len());
/// for w in cuts.windows(2) {
///     assert!(w[1] - w[0] <= 32);
/// }
/// assert!(cut_points(b"", params).is_empty());
/// ```
#[must_use]
pub fn cut_points(data: &[u8], params: CdcParams) -> Vec<usize> {
    let mut chunker = Chunker::new(params);
    let mut cuts = Vec::with_capacity(data.len() / (params.min + params.avg).max(1) + 1);
    for (i, &b) in data.iter().enumerate() {
        if chunker.push(b) {
            cuts.push(i + 1);
        }
    }
    if chunker.pending() > 0 {
        cuts.push(data.len());
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = splitmix64(x);
                x as u8
            })
            .collect()
    }

    #[test]
    fn bounds_are_respected() {
        let params = CdcParams {
            min: 8,
            avg: 32,
            max: 128,
        };
        let data = pseudo(10_000, 1);
        let cuts = cut_points(&data, params);
        let mut prev = 0;
        for (i, &c) in cuts.iter().enumerate() {
            let len = c - prev;
            assert!(len <= params.max);
            // Only the final chunk may undershoot `min`.
            if i + 1 < cuts.len() {
                assert!(len >= params.min, "chunk {i} has {len} bytes");
            }
            prev = c;
        }
        assert_eq!(prev, data.len());
    }

    #[test]
    fn average_is_in_the_right_regime() {
        let params = CdcParams {
            min: 16,
            avg: 64,
            max: 256,
        };
        let data = pseudo(200_000, 2);
        let cuts = cut_points(&data, params);
        let mean = data.len() / cuts.len();
        // Geometric mean ≈ min + avg = 80; accept a wide band.
        assert!((40..=160).contains(&mean), "mean chunk {mean}");
    }

    #[test]
    fn identical_content_chunks_identically_at_any_offset() {
        // The resynchronisation property that makes CDC worth having:
        // the same bytes preceded by different prefixes produce the
        // same cut-points once the sequences share one boundary. Needs
        // `min ≥ 64` so a cut decision never reaches back past its own
        // chunk start (the Gear window is 64 bytes).
        let params = CdcParams {
            min: 64,
            avg: 256,
            max: 1024,
        };
        let shared = pseudo(40_000, 3);
        let a: Vec<u8> = [pseudo(100, 4), shared.clone()].concat();
        let b: Vec<u8> = [pseudo(333, 5), shared.clone()].concat();
        let cuts_a: Vec<i64> = cut_points(&a, params)
            .iter()
            .map(|&c| c as i64 - 100)
            .collect();
        let cuts_b: Vec<i64> = cut_points(&b, params)
            .iter()
            .map(|&c| c as i64 - 333)
            .collect();
        // Compare the tails well past both prefixes + window + a few
        // chunks of resynchronisation slack.
        let resync = 8 * params.max as i64;
        let tail_a: Vec<i64> = cuts_a.iter().copied().filter(|&c| c > resync).collect();
        let tail_b: Vec<i64> = cuts_b.iter().copied().filter(|&c| c > resync).collect();
        assert_eq!(tail_a, tail_b);
        assert!(tail_a.len() > 50, "test corpus too small to be meaningful");
    }

    #[test]
    fn gear_table_is_pinned() {
        // The table is wire contract; a few spot values guard against
        // accidental regeneration with different constants.
        assert_eq!(GEAR[0], splitmix64(0));
        assert_eq!(GEAR[255], splitmix64(255));
        let distinct: std::collections::BTreeSet<u64> = GEAR.iter().copied().collect();
        assert_eq!(distinct.len(), 256);
    }
}

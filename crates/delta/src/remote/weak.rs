//! The weak 32-bit rolling block checksum (Adler/Fletcher family).
//!
//! This is the first level of the rsync-style two-level match: a
//! checksum cheap enough to maintain over a window sliding one byte at
//! a time (three adds and two subtracts per step), strong enough to
//! reject almost every non-matching window before the strong hash is
//! consulted. Following rsync, the window `x_k .. x_l` is summarised by
//!
//! ```text
//! a(k, l) = Σ x_i                 (mod 2^16)
//! b(k, l) = Σ (l - i + 1) · x_i   (mod 2^16)
//! s(k, l) = a(k, l) + 2^16 · b(k, l)
//! ```
//!
//! and both components update in O(1) when the window slides
//! ([`RollingWeak::roll`]) or loses its front byte
//! ([`RollingWeak::shrink_front`], used for the shrinking tail window
//! at end of stream). All arithmetic is wrapping `u32`; because
//! 2^16 divides 2^32, masking to 16 bits at digest time yields the
//! exact mod-2^16 sums.

/// Rolling Adler32-style weak checksum over a byte window.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::{weak_of, RollingWeak};
///
/// let data = b"the quick brown fox jumps over the lazy dog";
/// let mut w = RollingWeak::seeded(&data[0..8]);
/// for i in 1..=data.len() - 8 {
///     w.roll(data[i - 1], data[i + 7]);
///     assert_eq!(w.digest(), weak_of(&data[i..i + 8]));
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RollingWeak {
    a: u32,
    b: u32,
    len: u32,
}

impl RollingWeak {
    /// An empty-window checksum (digest 0).
    #[must_use]
    pub fn new() -> Self {
        Self { a: 0, b: 0, len: 0 }
    }

    /// Seeds the checksum over `window`.
    #[must_use]
    pub fn seeded(window: &[u8]) -> Self {
        let mut w = Self::new();
        w.reseed(window);
        w
    }

    /// Replaces the window contents with `window`.
    ///
    /// Consumes eight bytes per word load: appending a word of bytes
    /// with running prefix sums `S(1)..S(8)` to state `(a, b)` gives
    /// `a' = a + S(8)` and `b' = b + 8a + Σₖ S(k)` — the same closed
    /// form the batched scan kernel uses to advance the pair, exact
    /// under wrapping `u32` arithmetic.
    pub fn reseed(&mut self, window: &[u8]) {
        use crate::diff::kernel;
        let mut a = 0u32;
        let mut b = 0u32;
        let mut chunks = window.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let sums = kernel::prefix_sums(kernel::load_le(chunk));
            let weighted: u32 = sums[1..].iter().sum();
            b = b.wrapping_add(a.wrapping_mul(8)).wrapping_add(weighted);
            a = a.wrapping_add(sums[8]);
        }
        for &x in chunks.remainder() {
            a = a.wrapping_add(u32::from(x));
            b = b.wrapping_add(a);
        }
        self.a = a;
        self.b = b;
        self.len = window.len() as u32;
    }

    /// Current window length in bytes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slides the window one byte: `out` leaves at the front, `entering`
    /// arrives at the back. The window length is unchanged.
    #[inline]
    pub fn roll(&mut self, out: u8, entering: u8) {
        let out = u32::from(out);
        self.a = self.a.wrapping_add(u32::from(entering)).wrapping_sub(out);
        self.b = self
            .b
            .wrapping_add(self.a)
            .wrapping_sub(self.len.wrapping_mul(out));
    }

    /// Removes the front byte without adding one at the back, shrinking
    /// the window by one (the end-of-stream tail walk).
    #[inline]
    pub fn shrink_front(&mut self, out: u8) {
        debug_assert!(self.len > 0, "cannot shrink an empty window");
        let out = u32::from(out);
        // The front element carries weight `len`; the survivors' weights
        // (len - i) are already correct for the shortened window.
        self.b = self.b.wrapping_sub(self.len.wrapping_mul(out));
        self.a = self.a.wrapping_sub(out);
        self.len -= 1;
    }

    /// The 32-bit digest `a + 2^16·b` of the current window.
    #[inline]
    #[must_use]
    pub fn digest(&self) -> u32 {
        (self.a & 0xffff) | (self.b << 16)
    }

    /// The raw `(a, b)` accumulator pair. The batched scan kernel
    /// advances these out-of-line and writes them back with
    /// [`RollingWeak::set_parts`]; the window length is untouched.
    #[inline]
    #[must_use]
    pub(crate) fn parts(&self) -> (u32, u32) {
        (self.a, self.b)
    }

    /// Replaces the accumulator pair without changing the window length.
    #[inline]
    pub(crate) fn set_parts(&mut self, a: u32, b: u32) {
        self.a = a;
        self.b = b;
    }
}

impl Default for RollingWeak {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot weak checksum of `data`.
///
/// # Example
///
/// ```
/// assert_eq!(ipr_delta::remote::weak_of(b""), 0);
/// assert_ne!(ipr_delta::remote::weak_of(b"ab"), ipr_delta::remote::weak_of(b"ba"));
/// ```
#[must_use]
pub fn weak_of(data: &[u8]) -> u32 {
    RollingWeak::seeded(data).digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_matches_reseed_everywhere() {
        let data: Vec<u8> = (0..997u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for window in [1usize, 2, 7, 16, 64] {
            let mut w = RollingWeak::seeded(&data[..window]);
            for i in 1..=data.len() - window {
                w.roll(data[i - 1], data[i + window - 1]);
                assert_eq!(
                    w.digest(),
                    weak_of(&data[i..i + window]),
                    "window {window} at {i}"
                );
            }
        }
    }

    #[test]
    fn shrink_front_matches_reseed() {
        let data = b"a shrinking tail window at end of stream";
        let mut w = RollingWeak::seeded(data);
        for i in 1..data.len() {
            w.shrink_front(data[i - 1]);
            assert_eq!(w.digest(), weak_of(&data[i..]), "at {i}");
            assert_eq!(w.len() as usize, data.len() - i);
        }
    }

    #[test]
    fn reseed_matches_byte_at_a_time() {
        // The word-batched reseed must agree with the definitional
        // byte loop at every length phase around word boundaries.
        let data: Vec<u8> = (0..1040u32)
            .map(|i| (i.wrapping_mul(193) >> 2) as u8)
            .collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 1000] {
            let (mut a, mut b) = (0u32, 0u32);
            for &x in &data[..len] {
                a = a.wrapping_add(u32::from(x));
                b = b.wrapping_add(a);
            }
            let w = RollingWeak::seeded(&data[..len]);
            assert_eq!(w.digest(), (a & 0xffff) | (b << 16), "len {len}");
        }
    }

    #[test]
    fn order_sensitive() {
        // Fletcher's b-component distinguishes permutations a plain sum
        // cannot.
        assert_ne!(weak_of(b"abcd"), weak_of(b"dcba"));
    }
}

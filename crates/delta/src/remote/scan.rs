//! The batched weak-scan kernel: advance the rolling checksum eight
//! positions per word pair and skip miss-runs in bulk.
//!
//! The fixed-block generator spends almost all of its time in divergent
//! regions, where every window position probes the presence filter,
//! misses, and slides one byte. The scalar loop pays a load, a roll
//! (three adds, two subtracts, one multiply) and a filter probe per
//! byte. This kernel restates the roll as a *closed form over a batch*:
//! sliding the window `k ≤ 8` positions from state `(a, b)` with window
//! length `L`, where `S_out(k)` / `S_in(k)` are prefix sums of the
//! bytes leaving the front and entering the back,
//!
//! ```text
//! a(k) = a + S_in(k) − S_out(k)
//! b(k) = b + k·a + V(k) − L·S_out(k),   V(k) = Σ_{j=1..k} (S_in(j) − S_out(j))
//! ```
//!
//! Both identities are exact under wrapping `u32` arithmetic (they are
//! the scalar recurrence unrolled and regrouped; wrapping addition is
//! associative and commutative, and `L·S_out(k)` distributes over the
//! per-step `L·out_j` terms). One iteration therefore costs two word
//! loads ([`kernel::load_le`]), two prefix-sum evaluations
//! ([`kernel::prefix_sums`]) and eight filter probes — and when all
//! eight lanes miss, the state jumps the whole stride in O(1) and the
//! skipped bytes are later emitted as one bulk literal.
//!
//! Because [`skip_misses`] stops *at* the first filter hit with exactly
//! the state the scalar loop would carry there, and skipped positions
//! are precisely those the scalar loop would have probed negative, the
//! generator's emitted command stream is byte-identical to the scalar
//! scan (pinned by `tests/remote_scan.rs` and the `remote` fuzz
//! oracle).
//!
//! [`WeakFilter`] is the other half of the speedup: the old 2^16-bit
//! filter over `weak & 0xffff` saturates on small-block signatures
//! (65 536 blocks fill ~63% of it), letting most divergent positions
//! through to the candidate table. The filter here scales with the
//! block count (~32 bits per block) and indexes by a multiplicative mix
//! of the *full* 32-bit digest, keeping the false-positive rate low at
//! every signature size.

use super::weak::RollingWeak;
use crate::diff::kernel;

/// Positions advanced per batch iteration — one word of leaving bytes
/// and one word of entering bytes.
pub const LANES: usize = 8;

/// A scaled presence filter over weak block checksums.
///
/// One bit per slot, sized at ~32 bits per signature block (clamped to
/// [2^16, 2^22] bits) and indexed by a Fibonacci multiplicative mix of
/// the full 32-bit digest. Purely conservative: [`WeakFilter::contains`]
/// never returns `false` for an inserted value, so a filter miss proves
/// the checksum is absent while a hit merely forwards to the exact
/// candidate search.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::WeakFilter;
///
/// let mut filter = WeakFilter::with_capacity(2);
/// filter.insert(0xdead_beef);
/// assert!(filter.contains(0xdead_beef));
/// ```
#[derive(Clone, Debug)]
pub struct WeakFilter {
    bits: Vec<u64>,
    shift: u32,
}

impl WeakFilter {
    /// Smallest filter size in bits (the old fixed-size filter).
    pub const MIN_BITS: usize = 1 << 16;
    /// Largest filter size in bits (512 KiB of filter).
    pub const MAX_BITS: usize = 1 << 22;

    /// An empty filter sized for `blocks` entries.
    #[must_use]
    pub fn with_capacity(blocks: usize) -> Self {
        let bits = blocks
            .saturating_mul(32)
            .next_power_of_two()
            .clamp(Self::MIN_BITS, Self::MAX_BITS);
        Self {
            bits: vec![0u64; bits / 64],
            shift: 32 - bits.trailing_zeros(),
        }
    }

    #[inline]
    fn slot(&self, weak: u32) -> (usize, u64) {
        // Fibonacci mixing spreads the whole digest over the top bits;
        // indexing by `weak & mask` would ignore the b-component half.
        let idx = (weak.wrapping_mul(0x9e37_79b1) >> self.shift) as usize;
        (idx >> 6, 1u64 << (idx & 63))
    }

    /// Marks `weak` present.
    pub fn insert(&mut self, weak: u32) {
        let (word, bit) = self.slot(weak);
        self.bits[word] |= bit;
    }

    /// Whether `weak` may be present (exact for inserted values, false
    /// positives possible, false negatives impossible).
    #[inline]
    #[must_use]
    pub fn contains(&self, weak: u32) -> bool {
        let (word, bit) = self.slot(weak);
        self.bits[word] & bit != 0
    }

    /// Heap footprint of the filter in bytes.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }
}

/// Outcome of one [`skip_misses`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSkip {
    /// Bytes skipped: every window position in `0..skipped` probed the
    /// filter negative, so the scalar loop would have emitted each as a
    /// literal.
    pub skipped: usize,
    /// Number of eight-lane batch iterations evaluated.
    pub batches: usize,
}

/// Slides `weak` (seeded over `data[..weak.len()]`) forward in
/// eight-position batches while the filter keeps missing.
///
/// Returns how far the window front advanced; `weak` is left in exactly
/// the state the scalar [`RollingWeak::roll`] loop would carry at that
/// position. Stops at the first position whose digest hits `filter`
/// (the caller then runs the exact candidate search there) or when
/// fewer than `weak.len() + LANES` look-ahead bytes remain in `data`
/// (the caller falls back to scalar rolls near the stream tail).
///
/// # Example
///
/// ```
/// use ipr_delta::remote::{skip_misses, weak_of, RollingWeak, WeakFilter};
///
/// let data: Vec<u8> = (0..200u8).collect();
/// let filter = WeakFilter::with_capacity(4); // empty: everything misses
/// let mut weak = RollingWeak::seeded(&data[..16]);
/// let skip = skip_misses(&mut weak, &data, &filter);
/// assert!(skip.skipped >= data.len() - 16 - 8);
/// assert_eq!(weak.digest(), weak_of(&data[skip.skipped..skip.skipped + 16]));
/// ```
#[must_use]
pub fn skip_misses(weak: &mut RollingWeak, data: &[u8], filter: &WeakFilter) -> BatchSkip {
    let window = weak.len() as usize;
    debug_assert!(window > 0 && window <= data.len());
    let Some(limit) = data.len().checked_sub(window + LANES) else {
        return BatchSkip::default();
    };
    let (mut a, mut b) = weak.parts();
    let wlen = window as u32;
    let mut p = 0usize;
    let mut batches = 0usize;
    while p <= limit {
        batches += 1;
        let leaving = kernel::prefix_sums(kernel::load_le(&data[p..p + LANES]));
        let entering = kernel::prefix_sums(kernel::load_le(&data[p + window..p + window + LANES]));
        // `weighted` walks V(m); at lane m it holds V(m) before the
        // update below rolls it to V(m + 1).
        let mut weighted = 0u32;
        let mut mask = 0u32;
        for m in 0..LANES {
            let am = a.wrapping_add(entering[m]).wrapping_sub(leaving[m]);
            let bm = b
                .wrapping_add(a.wrapping_mul(m as u32))
                .wrapping_add(weighted)
                .wrapping_sub(wlen.wrapping_mul(leaving[m]));
            let digest = (am & 0xffff) | (bm << 16);
            mask |= u32::from(filter.contains(digest)) << m;
            weighted = weighted
                .wrapping_add(entering[m + 1])
                .wrapping_sub(leaving[m + 1]);
        }
        let hit = mask.trailing_zeros() as usize;
        if hit >= LANES {
            // All eight lanes missed: jump the whole stride in O(1).
            b = b
                .wrapping_add(a.wrapping_mul(LANES as u32))
                .wrapping_add(weighted)
                .wrapping_sub(wlen.wrapping_mul(leaving[LANES]));
            a = a.wrapping_add(entering[LANES]).wrapping_sub(leaving[LANES]);
            p += LANES;
            continue;
        }
        // Land the state exactly on the first hit lane.
        let mut v = 0u32;
        for k in 1..=hit {
            v = v.wrapping_add(entering[k]).wrapping_sub(leaving[k]);
        }
        b = b
            .wrapping_add(a.wrapping_mul(hit as u32))
            .wrapping_add(v)
            .wrapping_sub(wlen.wrapping_mul(leaving[hit]));
        a = a.wrapping_add(entering[hit]).wrapping_sub(leaving[hit]);
        p += hit;
        break;
    }
    weak.set_parts(a, b);
    BatchSkip {
        skipped: p,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::weak_of;

    fn pseudo(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn filter_has_no_false_negatives() {
        for blocks in [0usize, 1, 100, 70_000] {
            let mut filter = WeakFilter::with_capacity(blocks);
            let values: Vec<u32> = (0..1000u32)
                .map(|i| i.wrapping_mul(2_654_435_761))
                .collect();
            for &v in &values {
                filter.insert(v);
            }
            for &v in &values {
                assert!(filter.contains(v), "{v:#010x} lost at {blocks} blocks");
            }
        }
    }

    #[test]
    fn filter_scales_with_block_count() {
        assert_eq!(
            WeakFilter::with_capacity(0).resident_bytes(),
            WeakFilter::MIN_BITS / 8
        );
        assert_eq!(
            WeakFilter::with_capacity(1 << 16).resident_bytes(),
            (32 << 16) / 8
        );
        assert_eq!(
            WeakFilter::with_capacity(1 << 30).resident_bytes(),
            WeakFilter::MAX_BITS / 8
        );
    }

    #[test]
    fn empty_filter_skips_to_the_runway_end() {
        let data = pseudo(4_096, 1);
        for window in [1usize, 5, 8, 64, 1000] {
            let filter = WeakFilter::with_capacity(8);
            let mut weak = RollingWeak::seeded(&data[..window]);
            let skip = skip_misses(&mut weak, &data, &filter);
            // Whole-stride jumps stop within one stride of the runway end.
            let limit = data.len() - window - LANES;
            assert!(skip.skipped > limit.saturating_sub(LANES) && skip.skipped <= limit + LANES);
            assert_eq!(skip.batches, skip.skipped.div_ceil(LANES));
            assert_eq!(
                weak.digest(),
                weak_of(&data[skip.skipped..skip.skipped + window]),
                "window {window}"
            );
            assert_eq!(weak.len() as usize, window);
        }
    }

    #[test]
    fn stops_exactly_on_the_first_filter_hit() {
        let data = pseudo(2_000, 2);
        let window = 32usize;
        // Plant hits at positions that land on every lane phase of a
        // batch, including lane 0 (no progress) and mid-stride stops.
        for target in [0usize, 1, 3, 7, 8, 9, 15, 100, 1023] {
            let mut filter = WeakFilter::with_capacity(8);
            filter.insert(weak_of(&data[target..target + window]));
            let mut weak = RollingWeak::seeded(&data[..window]);
            let skip = skip_misses(&mut weak, &data, &filter);
            assert!(
                skip.skipped <= target,
                "skipped past the planted hit at {target}"
            );
            // Every skipped position truly missed the filter, and the
            // stop position (when short of the runway end) is a hit.
            for q in 0..skip.skipped {
                assert!(
                    !filter.contains(weak_of(&data[q..q + window])),
                    "skipped a filter hit at {q} (target {target})"
                );
            }
            assert!(
                filter.contains(weak.digest()),
                "stop at {} is no hit",
                skip.skipped
            );
            assert_eq!(
                weak.digest(),
                weak_of(&data[skip.skipped..skip.skipped + window])
            );
        }
    }

    #[test]
    fn short_runway_is_a_no_op() {
        let data = pseudo(64, 3);
        let filter = WeakFilter::with_capacity(8);
        // window + LANES exceeds the data: nothing to batch over.
        let mut weak = RollingWeak::seeded(&data[..60]);
        let before = weak;
        assert_eq!(skip_misses(&mut weak, &data, &filter), BatchSkip::default());
        assert_eq!(weak, before);
    }

    #[test]
    fn state_matches_scalar_rolls_at_every_stop() {
        // Adversarial filter: every 4th digest present, forcing stops at
        // many lane phases; resume from each stop with one scalar roll.
        let data = pseudo(3_000, 4);
        let window = 16usize;
        let mut filter = WeakFilter::with_capacity(8);
        for q in 0..data.len() - window {
            let w = weak_of(&data[q..q + window]);
            if q % 4 == 0 {
                filter.insert(w);
            }
        }
        let mut weak = RollingWeak::seeded(&data[..window]);
        let mut pos = 0usize;
        while pos + window + LANES <= data.len() {
            let skip = skip_misses(&mut weak, &data[pos..], &filter);
            pos += skip.skipped;
            assert_eq!(weak.digest(), weak_of(&data[pos..pos + window]), "at {pos}");
            if pos + window < data.len() {
                // The scalar generator's next step: roll one byte.
                weak.roll(data[pos], data[pos + window]);
                pos += 1;
                assert_eq!(weak.digest(), weak_of(&data[pos..pos + window]));
            } else {
                break;
            }
        }
    }
}

//! The strong 128-bit block hash — the second level of the two-level
//! match.
//!
//! When a window's [weak checksum](super::weak) collides with a
//! signature entry, the generator cannot compare bytes — the reference
//! lives on the other side of the wire. It compares this hash instead,
//! so the hash *is* the match decision and its collision resistance
//! bounds the probability of a corrupted reconstruction. Two
//! independent 64-bit multiply–rotate lanes over 8-byte words give a
//! 128-bit digest: for blocks that were not crafted against the hash,
//! the chance of any false block match in an `n`-block signature is
//! about `n² / 2^128` — negligible at any realistic scale. The hash is
//! **not** cryptographic; an adversary who controls both files can
//! engineer collisions, so integrity against hostile inputs must come
//! from the delta's CRC trailer, not from block matching.
//!
//! The word loop reuses [`kernel::load_le`](crate::diff::kernel::load_le)
//! — the same wide-word load discipline as the differ match kernels —
//! so hashing consumes eight bytes per multiply instead of one.

use crate::diff::kernel;

const K0: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / φ
const K1: u64 = 0xc2b2_ae3d_27d4_eb4f;
const K2: u64 = 0x1656_67b1_9e37_79f9;

/// Finalizer: the 64-bit xorshift-multiply avalanche (splitmix64 tail).
#[inline]
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// 128-bit strong hash of `data`.
///
/// Deterministic across platforms (little-endian word loads, no
/// pointer-dependent state); the length is folded into the initial
/// state so a block and its zero-padded extension differ.
///
/// # Example
///
/// ```
/// use ipr_delta::remote::strong_of;
///
/// assert_ne!(strong_of(b"block a"), strong_of(b"block b"));
/// assert_ne!(strong_of(b""), strong_of(b"\0"));
/// ```
#[must_use]
pub fn strong_of(data: &[u8]) -> u128 {
    let len = data.len() as u64;
    let mut h0 = K0 ^ len.wrapping_mul(K2);
    let mut h1 = K1 ^ len.rotate_left(32);
    let mut words = data.chunks_exact(8);
    for w in words.by_ref() {
        let w = kernel::load_le(w);
        h0 = (h0 ^ w).wrapping_mul(K2).rotate_left(29);
        h1 = (h1.rotate_left(31) ^ w.wrapping_mul(K0)).wrapping_mul(K1);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = 0u64;
        for (i, &b) in rem.iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        h0 = (h0 ^ tail).wrapping_mul(K2).rotate_left(29);
        h1 = (h1.rotate_left(31) ^ tail.wrapping_mul(K0)).wrapping_mul(K1);
    }
    let lo = avalanche(h0 ^ h1.rotate_left(32));
    let hi = avalanche(h1 ^ h0.rotate_left(32));
    (u128::from(hi) << 64) | u128::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_blocks_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for b in 0..=255u8 {
            assert!(seen.insert(strong_of(&[b])));
        }
    }

    #[test]
    fn sensitive_to_every_position() {
        let base = vec![0u8; 100];
        let h = strong_of(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] = 1;
            assert_ne!(
                strong_of(&flipped),
                h,
                "position {i} did not change the hash"
            );
        }
    }

    #[test]
    fn length_is_folded_in() {
        // Prefixes of a constant run all hash differently even though
        // every processed word is identical.
        let run = [7u8; 64];
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..=run.len() {
            assert!(seen.insert(strong_of(&run[..n])), "length {n} collided");
        }
    }

    #[test]
    fn no_collisions_over_random_ish_corpus() {
        // Smoke-level birthday check: 40k distinct short inputs.
        let mut seen = std::collections::BTreeSet::new();
        let mut x = 0x1234_5678_u64;
        for _ in 0..40_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = (x >> 56) as usize % 24;
            let bytes: Vec<u8> = (0..len).map(|i| (x >> (i % 8)) as u8).collect();
            seen.insert(strong_of(&bytes));
        }
        // Many generated inputs repeat; the set only has to show that
        // distinct inputs did not collapse. Re-derive distinct inputs.
        let mut inputs = std::collections::BTreeSet::new();
        let mut x = 0x1234_5678_u64;
        for _ in 0..40_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = (x >> 56) as usize % 24;
            let bytes: Vec<u8> = (0..len).map(|i| (x >> (i % 8)) as u8).collect();
            inputs.insert(bytes);
        }
        assert_eq!(seen.len(), inputs.len());
    }
}

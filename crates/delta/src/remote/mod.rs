//! Remote differencing: block signatures, streaming delta generation
//! and content-defined chunking.
//!
//! Every differ in [`crate::diff`] needs both files in local memory —
//! fine on the build server, impossible in the fleet-update scenario
//! the paper targets, where the reference lives on the device and the
//! new version on a server. This module is the rsync-style answer
//! (docs/REMOTE.md is the full wire/protocol spec):
//!
//! 1. **Sign** — the reference holder splits its file into blocks
//!    ([`Chunking::Fixed`] or content-defined [`Chunking::Cdc`]) and
//!    sends a [`Signature`]: per block, a weak 32-bit rolling checksum
//!    ([`weak_of`]) and a strong 128-bit hash ([`strong_of`]) — ~21
//!    bytes per block instead of the block itself.
//! 2. **Stream-diff** — [`generate_delta`] consumes the new version
//!    through any [`Read`](std::io::Read) against that signature and
//!    emits an ordinary [`DeltaScript`](crate::DeltaScript): resident
//!    memory is the signature plus one block-sized window, never either
//!    file. Weak hits are confirmed by the strong hash before a `copy`
//!    is emitted; everything else ships as coalesced literals.
//! 3. **Apply** — the script is write-ordered and exactly tiling, so
//!    it flows unchanged into scratch apply, in-place conversion
//!    (`convert_to_in_place`) and the engine/device stack.
//!
//! # Example
//!
//! ```
//! use ipr_delta::remote::{generate_delta, CdcParams, Chunking, Signature};
//!
//! // Pseudo-random content: Gear cuts need entropy to fire (on
//! // constant or short-period data every chunk hits `max` and CDC
//! // degenerates to fixed-size blocks, which do not resync).
//! let mut x = 0x2545_f491_4f6c_dd1du64;
//! let reference: Vec<u8> = (0..20_000)
//!     .map(|_| {
//!         x ^= x << 13;
//!         x ^= x >> 7;
//!         x ^= x << 17;
//!         (x >> 56) as u8
//!     })
//!     .collect();
//! let mut version = reference.clone();
//! version.splice(5_000..5_000, b"a small insertion".to_vec());
//!
//! // Device side: sign the reference (content-defined chunks).
//! let chunking = Chunking::Cdc(CdcParams { min: 64, avg: 256, max: 1024 });
//! let wire = Signature::build(&reference, chunking).unwrap().encode();
//!
//! // Server side: stream the new version against the signature.
//! let signature = Signature::decode(&wire).unwrap();
//! let script = generate_delta(&signature, &version[..]).unwrap();
//!
//! // The delta reconstructs the version; the insertion shifted every
//! // byte after it, yet only the edited chunk ships literally.
//! assert_eq!(ipr_delta::apply(&script, &reference).unwrap(), version);
//! assert!(script.added_bytes() < 2 * 1024);
//! ```
//!
//! Trace names (`remote.sign` / `remote.diff` spans, `remote.*`
//! counters) are part of the docs/OBSERVABILITY.md contract.

pub mod cdc;
mod generate;
pub mod scan;
mod signature;
mod strong;
mod weak;

pub use cdc::{cut_points, CdcParams, Chunker, GEAR};
pub use generate::{
    generate_delta, generate_delta_bytes, generate_delta_scalar, CrcReader, MatchTable,
};
pub use scan::{skip_misses, BatchSkip, WeakFilter};
pub use signature::{
    fixed_signature_wire_len, BlockSignature, BlockSize, Chunking, Signature, SignatureError,
    DEFAULT_BLOCK_LEN, DEFAULT_SIGNATURE_BUDGET, SIGNATURE_MAGIC,
};
pub use strong::strong_of;
pub use weak::{weak_of, RollingWeak};

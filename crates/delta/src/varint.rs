//! LEB128 variable-length integer encoding used by the codecs.

use std::fmt;

/// Error returned when decoding a malformed varint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarintError {
    /// Input ended before the terminating byte.
    Truncated,
    /// The encoding exceeds 10 bytes or overflows 64 bits.
    Overflow,
}

impl fmt::Display for VarintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "varint truncated"),
            VarintError::Overflow => write!(f, "varint overflows u64"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends the LEB128 encoding of `value` to `out`.
///
/// # Example
///
/// ```
/// let mut buf = Vec::new();
/// ipr_delta::varint::encode(300, &mut buf);
/// assert_eq!(buf, [0xac, 0x02]);
/// ```
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`encode`] emits for `value`.
#[must_use]
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

/// Decodes a LEB128 value from the front of `input`, returning the value
/// and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`VarintError::Truncated`] if `input` ends mid-varint and
/// [`VarintError::Overflow`] if the value does not fit in a `u64`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ipr_delta::varint::VarintError> {
/// let (value, used) = ipr_delta::varint::decode(&[0xac, 0x02, 0xff])?;
/// assert_eq!((value, used), (300, 2));
/// # Ok(())
/// # }
/// ```
pub fn decode(input: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate().take(10) {
        let chunk = u64::from(byte & 0x7f);
        if i == 9 && byte > 0x01 {
            return Err(VarintError::Overflow);
        }
        value |= chunk << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    if input.len() >= 10 {
        Err(VarintError::Overflow)
    } else {
        Err(VarintError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode(v, &mut buf);
            assert_eq!(buf.len(), encoded_len(v), "len mismatch for {v}");
            let (decoded, used) = decode(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn encoded_len_boundaries() {
        assert_eq!(encoded_len(0), 1);
        assert_eq!(encoded_len(0x7f), 1);
        assert_eq!(encoded_len(0x80), 2);
        assert_eq!(encoded_len(0x3fff), 2);
        assert_eq!(encoded_len(0x4000), 3);
        assert_eq!(encoded_len(u64::MAX), 10);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let (v, used) = decode(&[0x05, 0xaa, 0xbb]).unwrap();
        assert_eq!((v, used), (5, 1));
    }

    #[test]
    fn truncated_input() {
        assert_eq!(decode(&[]), Err(VarintError::Truncated));
        assert_eq!(decode(&[0x80]), Err(VarintError::Truncated));
        assert_eq!(decode(&[0xff, 0xff]), Err(VarintError::Truncated));
    }

    #[test]
    fn overflow_detected() {
        // 11 continuation bytes can never be a valid u64.
        let bad = [0xff; 11];
        assert_eq!(decode(&bad), Err(VarintError::Overflow));
        // 10 bytes with too-large final byte.
        let mut too_big = [0xff; 10];
        too_big[9] = 0x02;
        assert_eq!(decode(&too_big), Err(VarintError::Overflow));
        // u64::MAX itself is fine.
        let mut max = [0xff; 10];
        max[9] = 0x01;
        assert_eq!(decode(&max), Ok((u64::MAX, 10)));
    }
}

//! Delta-compression substrate for in-place reconstruction.
//!
//! This crate implements everything the Burns & Long PODC '98 paper assumes
//! from the delta-compression literature: the copy/add command model (§3),
//! differencing engines that produce delta scripts, codeword codecs in both
//! the offset-free and explicit-write-offset encodings the paper compares,
//! and scratch-space reconstruction.
//!
//! The in-place conversion algorithm itself lives in the `ipr-core` crate;
//! it consumes and produces this crate's [`DeltaScript`].
//!
//! # Example
//!
//! ```
//! use ipr_delta::diff::{Differ, GreedyDiffer};
//! use ipr_delta::codec::{decode, encode_checked, Format};
//! use ipr_delta::apply_verified;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reference = b"In the beginning there was a reference file.".to_vec();
//! let version = b"In the end there was a version file.".to_vec();
//!
//! let script = GreedyDiffer::new(4).diff(&reference, &version);
//! let wire = encode_checked(&script, Format::Ordered, &version)?;
//!
//! let decoded = decode(&wire)?;
//! let rebuilt = apply_verified(&decoded.script, &reference, decoded.target_crc.unwrap())?;
//! assert_eq!(rebuilt, version);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod command;
mod compose;
mod pool;
mod script;

pub mod checksum;
pub mod codec;
pub mod diff;
pub mod remote;
pub mod stats;
pub mod varint;

pub use apply::{apply, apply_verified, ApplyError};
pub use command::{Add, Command, Copy};
pub use compose::{compose, compose_chain, ComposeError};
pub use pool::ScriptPool;
pub use script::{DeltaScript, ScriptError};

//! Size accounting for delta scripts and encoded delta files.
//!
//! These are the quantities Table 1 of the paper is built from:
//! compression (delta size over version size), encoding loss (explicit
//! write offsets) and cycle loss (copies converted to adds).

use crate::codec::{self, EncodeError, Format};
use crate::script::DeltaScript;
use std::fmt;

/// Command-level statistics of a [`DeltaScript`].
///
/// # Example
///
/// ```
/// use ipr_delta::{Command, DeltaScript};
/// use ipr_delta::stats::ScriptStats;
///
/// # fn main() -> Result<(), ipr_delta::ScriptError> {
/// let script = DeltaScript::new(8, 12, vec![
///     Command::copy(0, 0, 8),
///     Command::add(8, vec![0; 4]),
/// ])?;
/// let stats = ScriptStats::of(&script);
/// assert_eq!(stats.copied_bytes, 8);
/// assert_eq!(stats.added_bytes, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScriptStats {
    /// Number of copy commands.
    pub copy_count: usize,
    /// Number of add commands.
    pub add_count: usize,
    /// Bytes materialized by copies.
    pub copied_bytes: u64,
    /// Literal bytes carried by adds.
    pub added_bytes: u64,
}

impl ScriptStats {
    /// Computes statistics for `script`.
    #[must_use]
    pub fn of(script: &DeltaScript) -> Self {
        Self {
            copy_count: script.copy_count(),
            add_count: script.add_count(),
            copied_bytes: script.copied_bytes(),
            added_bytes: script.added_bytes(),
        }
    }

    /// Total commands.
    #[must_use]
    pub fn command_count(&self) -> usize {
        self.copy_count + self.add_count
    }

    /// Fraction of version bytes carried literally in the delta,
    /// `0.0..=1.0`; `0.0` for an empty version.
    #[must_use]
    pub fn literal_fraction(&self) -> f64 {
        let total = self.copied_bytes + self.added_bytes;
        if total == 0 {
            0.0
        } else {
            self.added_bytes as f64 / total as f64
        }
    }
}

impl fmt::Display for ScriptStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} copies ({} B), {} adds ({} B)",
            self.copy_count, self.copied_bytes, self.add_count, self.added_bytes
        )
    }
}

/// Compression achieved by one encoded delta relative to the version file.
///
/// # Example
///
/// ```
/// use ipr_delta::stats::Compression;
///
/// let c = Compression { delta_size: 153, version_size: 1000 };
/// assert!((c.ratio() - 0.153).abs() < 1e-12); // the paper's 15.3%
/// assert!(c.factor() > 6.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Compression {
    /// Size of the encoded delta file in bytes.
    pub delta_size: u64,
    /// Size of the version (new) file in bytes.
    pub version_size: u64,
}

impl Compression {
    /// Measures the encoded size of `script` under `format`.
    ///
    /// # Errors
    ///
    /// Propagates [`EncodeError`] from the codec.
    pub fn measure(script: &DeltaScript, format: Format) -> Result<Self, EncodeError> {
        Ok(Self {
            delta_size: codec::encoded_size(script, format)?,
            version_size: script.target_len(),
        })
    }

    /// Delta size as a fraction of the version size (the paper reports
    /// "compressed to 15.3% of original size"). Returns `f64::INFINITY`
    /// for an empty version with a non-empty delta.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.version_size == 0 {
            if self.delta_size == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.delta_size as f64 / self.version_size as f64
        }
    }

    /// Compression factor (version size over delta size); the paper quotes
    /// "a factor of 4 to 10".
    #[must_use]
    pub fn factor(&self) -> f64 {
        if self.delta_size == 0 {
            f64::INFINITY
        } else {
            self.version_size as f64 / self.delta_size as f64
        }
    }
}

impl fmt::Display for Compression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B / {} B = {:.1}%",
            self.delta_size,
            self.version_size,
            self.ratio() * 100.0
        )
    }
}

/// Aggregates compression ratios over a corpus, weighted by version size
/// (total delta bytes over total version bytes), the way the paper's
/// corpus-wide percentages are computed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CorpusCompression {
    total_delta: u64,
    total_version: u64,
    pairs: usize,
}

impl CorpusCompression {
    /// Creates an empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one measured pair.
    pub fn record(&mut self, c: Compression) {
        self.total_delta += c.delta_size;
        self.total_version += c.version_size;
        self.pairs += 1;
    }

    /// Number of pairs recorded.
    #[must_use]
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Total delta bytes over total version bytes.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.total_version == 0 {
            0.0
        } else {
            self.total_delta as f64 / self.total_version as f64
        }
    }

    /// Total encoded delta bytes.
    #[must_use]
    pub fn delta_bytes(&self) -> u64 {
        self.total_delta
    }

    /// Total version bytes.
    #[must_use]
    pub fn version_bytes(&self) -> u64 {
        self.total_version
    }
}

impl Extend<Compression> for CorpusCompression {
    fn extend<I: IntoIterator<Item = Compression>>(&mut self, iter: I) {
        for c in iter {
            self.record(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;

    fn script() -> DeltaScript {
        DeltaScript::new(
            100,
            60,
            vec![Command::copy(0, 0, 40), Command::add(40, vec![1; 20])],
        )
        .unwrap()
    }

    #[test]
    fn script_stats() {
        let st = ScriptStats::of(&script());
        assert_eq!(st.copy_count, 1);
        assert_eq!(st.add_count, 1);
        assert_eq!(st.copied_bytes, 40);
        assert_eq!(st.added_bytes, 20);
        assert_eq!(st.command_count(), 2);
        assert!((st.literal_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!st.to_string().is_empty());
    }

    #[test]
    fn compression_ratio_and_factor() {
        let c = Compression {
            delta_size: 15,
            version_size: 100,
        };
        assert!((c.ratio() - 0.15).abs() < 1e-12);
        assert!((c.factor() - 100.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn compression_degenerate_cases() {
        assert_eq!(
            Compression {
                delta_size: 0,
                version_size: 0
            }
            .ratio(),
            0.0
        );
        assert_eq!(
            Compression {
                delta_size: 5,
                version_size: 0
            }
            .ratio(),
            f64::INFINITY
        );
        assert_eq!(
            Compression {
                delta_size: 0,
                version_size: 5
            }
            .factor(),
            f64::INFINITY
        );
    }

    #[test]
    fn measure_uses_codec() {
        let c = Compression::measure(&script(), Format::Ordered).unwrap();
        assert!(c.delta_size > 20); // at least the literal bytes + header
        assert!(c.delta_size < 60); // compresses the copy
    }

    #[test]
    fn corpus_aggregate_weights_by_size() {
        let mut agg = CorpusCompression::new();
        agg.record(Compression {
            delta_size: 10,
            version_size: 100,
        });
        agg.record(Compression {
            delta_size: 90,
            version_size: 100,
        });
        assert_eq!(agg.pairs(), 2);
        assert!((agg.ratio() - 0.5).abs() < 1e-12);
        assert_eq!(agg.delta_bytes(), 100);
        assert_eq!(agg.version_bytes(), 200);
    }

    #[test]
    fn corpus_extend() {
        let mut agg = CorpusCompression::new();
        agg.extend([
            Compression {
                delta_size: 1,
                version_size: 10,
            },
            Compression {
                delta_size: 2,
                version_size: 10,
            },
        ]);
        assert_eq!(agg.pairs(), 2);
    }
}

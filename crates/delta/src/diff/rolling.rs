//! Karp–Rabin rolling hash over fixed-size byte windows ("footprints" in
//! the differencing literature).

/// Multiplier for the polynomial hash; an arbitrary odd 64-bit constant
/// with good bit dispersion (the FNV-1a prime).
const BASE: u64 = 0x0000_0100_0000_01b3;

/// A Karp–Rabin hash of a sliding window of fixed width.
///
/// The hash of window bytes `b_0 … b_{w-1}` is
/// `Σ b_i · BASE^(w-1-i) (mod 2^64)`; sliding one byte right updates it in
/// O(1).
///
/// # Example
///
/// ```
/// use ipr_delta::diff::RollingHash;
///
/// let data = b"abcdefgh";
/// let mut h = RollingHash::new(&data[0..4]);
/// h.roll(data[0], data[4]);
/// assert_eq!(h.hash(), RollingHash::new(&data[1..5]).hash());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RollingHash {
    hash: u64,
    /// BASE^(w-1), used to remove the outgoing byte.
    msb_weight: u64,
    /// Window width in bytes; [`RollingHash::reseed`] windows must match.
    width: usize,
}

impl RollingHash {
    /// Hashes the initial window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is empty.
    #[must_use]
    pub fn new(window: &[u8]) -> Self {
        assert!(!window.is_empty(), "rolling hash window must be non-empty");
        let mut hash = 0u64;
        for &b in window {
            hash = hash.wrapping_mul(BASE).wrapping_add(u64::from(b));
        }
        let mut msb_weight = 1u64;
        for _ in 1..window.len() {
            msb_weight = msb_weight.wrapping_mul(BASE);
        }
        Self {
            hash,
            msb_weight,
            width: window.len(),
        }
    }

    /// Re-initializes the hash over a new window of the *same width*,
    /// reusing the precomputed `BASE^(w-1)` weight.
    ///
    /// This is the fast re-seed after a long copy: catching up byte by
    /// byte costs one [`RollingHash::roll`] per skipped byte — O(copy
    /// length) — while re-seeding costs O(window width) regardless of
    /// how far the scan jumped.
    ///
    /// # Panics
    ///
    /// Panics if `window.len()` differs from the width the hash was
    /// created with.
    pub fn reseed(&mut self, window: &[u8]) {
        assert_eq!(
            window.len(),
            self.width,
            "reseed window width must match the original window"
        );
        let mut hash = 0u64;
        for &b in window {
            hash = hash.wrapping_mul(BASE).wrapping_add(u64::from(b));
        }
        self.hash = hash;
    }

    /// Current hash value.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Slides the window one byte: removes `outgoing` (the leftmost byte)
    /// and appends `incoming`.
    pub fn roll(&mut self, outgoing: u8, incoming: u8) {
        self.hash = self
            .hash
            .wrapping_sub(u64::from(outgoing).wrapping_mul(self.msb_weight))
            .wrapping_mul(BASE)
            .wrapping_add(u64::from(incoming));
    }
}

/// One-shot hash of `window`, equal to `RollingHash::new(window).hash()`.
///
/// # Panics
///
/// Panics if `window` is empty.
#[must_use]
pub fn hash_of(window: &[u8]) -> u64 {
    RollingHash::new(window).hash()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_direct_everywhere() {
        let data: Vec<u8> = (0..200u32).map(|i| (i * 31 % 251) as u8).collect();
        let w = 16;
        let mut h = RollingHash::new(&data[0..w]);
        for i in 1..=data.len() - w {
            h.roll(data[i - 1], data[i + w - 1]);
            assert_eq!(h.hash(), hash_of(&data[i..i + w]), "window {i}");
        }
    }

    #[test]
    fn window_of_one() {
        let mut h = RollingHash::new(b"a");
        assert_eq!(h.hash(), u64::from(b'a'));
        h.roll(b'a', b'z');
        assert_eq!(h.hash(), u64::from(b'z'));
    }

    #[test]
    fn distinct_windows_usually_differ() {
        assert_ne!(hash_of(b"abcdabcd"), hash_of(b"abcdabce"));
        assert_ne!(hash_of(b"aaaaaaab"), hash_of(b"baaaaaaa"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        let _ = hash_of(b"");
    }

    #[test]
    fn reseed_equals_fresh_hash() {
        let data: Vec<u8> = (0..100u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut h = RollingHash::new(&data[0..16]);
        h.reseed(&data[40..56]);
        assert_eq!(h.hash(), hash_of(&data[40..56]));
        // Rolling continues correctly from the reseeded window.
        h.roll(data[40], data[56]);
        assert_eq!(h.hash(), hash_of(&data[41..57]));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn reseed_width_mismatch_panics() {
        let mut h = RollingHash::new(b"abcdefgh");
        h.reseed(b"abc");
    }
}

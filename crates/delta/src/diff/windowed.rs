//! Windowed differencing: bounded-memory deltas for large files.
//!
//! A full-index differ holds state proportional to the reference size.
//! [`WindowedDiffer`] caps that: the version file is processed in
//! fixed-size windows, each differenced against the *corresponding*
//! reference region plus a configurable margin on both sides. Memory is
//! bounded by `window + 2·margin` regardless of file size, at the cost of
//! missing matches that moved farther than the margin — the standard
//! trade of windowed delta compressors.

use super::{Differ, ScriptBuilder};
use crate::command::Command;
use crate::script::DeltaScript;

/// Bounded-memory differencing by fixed windows.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{Differ, GreedyDiffer, WindowedDiffer};
/// use ipr_delta::apply;
///
/// let differ = WindowedDiffer::new(GreedyDiffer::default(), 64 * 1024, 16 * 1024);
/// let reference = vec![7u8; 500_000];
/// let mut version = reference.clone();
/// version[250_000] = 8;
/// let script = differ.diff(&reference, &version);
/// assert_eq!(apply(&script, &reference).unwrap(), version);
/// ```
#[derive(Clone, Debug)]
pub struct WindowedDiffer<D> {
    inner: D,
    window: usize,
    margin: usize,
}

impl<D: Differ> WindowedDiffer<D> {
    /// Wraps `inner`, processing `window` version bytes at a time against
    /// the aligned reference region widened by `margin` bytes on each
    /// side.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(inner: D, window: usize, margin: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            inner,
            window,
            margin,
        }
    }

    /// The configured window size in bytes.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configured margin in bytes.
    #[must_use]
    pub fn margin(&self) -> usize {
        self.margin
    }
}

impl<D: Differ> Differ for WindowedDiffer<D> {
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript {
        let mut out = ScriptBuilder::new();
        let mut start = 0usize;
        while start < version.len() {
            let end = (start + self.window).min(version.len());
            // The aligned reference region, widened by the margin. When
            // the files have different lengths, scale the alignment so the
            // last version window still sees the reference tail.
            let (ref_start, ref_end) = if reference.is_empty() {
                (0, 0)
            } else {
                let scale = reference.len() as f64 / version.len() as f64;
                let mid = ((start as f64) * scale) as usize;
                let ref_start = mid.saturating_sub(self.margin);
                let ref_end = (((end as f64) * scale) as usize + self.margin).min(reference.len());
                (ref_start.min(reference.len()), ref_end)
            };
            let window_script = self
                .inner
                .diff(&reference[ref_start..ref_end], &version[start..end]);
            for cmd in window_script.commands() {
                match cmd {
                    Command::Copy(c) => out.push_copy(c.from + ref_start as u64, c.len),
                    Command::Add(a) => out.push_literal(&a.data),
                }
            }
            start = end;
        }
        out.finish(reference.len() as u64)
    }

    fn name(&self) -> &'static str {
        "windowed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::diff::{GreedyDiffer, OnePassDiffer};

    fn differ() -> WindowedDiffer<GreedyDiffer> {
        WindowedDiffer::new(GreedyDiffer::default(), 16 * 1024, 4 * 1024)
    }

    fn check(reference: &[u8], version: &[u8]) -> DeltaScript {
        let script = differ().diff(reference, version);
        assert_eq!(apply(&script, reference).unwrap(), version);
        script
    }

    #[test]
    fn identical_large_files() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Aperiodic data, so matches land at their aligned positions and
        // window copies coalesce.
        let data: Vec<u8> = (0..200_000).map(|_| rng.random()).collect();
        let script = check(&data, &data);
        assert_eq!(script.added_bytes(), 0);
        // One copy per window at most, coalesced where contiguous.
        assert!(
            script.copy_count() <= data.len() / (16 * 1024) + 1,
            "{} copies",
            script.copy_count()
        );
    }

    #[test]
    fn point_edits_stay_local() {
        let reference: Vec<u8> = (0..150_000u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut version = reference.clone();
        for pos in [5_000usize, 70_000, 140_000] {
            version[pos] ^= 0xff;
        }
        let script = check(&reference, &version);
        assert!(script.added_bytes() < 64, "{}", script.added_bytes());
    }

    #[test]
    fn moves_within_margin_found() {
        let reference: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(2_000); // shift well inside the 4 KiB margin
        let script = check(&reference, &version);
        assert!(
            (script.added_bytes() as f64) < 0.1 * version.len() as f64,
            "{}",
            script.added_bytes()
        );
    }

    #[test]
    fn moves_beyond_margin_still_correct_but_larger() {
        let reference: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(50_000); // far beyond the margin
        let windowed = differ().diff(&reference, &version);
        assert_eq!(apply(&windowed, &reference).unwrap(), version);
        let full = GreedyDiffer::default().diff(&reference, &version);
        assert!(
            windowed.added_bytes() >= full.added_bytes(),
            "windowed cannot beat the full-index differ"
        );
    }

    #[test]
    fn shrinking_and_growing_files() {
        let reference: Vec<u8> = (0..80_000u32).map(|i| (i * 3 % 251) as u8).collect();
        let mut grown = reference.clone();
        grown.extend((0..30_000u32).map(|i| (i * 91 % 256) as u8));
        check(&reference, &grown);
        let shrunk = reference[..40_000].to_vec();
        check(&reference, &shrunk);
        check(&[], &reference);
        check(&reference, &[]);
    }

    #[test]
    fn wraps_any_inner_differ() {
        let d = WindowedDiffer::new(OnePassDiffer::default(), 8 * 1024, 1024);
        assert_eq!(d.window(), 8 * 1024);
        assert_eq!(d.margin(), 1024);
        assert_eq!(d.name(), "windowed");
        let reference = vec![5u8; 50_000];
        let mut version = reference.clone();
        version[25_000] = 6;
        let script = d.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
    }

    #[test]
    fn window_smaller_than_seed_degrades_gracefully() {
        let d = WindowedDiffer::new(GreedyDiffer::default(), 4, 2);
        let reference = b"abcdefghijklmnop".to_vec();
        let version = b"abcdefghijklmnopqrst".to_vec();
        let script = d.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = WindowedDiffer::new(GreedyDiffer::default(), 0, 0);
    }
}

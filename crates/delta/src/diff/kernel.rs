//! Shared match kernels: the byte-comparison primitives every differ's
//! inner loop is built from.
//!
//! The three differ families spend most of their time answering the same
//! three questions — *does this seed window match?*, *how far does the
//! match extend forward?*, *how far does it extend backward?* — and the
//! natural byte-at-a-time loops answer them one compare-and-branch per
//! byte. The kernels here answer them a word at a time: load `u64`
//! chunks from both sides, XOR them, and read the first differing byte
//! off `trailing_zeros` (forward) or `leading_zeros` (backward). On a
//! match-heavy workload this turns 8 compare/branch pairs into one
//! load/load/xor/test, the same shape of win as rsync's block compare
//! and zstd's `ZSTD_count`.
//!
//! # Why word-wide compares are safe at buffer tails
//!
//! All kernels take plain slices and never read past them: the word loop
//! runs over `chunks_exact(8)` / `rchunks_exact(8)` of the *shorter*
//! slice and the sub-word remainder is compared bytewise. There is no
//! padding, no alignment requirement (Rust's `from_le_bytes` on a
//! 8-byte slice compiles to an unaligned load on every target we care
//! about) and no `unsafe`. A caller holding `&reference[c..]` can pass
//! the slice tail directly; the kernel stops at the end on its own.
//!
//! Byte order: `from_le_bytes` maps the *lowest-indexed* byte of a chunk
//! to the least significant byte of the word, so the first differing
//! byte in slice order is the lowest non-zero byte of the XOR —
//! `trailing_zeros() / 8`. For backward scans over `rchunks_exact` the
//! highest-indexed byte is most significant, so the count of matching
//! bytes from the end is `leading_zeros() / 8`.

/// Length of the common prefix of `a` and `b`, in bytes.
///
/// Equivalent to the naive loop
/// `while i < min && a[i] == b[i] { i += 1 }` — asserted against it by
/// `tests/kernel_equiv.rs` on arbitrary slices — but compares eight
/// bytes per iteration.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::kernel::common_prefix;
///
/// assert_eq!(common_prefix(b"delta compression", b"delta compaction"), 10);
/// assert_eq!(common_prefix(b"abc", b"abcdef"), 3);
/// assert_eq!(common_prefix(b"", b"anything"), 0);
/// ```
#[inline]
#[must_use]
pub fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut i = 0usize;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        let x = load_le(wa) ^ load_le(wb);
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    for (&pa, &pb) in ca.remainder().iter().zip(cb.remainder()) {
        if pa != pb {
            break;
        }
        i += 1;
    }
    i
}

/// Length of the common suffix of `a` and `b`, in bytes.
///
/// Equivalent to the naive loop comparing `a[a.len() - 1 - i]` against
/// `b[b.len() - 1 - i]` — the correcting differ's backward extension —
/// but compares eight bytes per iteration.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::kernel::common_suffix;
///
/// assert_eq!(common_suffix(b"in-place reconstruction", b"deconstruction"), 13);
/// assert_eq!(common_suffix(b"xyz", b"z"), 1);
/// assert_eq!(common_suffix(b"ab", b"cd"), 0);
/// ```
#[inline]
#[must_use]
pub fn common_suffix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[a.len() - n..], &b[b.len() - n..]);
    let mut i = 0usize;
    let mut ca = a.rchunks_exact(8);
    let mut cb = b.rchunks_exact(8);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        let x = load_le(wa) ^ load_le(wb);
        if x != 0 {
            return i + (x.leading_zeros() / 8) as usize;
        }
        i += 8;
    }
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let mut j = 0usize;
    while j < ra.len() && ra[ra.len() - 1 - j] == rb[rb.len() - 1 - j] {
        j += 1;
    }
    i + j
}

/// Whether `a` and `b` are byte-identical windows of the same length —
/// the seed-verification kernel.
///
/// Slices of unequal length are never equal. Compares a word at a time
/// with an early exit on the first differing word, so a failing verify
/// (the common case when probing hash candidates) costs one or two
/// loads instead of a `memcmp` call.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::kernel::windows_eq;
///
/// assert!(windows_eq(b"0123456789abcdef", b"0123456789abcdef"));
/// assert!(!windows_eq(b"0123456789abcdef", b"0123456789abcdeX"));
/// assert!(!windows_eq(b"abc", b"abcd"));
/// ```
#[inline]
#[must_use]
pub fn windows_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        if load_le(wa) != load_le(wb) {
            return false;
        }
    }
    ca.remainder() == cb.remainder()
}

/// Loads one little-endian `u64` from an 8-byte chunk.
///
/// This is the word-load discipline every kernel above is built on;
/// [`crate::remote`]'s strong block hash reuses it so signature hashing
/// consumes eight bytes per multiply instead of one.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::kernel::load_le;
///
/// assert_eq!(load_le(&[1, 0, 0, 0, 0, 0, 0, 0]), 1);
/// ```
///
/// # Panics
///
/// Panics if `chunk` is not exactly 8 bytes (callers iterate
/// `chunks_exact(8)`, which guarantees it).
#[inline]
#[must_use]
pub fn load_le(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
}

/// Running byte sums of one little-endian word: `sums[k]` is the sum of
/// the first `k` bytes in slice order (`sums[0] == 0`, `sums[8]` is the
/// whole-word byte sum).
///
/// This is the building block of the multi-byte Adler/Fletcher roll in
/// [`crate::remote::scan`]: both checksum components advance `k`
/// positions in closed form from the prefix sums of the bytes leaving
/// and entering the window, so the weak scan consumes eight bytes per
/// word load instead of one per roll. The maximum value is `8 × 255`,
/// far below `u32`, so the sums are exact.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::kernel::{load_le, prefix_sums};
///
/// let sums = prefix_sums(load_le(&[1, 2, 3, 4, 5, 6, 7, 8]));
/// assert_eq!(sums[0], 0);
/// assert_eq!(sums[3], 1 + 2 + 3);
/// assert_eq!(sums[8], 36);
/// ```
#[inline]
#[must_use]
pub fn prefix_sums(word: u64) -> [u32; 9] {
    let mut sums = [0u32; 9];
    let mut acc = 0u32;
    for k in 0..8 {
        acc += ((word >> (8 * k)) & 0xff) as u32;
        sums[k + 1] = acc;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_prefix(a: &[u8], b: &[u8]) -> usize {
        let n = a.len().min(b.len());
        let mut i = 0;
        while i < n && a[i] == b[i] {
            i += 1;
        }
        i
    }

    fn naive_suffix(a: &[u8], b: &[u8]) -> usize {
        let n = a.len().min(b.len());
        let mut i = 0;
        while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
            i += 1;
        }
        i
    }

    #[test]
    fn prefix_at_every_mismatch_position() {
        // A mismatch planted at every offset of a 40-byte window crosses
        // word boundaries, the sub-word remainder, and both ends.
        let a: Vec<u8> = (0..40u8).collect();
        for pos in 0..a.len() {
            let mut b = a.clone();
            b[pos] ^= 0x80;
            assert_eq!(common_prefix(&a, &b), pos, "mismatch at {pos}");
            assert_eq!(common_suffix(&a, &b), a.len() - 1 - pos);
            assert!(!windows_eq(&a, &b));
        }
    }

    #[test]
    fn unequal_lengths_clamp_to_shorter() {
        let long: Vec<u8> = (0..100u8).collect();
        for cut in [0, 1, 7, 8, 9, 63, 64, 65, 99] {
            let short = &long[..cut];
            assert_eq!(common_prefix(&long, short), cut);
            assert_eq!(common_prefix(short, &long), cut);
            assert_eq!(common_suffix(&long[100 - cut..], &long), cut);
        }
    }

    #[test]
    fn identical_slices_match_fully() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 100] {
            let a: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            assert_eq!(common_prefix(&a, &a), len);
            assert_eq!(common_suffix(&a, &a), len);
            assert!(windows_eq(&a, &a));
        }
    }

    #[test]
    fn matches_naive_on_unaligned_subslices() {
        // Offsets that put the word loop at every alignment phase.
        let base: Vec<u8> = (0..256usize).map(|i| (i * 31 % 253) as u8).collect();
        let mut tweaked = base.clone();
        tweaked[200] ^= 1;
        for off_a in [0usize, 1, 3, 5, 7] {
            for off_b in [0usize, 2, 4, 6] {
                let (a, b) = (&base[off_a..], &tweaked[off_b..]);
                assert_eq!(common_prefix(a, b), naive_prefix(a, b));
                assert_eq!(common_suffix(a, b), naive_suffix(a, b));
                assert_eq!(windows_eq(a, b), a == b);
            }
        }
    }

    #[test]
    fn windows_eq_rejects_length_mismatch() {
        assert!(!windows_eq(b"12345678", b"1234567"));
        assert!(windows_eq(b"", b""));
    }

    #[test]
    fn prefix_sums_match_naive() {
        let bytes = [255u8, 0, 17, 255, 1, 2, 254, 128];
        let sums = prefix_sums(load_le(&bytes));
        for k in 0..=8 {
            let naive: u32 = bytes[..k].iter().map(|&x| u32::from(x)).sum();
            assert_eq!(sums[k], naive, "prefix {k}");
        }
    }
}

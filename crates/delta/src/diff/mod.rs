//! Differencing engines: produce a [`DeltaScript`] encoding a version file
//! against a reference file.
//!
//! Three engines cover the trade-off the paper's lineage explores:
//!
//! * [`GreedyDiffer`] — indexes every reference offset and picks the
//!   longest match at each version position. Better compression, more
//!   time and memory (after Reichenberger '91).
//! * [`OnePassDiffer`] — a fixed-size footprint table and a single forward
//!   scan: linear time, constant space (after Burns & Long '97, the
//!   algorithm the paper pairs with in-place conversion).
//! * [`CorrectingDiffer`] — one-pass costs with two candidates per slot
//!   and backward match extension.
//!
//! All emit scripts in write order whose commands exactly tile the
//! version file, so `apply(diff(r, v), r) == v` always holds.
//!
//! Each engine also implements [`IndexedDiffer`], splitting differencing
//! into *build a shared reference index* and *scan a version range
//! against it*. [`ParallelDiffer`] exploits that split: the index is
//! built once (construction itself sharded across scoped threads), the
//! version scan is partitioned into chunks diffed concurrently, and a
//! serial stitcher re-extends matches across chunk seams. Output is
//! deterministic — identical for every thread count, including 1.
//! Per-call working storage lives in a reusable [`DiffScratch`] arena,
//! so steady-state diffing performs no table or buffer allocations.
//!
//! All engines share the [`kernel`] match primitives — word-wide seed
//! verification and forward/backward match extension — so the inner
//! loops compare eight bytes per instruction instead of one.

mod correcting;
mod greedy;
pub mod kernel;
mod onepass;
mod parallel;
mod rolling;
mod scratch;
mod windowed;

pub use correcting::CorrectingDiffer;
pub use greedy::{GreedyDiffer, GreedyIndex};
pub use onepass::OnePassDiffer;
pub use parallel::{FootprintIndex, IndexedDiffer, ParallelDiffer, DEFAULT_CHUNK_BYTES};
pub use rolling::{hash_of, RollingHash};
pub use scratch::{DiffScratch, GreedyShard, IndexScratch, Seg};
pub use windowed::WindowedDiffer;

use crate::command::Command;
use crate::script::DeltaScript;

/// A differencing algorithm.
///
/// Implementations must produce a write-ordered script that reconstructs
/// `version` from `reference` (invariant I2 of DESIGN.md).
pub trait Differ {
    /// Computes a delta script encoding `version` against `reference`.
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Incrementally builds a write-ordered, exactly-tiling [`DeltaScript`].
///
/// Literal bytes pushed back-to-back coalesce into a single add command;
/// back-to-back copies from contiguous reference ranges coalesce into a
/// single copy.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::ScriptBuilder;
///
/// let mut b = ScriptBuilder::new();
/// b.push_copy(10, 4);
/// b.push_literal(b"ab");
/// b.push_literal(b"cd"); // coalesces with the previous literal
/// let script = b.finish(100);
/// assert_eq!(script.len(), 2);
/// assert_eq!(script.target_len(), 8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ScriptBuilder {
    commands: Vec<Command>,
    pending: Vec<u8>,
    cursor: u64,
    /// Cleared byte vectors to draw add payloads from before touching the
    /// allocator (filled when the builder is created from a
    /// [`ScriptPool`](crate::ScriptPool)).
    spare: Vec<Vec<u8>>,
}

impl ScriptBuilder {
    /// Creates an empty builder positioned at version offset 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder whose command and payload storage is drawn from
    /// `pool`, so building allocates nothing once the pool is warm.
    ///
    /// Finish with [`ScriptBuilder::finish_into_pool`] to hand unused
    /// storage back.
    pub(crate) fn from_pool(pool: &mut crate::ScriptPool) -> Self {
        let commands = pool.take_commands();
        let mut spare = pool.take_bytes_stash();
        // Ascending by capacity: `flush_pending` pops, so add payloads are
        // drawn largest-first. Arbitrary handout order never converges —
        // some small vector keeps landing on a big add and regrowing —
        // while rank-ordered handout reaches the workload's high-water
        // mark once and then allocates nothing.
        spare.sort_unstable_by_key(Vec::capacity);
        let pending = spare.pop().unwrap_or_default();
        Self {
            commands,
            pending,
            cursor: 0,
            spare,
        }
    }

    /// Current version-file offset (total bytes emitted so far).
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor + self.pending.len() as u64
    }

    /// Appends literal bytes at the cursor.
    pub fn push_literal(&mut self, data: &[u8]) {
        self.pending.extend_from_slice(data);
    }

    /// Appends one literal byte at the cursor.
    pub fn push_byte(&mut self, byte: u8) {
        self.pending.push(byte);
    }

    /// Number of literal bytes pending (not yet flushed into an add
    /// command). These are the bytes a backward-extending matcher may
    /// still reclaim.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Discards the last `n` pending literal bytes, handing the cursor
    /// back so a copy command can cover them instead (backward match
    /// extension).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`ScriptBuilder::pending_len`] — only
    /// uncommitted literals can be reclaimed.
    pub fn reclaim_pending(&mut self, n: usize) {
        assert!(
            n <= self.pending.len(),
            "cannot reclaim {n} bytes, only {} pending",
            self.pending.len()
        );
        self.pending.truncate(self.pending.len() - n);
    }

    /// Appends a copy of `len` reference bytes starting at `from`.
    ///
    /// Zero-length copies are ignored.
    pub fn push_copy(&mut self, from: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.flush_pending();
        // Coalesce with a directly preceding contiguous copy.
        if let Some(Command::Copy(prev)) = self.commands.last_mut() {
            if prev.from + prev.len == from && prev.to + prev.len == self.cursor {
                prev.len += len;
                self.cursor += len;
                return;
            }
        }
        self.commands.push(Command::copy(from, self.cursor, len));
        self.cursor += len;
    }

    fn flush_pending(&mut self) {
        if !self.pending.is_empty() {
            let next = self.spare.pop().unwrap_or_default();
            let data = std::mem::replace(&mut self.pending, next);
            let len = data.len() as u64;
            self.commands.push(Command::add(self.cursor, data));
            self.cursor += len;
        }
    }

    /// Finishes the script against a `source_len`-byte reference.
    ///
    /// The target length is the number of bytes pushed.
    ///
    /// # Panics
    ///
    /// Panics if the pushed commands do not validate (impossible unless a
    /// copy read out of the reference bounds).
    #[must_use]
    pub fn finish(mut self, source_len: u64) -> DeltaScript {
        self.flush_pending();
        let target_len = self.cursor;
        DeltaScript::new(source_len, target_len, self.commands)
            .expect("builder emits tiling write-ordered commands")
    }

    /// Like [`ScriptBuilder::finish`], but returns the builder's unused
    /// spare storage to `pool` first (the counterpart of
    /// [`ScriptBuilder::from_pool`]).
    pub(crate) fn finish_into_pool(
        mut self,
        source_len: u64,
        pool: &mut crate::ScriptPool,
    ) -> DeltaScript {
        self.flush_pending();
        let mut stash = self.spare;
        self.pending.clear();
        stash.push(self.pending);
        pool.restore_bytes_stash(stash);
        let target_len = self.cursor;
        DeltaScript::new(source_len, target_len, self.commands)
            .expect("builder emits tiling write-ordered commands")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;

    #[test]
    fn builder_coalesces_literals() {
        let mut b = ScriptBuilder::new();
        b.push_byte(1);
        b.push_byte(2);
        b.push_literal(&[3, 4]);
        let s = b.finish(0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.added_bytes(), 4);
    }

    #[test]
    fn builder_coalesces_contiguous_copies() {
        let mut b = ScriptBuilder::new();
        b.push_copy(10, 4);
        b.push_copy(14, 4);
        b.push_copy(30, 4); // not contiguous
        let s = b.finish(100);
        assert_eq!(s.copy_count(), 2);
        assert_eq!(s.commands()[0], Command::copy(10, 0, 8));
    }

    #[test]
    fn builder_interleaves() {
        let mut b = ScriptBuilder::new();
        b.push_copy(0, 2);
        b.push_literal(b"xy");
        b.push_copy(2, 2);
        let s = b.finish(4);
        assert_eq!(s.len(), 3);
        assert!(s.is_write_ordered());
        assert_eq!(apply(&s, b"abcd").unwrap(), b"abxycd");
    }

    #[test]
    fn builder_ignores_zero_len_copy() {
        let mut b = ScriptBuilder::new();
        b.push_copy(5, 0);
        let s = b.finish(10);
        assert!(s.is_empty());
    }

    #[test]
    fn cursor_tracks_pending() {
        let mut b = ScriptBuilder::new();
        assert_eq!(b.cursor(), 0);
        b.push_literal(b"abc");
        assert_eq!(b.cursor(), 3);
        b.push_copy(0, 2);
        assert_eq!(b.cursor(), 5);
    }

    /// Differs must be behaviourally interchangeable.
    fn check_differ(d: &dyn Differ, reference: &[u8], version: &[u8]) {
        let script = d.diff(reference, version);
        assert_eq!(
            apply(&script, reference).unwrap(),
            version,
            "{} failed on {} -> {} bytes",
            d.name(),
            reference.len(),
            version.len()
        );
        assert!(script.is_write_ordered());
    }

    #[test]
    fn differs_handle_degenerate_inputs() {
        let differs: [&dyn Differ; 3] = [
            &GreedyDiffer::default(),
            &OnePassDiffer::default(),
            &CorrectingDiffer::default(),
        ];
        for d in differs {
            check_differ(d, b"", b"");
            check_differ(d, b"", b"hello world, entirely new data");
            check_differ(d, b"all of this disappears", b"");
            check_differ(d, b"tiny", b"tiny");
            check_differ(d, b"abc", b"xyz");
            let same = vec![7u8; 10_000];
            check_differ(d, &same, &same);
        }
    }
}

//! Greedy differencing: index every reference offset, take the longest
//! match at each version position.

use super::kernel;
use super::parallel::IndexedDiffer;
use super::rolling::RollingHash;
use super::scratch::{self, ChainNode, GreedyShard, IndexScratch, Seg, EMPTY};
use super::Differ;
use crate::script::DeltaScript;
use std::ops::Range;

/// Greedy byte-granularity differencing (after Reichenberger '91).
///
/// Builds a hash index of the `seed_len`-byte window at *every* reference
/// offset, then scans the version file byte by byte, extending the longest
/// verified match at each position. Compression is strong; time and memory
/// are proportional to the reference size with worst cases quadratic in
/// pathological self-similar inputs (bounded by `max_probes`).
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{Differ, GreedyDiffer};
/// use ipr_delta::apply;
///
/// let r = b"the quick brown fox jumps over the lazy dog".to_vec();
/// let v = b"the quick red fox jumps over the lazy dog".to_vec();
/// let script = GreedyDiffer::default().diff(&r, &v);
/// assert_eq!(apply(&script, &r).unwrap(), v);
/// ```
#[derive(Clone, Debug)]
pub struct GreedyDiffer {
    seed_len: usize,
    max_probes: usize,
}

impl Default for GreedyDiffer {
    /// 16-byte seeds, at most 64 probed candidates per position.
    fn default() -> Self {
        Self {
            seed_len: 16,
            max_probes: 64,
        }
    }
}

impl GreedyDiffer {
    /// Creates a differ with a custom seed (minimum match) length.
    ///
    /// # Panics
    ///
    /// Panics if `seed_len == 0`.
    #[must_use]
    pub fn new(seed_len: usize) -> Self {
        assert!(seed_len > 0, "seed length must be positive");
        Self {
            seed_len,
            ..Self::default()
        }
    }

    /// Limits how many candidate offsets are verified per position.
    #[must_use]
    pub fn with_max_probes(mut self, max_probes: usize) -> Self {
        self.max_probes = max_probes.max(1);
        self
    }

    /// The configured seed length.
    #[must_use]
    pub fn seed_len(&self) -> usize {
        self.seed_len
    }
}

/// Deterministic hash → shard assignment. Independent of how many offsets
/// exist, so a hash's complete chain always lives in exactly one shard —
/// the property that makes candidate order shard-count-invariant.
#[inline]
fn shard_of(hash: u64, shards: usize) -> usize {
    // Karp-Rabin hashes are well mixed in the low bits but not uniformly
    // across the word; fold and remix before the multiply-shift range map.
    let mixed = (hash ^ (hash >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    ((u128::from(mixed) * shards as u128) >> 64) as usize
}

/// Shared greedy reference index: every reference offset, chained per
/// seed hash across hash shards (see [`GreedyShard`]).
///
/// Chains are intrusive in one flat node array per shard — per-bucket
/// `Vec`s would mean one heap allocation per reference offset. Heads
/// live in a flat open-addressed table (`FlatHeads`): the former
/// `FxHashMap` re-hashed the already-mixed Karp-Rabin key and probed
/// SwissTable control bytes on every version position, two dependent
/// cache misses on the scan critical path; the flat table resolves one
/// probe to a single 16-byte slot load.
pub struct GreedyIndex<'s> {
    shards: &'s [GreedyShard],
}

impl GreedyIndex<'_> {
    /// Iterates candidate offsets for `hash`, most recent first.
    ///
    /// The shard pick and head-table probe happen once, up front — the
    /// returned iterator only walks the intrusive node chain.
    fn candidates(&self, hash: u64) -> impl Iterator<Item = usize> + '_ {
        let shard = &self.shards[shard_of(hash, self.shards.len())];
        let mut cursor = shard.heads.get(hash);
        std::iter::from_fn(move || {
            if cursor == EMPTY {
                return None;
            }
            let node = shard.nodes[cursor as usize];
            cursor = node.prev;
            Some(node.offset as usize)
        })
    }
}

impl IndexedDiffer for GreedyDiffer {
    type Index<'s> = GreedyIndex<'s>;

    fn seed_len(&self) -> usize {
        self.seed_len
    }

    fn build_index<'s>(
        &self,
        reference: &[u8],
        shards: usize,
        scratch: &'s mut IndexScratch,
    ) -> GreedyIndex<'s> {
        let shards = shards.max(1);
        if scratch.shards.len() < shards {
            scratch.shards.resize_with(shards, GreedyShard::default);
        }
        let active = &mut scratch.shards[..shards];
        for shard in active.iter_mut() {
            shard.clear();
        }
        if reference.len() >= self.seed_len {
            let last = reference.len() - self.seed_len;
            let seed_len = self.seed_len;
            // Pre-size each shard's head table for its expected share of
            // the offsets so the build never rehashes mid-scan.
            let expected = (last + 1).div_ceil(shards);
            // Each worker owns one hash shard and scans the whole
            // reference: re-rolling the hash is a few arithmetic ops per
            // byte, while the head-table inserts — the expensive part —
            // split cleanly across workers.
            let build_one = |owner: usize, shard: &mut GreedyShard| {
                shard.heads.reserve(expected);
                shard.nodes.reserve(expected);
                let mut h = RollingHash::new(&reference[..seed_len]);
                for i in 0..=last {
                    if i > 0 {
                        h.roll(reference[i - 1], reference[i + seed_len - 1]);
                    }
                    let hash = h.hash();
                    if shard_of(hash, shards) != owner {
                        continue;
                    }
                    let node = shard.nodes.len() as u32;
                    let prev = shard.heads.upsert(hash, node);
                    shard.nodes.push(ChainNode {
                        offset: i as u32,
                        prev,
                    });
                }
            };
            if shards == 1 {
                build_one(0, &mut active[0]);
            } else {
                let build_one = &build_one;
                std::thread::scope(|s| {
                    for (owner, shard) in active.iter_mut().enumerate() {
                        s.spawn(move || build_one(owner, shard));
                    }
                });
            }
        }
        GreedyIndex {
            shards: &scratch.shards[..shards],
        }
    }

    fn scan_chunk(
        &self,
        index: &GreedyIndex<'_>,
        reference: &[u8],
        version: &[u8],
        range: Range<usize>,
        segs: &mut Vec<Seg>,
    ) {
        let seed_len = self.seed_len;
        let last_window = version.len() - seed_len;
        let (mut v, end) = (range.start, range.end);
        if v >= end {
            return;
        }
        if v > last_window {
            scratch::push_lit(segs, (end - v) as u64);
            return;
        }
        let mut probes = 0u64;
        let mut extend_bytes = 0u64;
        let mut h = RollingHash::new(&version[v..v + seed_len]);
        let mut hash_pos = v; // position the rolling hash currently covers
        while v < end && v <= last_window {
            // Advance the rolling hash to position v: roll byte by byte
            // for short hops, re-seed in O(seed_len) after a long copy
            // (the catch-up would otherwise cost O(copy_len)).
            if hash_pos < v {
                if v - hash_pos >= seed_len {
                    h.reseed(&version[v..v + seed_len]);
                    hash_pos = v;
                } else {
                    while hash_pos < v {
                        h.roll(version[hash_pos], version[hash_pos + seed_len]);
                        hash_pos += 1;
                    }
                }
            }
            let mut best_from = 0usize;
            let mut best_len = 0usize;
            let v_room = version.len() - v;
            for c in index.candidates(h.hash()).take(self.max_probes) {
                probes += 1;
                if best_len > 0 {
                    // One-load prune: a candidate can only beat `best_len`
                    // if its match covers index `best_len` too, so bytes
                    // there must be equal. Rejects dominated candidates
                    // without touching their seed windows. (`v + best_len`
                    // is in bounds: probing stops once a match reaches the
                    // end of the version.)
                    if reference.len() - c <= best_len
                        || reference[c + best_len] != version[v + best_len]
                    {
                        continue;
                    }
                }
                if !kernel::windows_eq(&reference[c..c + seed_len], &version[v..v + seed_len]) {
                    continue; // hash collision
                }
                let len = seed_len
                    + kernel::common_prefix(&reference[c + seed_len..], &version[v + seed_len..]);
                extend_bytes += (len - seed_len) as u64;
                if len > best_len {
                    best_len = len;
                    best_from = c;
                    if best_len == v_room {
                        break; // nothing can beat a match to the end
                    }
                }
            }
            if best_len >= seed_len {
                // Truncate at the chunk boundary; stitching re-extends.
                let emit = best_len.min(end - v);
                scratch::push_copy(segs, best_from as u64, emit as u64);
                v += emit;
            } else {
                scratch::push_lit(segs, 1);
                v += 1;
            }
        }
        // Tail shorter than a seed: emit literally.
        if v < end {
            scratch::push_lit(segs, (end - v) as u64);
        }
        if probes > 0 {
            ipr_trace::with(|r| {
                r.add("diff.probes", probes);
                r.add("diff.extend_bytes", extend_bytes);
            });
        }
    }
}

impl Differ for GreedyDiffer {
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript {
        let _span = ipr_trace::span("diff");
        ipr_trace::with(|r| {
            r.add("diff.reference_bytes", reference.len() as u64);
            r.add("diff.version_bytes", version.len() as u64);
        });
        scratch::with_thread_scratch(|s| super::parallel::diff_serial(self, s, reference, version))
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;

    fn check(reference: &[u8], version: &[u8]) -> DeltaScript {
        let script = GreedyDiffer::default().diff(reference, version);
        assert_eq!(apply(&script, reference).unwrap(), version);
        script
    }

    #[test]
    fn identical_files_one_copy() {
        let data = b"0123456789abcdef0123456789abcdef".repeat(8);
        let script = check(&data, &data);
        assert_eq!(script.copy_count(), 1);
        assert_eq!(script.add_count(), 0);
        assert_eq!(script.copied_bytes(), data.len() as u64);
    }

    #[test]
    fn point_edit_three_commands() {
        let reference: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let mut version = reference.clone();
        version[100] ^= 0xff;
        let script = check(&reference, &version);
        // copy, small add (1 byte), copy
        assert!(script.copy_count() >= 2, "{script:?}");
        assert!(script.added_bytes() <= 2);
    }

    #[test]
    fn insertion_detected() {
        let reference = b"A common prefix string here. And a common suffix string too!".to_vec();
        let mut version = reference.clone();
        version.splice(29..29, b"<<<INSERTED MATERIAL>>>".iter().copied());
        let script = check(&reference, &version);
        assert!(script.copied_bytes() > 40);
    }

    #[test]
    fn block_move_found() {
        let a: Vec<u8> = (0..100u32).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..100u32).map(|i| ((i * 7 + 3) % 251) as u8).collect();
        let reference = [a.clone(), b.clone()].concat();
        let version = [b, a].concat();
        let script = check(&reference, &version);
        // Both halves should be found as copies, nearly nothing literal.
        assert!(script.added_bytes() < 20, "{}", script.added_bytes());
    }

    #[test]
    fn unrelated_files_mostly_adds() {
        let reference = vec![0u8; 500];
        let version: Vec<u8> = (0..500u32).map(|i| (i * 37 % 251) as u8).collect();
        let script = check(&reference, &version);
        assert!(script.added_bytes() > 400);
    }

    #[test]
    fn custom_seed_len() {
        let d = GreedyDiffer::new(4);
        assert_eq!(d.seed_len(), 4);
        let reference = b"abcdefgh".to_vec();
        let version = b"xxabcdefghxx".to_vec();
        let script = d.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
        assert!(script.copied_bytes() >= 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_seed_rejected() {
        let _ = GreedyDiffer::new(0);
    }
}

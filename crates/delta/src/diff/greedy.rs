//! Greedy differencing: index every reference offset, take the longest
//! match at each version position.

use super::rolling::RollingHash;
use super::{Differ, ScriptBuilder};
use crate::script::DeltaScript;
use ipr_hash::FxHashMap;

/// Greedy byte-granularity differencing (after Reichenberger '91).
///
/// Builds a hash index of the `seed_len`-byte window at *every* reference
/// offset, then scans the version file byte by byte, extending the longest
/// verified match at each position. Compression is strong; time and memory
/// are proportional to the reference size with worst cases quadratic in
/// pathological self-similar inputs (bounded by `max_probes`).
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{Differ, GreedyDiffer};
/// use ipr_delta::apply;
///
/// let r = b"the quick brown fox jumps over the lazy dog".to_vec();
/// let v = b"the quick red fox jumps over the lazy dog".to_vec();
/// let script = GreedyDiffer::default().diff(&r, &v);
/// assert_eq!(apply(&script, &r).unwrap(), v);
/// ```
#[derive(Clone, Debug)]
pub struct GreedyDiffer {
    seed_len: usize,
    max_probes: usize,
}

impl Default for GreedyDiffer {
    /// 16-byte seeds, at most 64 probed candidates per position.
    fn default() -> Self {
        Self {
            seed_len: 16,
            max_probes: 64,
        }
    }
}

impl GreedyDiffer {
    /// Creates a differ with a custom seed (minimum match) length.
    ///
    /// # Panics
    ///
    /// Panics if `seed_len == 0`.
    #[must_use]
    pub fn new(seed_len: usize) -> Self {
        assert!(seed_len > 0, "seed length must be positive");
        Self {
            seed_len,
            ..Self::default()
        }
    }

    /// Limits how many candidate offsets are verified per position.
    #[must_use]
    pub fn with_max_probes(mut self, max_probes: usize) -> Self {
        self.max_probes = max_probes.max(1);
        self
    }

    /// The configured seed length.
    #[must_use]
    pub fn seed_len(&self) -> usize {
        self.seed_len
    }

    /// Index of every reference seed hash to its offsets.
    fn index(&self, reference: &[u8]) -> SeedIndex {
        SeedIndex::build(reference, self.seed_len)
    }
}

const NO_OFFSET: u32 = u32::MAX;

/// Hash index over every reference offset, stored as intrusive chains in
/// one flat array (`chain[i]` links offset `i` to the previous offset with
/// the same seed hash). A single backing allocation — per-bucket `Vec`s
/// would mean one heap allocation per reference offset, which both bloats
/// memory and leaves the allocator with hundreds of thousands of free
/// chunks to consolidate on the next allocation.
/// Buckets use the Fx hash: one probe per reference offset and one per
/// version position puts SipHash's per-key latency directly on the diff
/// critical path, and the keys are already-mixed Karp-Rabin hashes, so a
/// cheap finalizer loses nothing.
struct SeedIndex {
    heads: FxHashMap<u64, u32>,
    chain: Vec<u32>,
}

impl SeedIndex {
    fn build(reference: &[u8], seed_len: usize) -> Self {
        if reference.len() < seed_len {
            return Self {
                heads: FxHashMap::default(),
                chain: Vec::new(),
            };
        }
        let last = reference.len() - seed_len;
        let mut heads: FxHashMap<u64, u32> =
            FxHashMap::with_capacity_and_hasher(last + 1, ipr_hash::FxBuildHasher::default());
        let mut chain = vec![NO_OFFSET; last + 1];
        let mut h = RollingHash::new(&reference[..seed_len]);
        for i in 0..=last {
            if i > 0 {
                h.roll(reference[i - 1], reference[i + seed_len - 1]);
            }
            let head = heads.entry(h.hash()).or_insert(NO_OFFSET);
            chain[i] = *head;
            *head = i as u32;
        }
        Self { heads, chain }
    }

    /// Iterates candidate offsets for `hash`, most recent first.
    fn candidates(&self, hash: u64) -> impl Iterator<Item = usize> + '_ {
        let mut cursor = self.heads.get(&hash).copied().unwrap_or(NO_OFFSET);
        std::iter::from_fn(move || {
            if cursor == NO_OFFSET {
                return None;
            }
            let current = cursor as usize;
            cursor = self.chain[current];
            Some(current)
        })
    }
}

impl Differ for GreedyDiffer {
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript {
        let _span = ipr_trace::span("diff");
        ipr_trace::with(|r| {
            r.add("diff.reference_bytes", reference.len() as u64);
            r.add("diff.version_bytes", version.len() as u64);
        });
        let source_len = reference.len() as u64;
        let mut builder = ScriptBuilder::new();
        if version.len() < self.seed_len || reference.len() < self.seed_len {
            builder.push_literal(version);
            return builder.finish(source_len);
        }

        let index = self.index(reference);
        let last_window = version.len() - self.seed_len;
        let mut v = 0usize;
        let mut h = RollingHash::new(&version[..self.seed_len]);
        let mut hash_pos = 0usize; // position the rolling hash currently covers

        while v <= last_window {
            // Advance the rolling hash to position v.
            while hash_pos < v {
                h.roll(version[hash_pos], version[hash_pos + self.seed_len]);
                hash_pos += 1;
            }
            let mut best_from = 0usize;
            let mut best_len = 0usize;
            for c in index.candidates(h.hash()).take(self.max_probes) {
                if reference[c..c + self.seed_len] != version[v..v + self.seed_len] {
                    continue; // hash collision
                }
                let mut len = self.seed_len;
                let max = (reference.len() - c).min(version.len() - v);
                while len < max && reference[c + len] == version[v + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_from = c;
                }
            }
            if best_len >= self.seed_len {
                builder.push_copy(best_from as u64, best_len as u64);
                v += best_len;
            } else {
                builder.push_byte(version[v]);
                v += 1;
            }
            if v > last_window {
                break;
            }
        }
        // Tail shorter than a seed: emit literally.
        if v < version.len() {
            builder.push_literal(&version[v..]);
        }
        builder.finish(source_len)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;

    fn check(reference: &[u8], version: &[u8]) -> DeltaScript {
        let script = GreedyDiffer::default().diff(reference, version);
        assert_eq!(apply(&script, reference).unwrap(), version);
        script
    }

    #[test]
    fn identical_files_one_copy() {
        let data = b"0123456789abcdef0123456789abcdef".repeat(8);
        let script = check(&data, &data);
        assert_eq!(script.copy_count(), 1);
        assert_eq!(script.add_count(), 0);
        assert_eq!(script.copied_bytes(), data.len() as u64);
    }

    #[test]
    fn point_edit_three_commands() {
        let reference: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let mut version = reference.clone();
        version[100] ^= 0xff;
        let script = check(&reference, &version);
        // copy, small add (1 byte), copy
        assert!(script.copy_count() >= 2, "{script:?}");
        assert!(script.added_bytes() <= 2);
    }

    #[test]
    fn insertion_detected() {
        let reference = b"A common prefix string here. And a common suffix string too!".to_vec();
        let mut version = reference.clone();
        version.splice(29..29, b"<<<INSERTED MATERIAL>>>".iter().copied());
        let script = check(&reference, &version);
        assert!(script.copied_bytes() > 40);
    }

    #[test]
    fn block_move_found() {
        let a: Vec<u8> = (0..100u32).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..100u32).map(|i| ((i * 7 + 3) % 251) as u8).collect();
        let reference = [a.clone(), b.clone()].concat();
        let version = [b, a].concat();
        let script = check(&reference, &version);
        // Both halves should be found as copies, nearly nothing literal.
        assert!(script.added_bytes() < 20, "{}", script.added_bytes());
    }

    #[test]
    fn unrelated_files_mostly_adds() {
        let reference = vec![0u8; 500];
        let version: Vec<u8> = (0..500u32).map(|i| (i * 37 % 251) as u8).collect();
        let script = check(&reference, &version);
        assert!(script.added_bytes() > 400);
    }

    #[test]
    fn custom_seed_len() {
        let d = GreedyDiffer::new(4);
        assert_eq!(d.seed_len(), 4);
        let reference = b"abcdefgh".to_vec();
        let version = b"xxabcdefghxx".to_vec();
        let script = d.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
        assert!(script.copied_bytes() >= 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_seed_rejected() {
        let _ = GreedyDiffer::new(0);
    }
}

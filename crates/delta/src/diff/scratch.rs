//! Reusable differencing scratch: the arena behind zero-allocation
//! steady-state diffing.
//!
//! Every differ needs per-call working storage — footprint tables for the
//! constant-space family, hash-sharded chains for the greedy family, and
//! per-chunk segment buffers for the parallel scan. Allocating those on
//! every `diff` call puts the allocator on the critical path of the
//! pipeline's dominant phase (differencing is ~97% of end-to-end time in
//! `results/BENCH_phase_breakdown.json`). A [`DiffScratch`] owns all of
//! it and is reused across calls: buffers are `clear()`ed, never freed,
//! so a warmed-up arena performs no table or buffer allocations at all.
//!
//! Callers can hold an explicit arena and pass it to
//! [`ParallelDiffer::diff_with`](super::ParallelDiffer::diff_with); the
//! plain [`Differ::diff`](super::Differ) entry points of every engine
//! route through a per-thread arena automatically.

use ipr_hash::FxHashMap;
use std::cell::RefCell;

/// Sentinel for an empty footprint-table slot or chain end.
pub(crate) const EMPTY: u32 = u32::MAX;

/// One entry of a greedy hash chain: a reference offset plus the index of
/// the previous node with the same seed hash (newest first).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChainNode {
    pub(crate) offset: u32,
    pub(crate) prev: u32,
}

/// One hash shard of the greedy reference index.
///
/// A shard owns a deterministic subset of the seed-hash space: every
/// reference offset whose seed hash maps to the shard is chained here, in
/// offset order, regardless of how many shards exist. Chains are therefore
/// identical to the serial single-map index restricted to those hashes,
/// which is what makes the parallel build bit-compatible with the serial
/// one.
#[derive(Debug, Default)]
pub struct GreedyShard {
    /// Seed hash → index of the newest [`ChainNode`] for that hash.
    pub(crate) heads: FxHashMap<u64, u32>,
    /// Backing storage for the intrusive chains.
    pub(crate) nodes: Vec<ChainNode>,
}

impl GreedyShard {
    pub(crate) fn clear(&mut self) {
        self.heads.clear();
        self.nodes.clear();
    }
}

/// Storage backing the shared reference index (all differ families).
#[derive(Debug, Default)]
pub struct IndexScratch {
    /// Footprint table: first reference offset per slot.
    pub(crate) firsts: Vec<u32>,
    /// Footprint table: most recent reference offset per slot (the
    /// correcting differ's second candidate; left empty otherwise).
    pub(crate) lasts: Vec<u32>,
    /// Hash-sharded greedy chains.
    pub(crate) shards: Vec<GreedyShard>,
}

/// One segment of a chunk scan, relative to a running version offset.
///
/// Chunk scans record *where version bytes come from*, not the bytes
/// themselves; literal payloads are sliced out of the version file only
/// when the stitcher builds the final script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Seg {
    /// Copy `len` bytes from reference offset `from`.
    Copy {
        /// Reference offset the bytes come from.
        from: u64,
        /// Number of bytes copied.
        len: u64,
    },
    /// `len` literal bytes taken from the version file at the running
    /// offset.
    Literal {
        /// Number of literal bytes.
        len: u64,
    },
}

/// Appends a literal run, coalescing with a trailing literal segment.
pub(crate) fn push_lit(segs: &mut Vec<Seg>, len: u64) {
    if len == 0 {
        return;
    }
    if let Some(Seg::Literal { len: prev }) = segs.last_mut() {
        *prev += len;
        return;
    }
    segs.push(Seg::Literal { len });
}

/// Appends a copy, coalescing with a trailing contiguous copy segment.
pub(crate) fn push_copy(segs: &mut Vec<Seg>, from: u64, len: u64) {
    if len == 0 {
        return;
    }
    if let Some(Seg::Copy {
        from: prev_from,
        len: prev_len,
    }) = segs.last_mut()
    {
        if *prev_from + *prev_len == from {
            *prev_len += len;
            return;
        }
    }
    segs.push(Seg::Copy { from, len });
}

/// Reusable differencing arena; see the module docs.
///
/// A `DiffScratch` is plain storage — it carries no configuration, so one
/// arena serves any mix of differs and input sizes, growing to the
/// high-water mark and staying there.
#[derive(Debug, Default)]
pub struct DiffScratch {
    /// Reference-index storage.
    pub(crate) index: IndexScratch,
    /// Per-chunk segment buffers for the version scan.
    pub(crate) segs: Vec<Vec<Seg>>,
    /// Recycled script storage the produced script is built from.
    pub(crate) pool: crate::ScriptPool,
}

impl DiffScratch {
    /// Creates an empty arena. Storage is grown on first use and reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The script-storage pool scripts produced from this arena draw on.
    ///
    /// [Recycle](crate::ScriptPool::recycle) finished scripts here and
    /// subsequent diffs through this arena build their output out of the
    /// returned storage instead of allocating.
    #[must_use]
    pub fn pool_mut(&mut self) -> &mut crate::ScriptPool {
        &mut self.pool
    }
}

thread_local! {
    /// Per-thread arena behind the allocation-free `Differ::diff` entry
    /// points.
    static THREAD_SCRATCH: RefCell<DiffScratch> = RefCell::new(DiffScratch::new());
}

/// Runs `f` with this thread's shared arena (or a fresh one on re-entrant
/// use, which only happens if a differ is invoked from inside another
/// diff on the same thread).
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut DiffScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut DiffScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_segments_coalesce() {
        let mut segs = Vec::new();
        push_lit(&mut segs, 3);
        push_lit(&mut segs, 0);
        push_lit(&mut segs, 2);
        assert_eq!(segs, vec![Seg::Literal { len: 5 }]);
    }

    #[test]
    fn contiguous_copies_coalesce() {
        let mut segs = Vec::new();
        push_copy(&mut segs, 10, 4);
        push_copy(&mut segs, 14, 2);
        push_copy(&mut segs, 30, 1);
        assert_eq!(
            segs,
            vec![
                Seg::Copy { from: 10, len: 6 },
                Seg::Copy { from: 30, len: 1 }
            ]
        );
    }

    #[test]
    fn literal_breaks_copy_coalescing() {
        let mut segs = Vec::new();
        push_copy(&mut segs, 0, 4);
        push_lit(&mut segs, 1);
        push_copy(&mut segs, 4, 4);
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn thread_scratch_reuses_capacity() {
        with_thread_scratch(|s| {
            s.index.firsts.resize(1024, EMPTY);
            s.segs.push(Vec::with_capacity(64));
        });
        with_thread_scratch(|s| {
            assert!(s.index.firsts.capacity() >= 1024);
            assert!(!s.segs.is_empty());
        });
    }
}

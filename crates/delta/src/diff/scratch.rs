//! Reusable differencing scratch: the arena behind zero-allocation
//! steady-state diffing.
//!
//! Every differ needs per-call working storage — footprint tables for the
//! constant-space family, hash-sharded chains for the greedy family, and
//! per-chunk segment buffers for the parallel scan. Allocating those on
//! every `diff` call puts the allocator on the critical path of the
//! pipeline's dominant phase (differencing is ~97% of end-to-end time in
//! `results/BENCH_phase_breakdown.json`). A [`DiffScratch`] owns all of
//! it and is reused across calls: buffers are `clear()`ed, never freed,
//! so a warmed-up arena performs no table or buffer allocations at all.
//!
//! Callers can hold an explicit arena and pass it to
//! [`ParallelDiffer::diff_with`](super::ParallelDiffer::diff_with); the
//! plain [`Differ::diff`](super::Differ) entry points of every engine
//! route through a per-thread arena automatically.

use std::cell::RefCell;

/// Sentinel for an empty footprint-table slot or chain end.
pub(crate) const EMPTY: u32 = u32::MAX;

/// One entry of a greedy hash chain: a reference offset plus the index of
/// the previous node with the same seed hash (newest first).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChainNode {
    pub(crate) offset: u32,
    pub(crate) prev: u32,
}

/// One slot of the flat greedy head table: the full seed hash plus the
/// newest chain-node index for it, side by side so one probe is one
/// 16-byte load (a quarter of a cache line).
#[derive(Clone, Copy, Debug)]
struct FlatSlot {
    hash: u64,
    head: u32,
}

/// Smallest table a non-empty [`FlatHeads`] allocates.
const FLAT_MIN_SLOTS: usize = 64;

/// Occupancy numerator/denominator: grow past 7/8 full.
const FLAT_LOAD_NUM: usize = 7;
const FLAT_LOAD_DEN: usize = 8;

/// Maps a seed hash to its starting probe slot. The Karp-Rabin hashes
/// are polynomial remainders, well mixed low but structured high, and
/// the shard map (`shard_of` in `greedy.rs`) already consumes the high
/// bits of one remix — so the slot index comes from an independent
/// full-avalanche finalizer (splitmix64), keeping slot and shard choice
/// uncorrelated.
#[inline]
fn slot_of(hash: u64, mask: usize) -> usize {
    let mut z = hash;
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z as usize) & mask
}

/// Open-addressed hash → chain-head table for the greedy index.
///
/// Replaces the former `FxHashMap<u64, u32>`: the map put a generic
/// hasher invocation plus SwissTable control-byte probing on both hot
/// paths (one insert per reference offset, one lookup per version
/// position). Here a probe is `splitmix64(hash) & mask` into one flat
/// power-of-two slot array with linear probing; the full 64-bit hash is
/// stored in the slot and compared exactly.
///
/// Storing the *full* hash (not a fragment tag) is load-bearing for
/// determinism: the parallel index build shards the hash space, so with
/// different shard counts different hash subsets share one table. A tag
/// table would merge distinct hashes' chains whenever their tags and
/// slots collide — which hashes collide would then depend on the shard
/// count, and the diff output with it. Exact keys keep chains identical
/// to the serial single-map index for any shard count.
///
/// Vacancy is signalled by `head == EMPTY`, never stored for a live
/// chain (a present key's head always points at a real node). Entries
/// are never deleted; [`FlatHeads::clear`] resets the whole table and
/// keeps the allocation, preserving the arena's zero-allocation steady
/// state.
#[derive(Debug, Default)]
pub(crate) struct FlatHeads {
    slots: Vec<FlatSlot>,
    mask: usize,
    len: usize,
}

impl FlatHeads {
    /// Marks every slot vacant; capacity is retained.
    pub(crate) fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.head = EMPTY;
        }
        self.len = 0;
    }

    /// Grows the table so `entries` keys fit without triggering a
    /// mid-build rehash. Never shrinks.
    pub(crate) fn reserve(&mut self, entries: usize) {
        let needed = (entries * FLAT_LOAD_DEN).div_ceil(FLAT_LOAD_NUM).max(1);
        if needed > self.slots.len() {
            self.rehash(needed.next_power_of_two().max(FLAT_MIN_SLOTS));
        }
    }

    /// The chain head stored for `hash`, or [`EMPTY`].
    #[inline]
    pub(crate) fn get(&self, hash: u64) -> u32 {
        if self.slots.is_empty() {
            return EMPTY;
        }
        let mut i = slot_of(hash, self.mask);
        loop {
            let slot = self.slots[i];
            if slot.head == EMPTY {
                return EMPTY;
            }
            if slot.hash == hash {
                return slot.head;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Stores `head` as the newest chain head for `hash`, returning the
    /// previous head ([`EMPTY`] if the hash is new).
    #[inline]
    pub(crate) fn upsert(&mut self, hash: u64, head: u32) -> u32 {
        if (self.len + 1) * FLAT_LOAD_DEN > self.slots.len() * FLAT_LOAD_NUM {
            self.rehash((self.slots.len() * 2).max(FLAT_MIN_SLOTS));
        }
        let mut i = slot_of(hash, self.mask);
        loop {
            let slot = &mut self.slots[i];
            if slot.head == EMPTY {
                *slot = FlatSlot { hash, head };
                self.len += 1;
                return EMPTY;
            }
            if slot.hash == hash {
                return std::mem::replace(&mut slot.head, head);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Re-buckets every live entry into a table of `new_len` slots
    /// (a power of two). Keys in the old table are unique, so reinsertion
    /// probes for vacancies only.
    fn rehash(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two() && new_len > self.slots.len());
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                FlatSlot {
                    hash: 0,
                    head: EMPTY
                };
                new_len
            ],
        );
        self.mask = new_len - 1;
        for slot in old {
            if slot.head == EMPTY {
                continue;
            }
            let mut i = slot_of(slot.hash, self.mask);
            while self.slots[i].head != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = slot;
        }
    }
}

/// One hash shard of the greedy reference index.
///
/// A shard owns a deterministic subset of the seed-hash space: every
/// reference offset whose seed hash maps to the shard is chained here, in
/// offset order, regardless of how many shards exist. Chains are therefore
/// identical to the serial single-map index restricted to those hashes,
/// which is what makes the parallel build bit-compatible with the serial
/// one.
#[derive(Debug, Default)]
pub struct GreedyShard {
    /// Seed hash → index of the newest [`ChainNode`] for that hash.
    pub(crate) heads: FlatHeads,
    /// Backing storage for the intrusive chains.
    pub(crate) nodes: Vec<ChainNode>,
}

impl GreedyShard {
    pub(crate) fn clear(&mut self) {
        self.heads.clear();
        self.nodes.clear();
    }
}

/// Storage backing the shared reference index (all differ families).
#[derive(Debug, Default)]
pub struct IndexScratch {
    /// Footprint table: first reference offset per slot.
    pub(crate) firsts: Vec<u32>,
    /// Footprint table: most recent reference offset per slot (the
    /// correcting differ's second candidate; left empty otherwise).
    pub(crate) lasts: Vec<u32>,
    /// Hash-sharded greedy chains.
    pub(crate) shards: Vec<GreedyShard>,
}

/// One segment of a chunk scan, relative to a running version offset.
///
/// Chunk scans record *where version bytes come from*, not the bytes
/// themselves; literal payloads are sliced out of the version file only
/// when the stitcher builds the final script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Seg {
    /// Copy `len` bytes from reference offset `from`.
    Copy {
        /// Reference offset the bytes come from.
        from: u64,
        /// Number of bytes copied.
        len: u64,
    },
    /// `len` literal bytes taken from the version file at the running
    /// offset.
    Literal {
        /// Number of literal bytes.
        len: u64,
    },
}

/// Appends a literal run, coalescing with a trailing literal segment.
pub(crate) fn push_lit(segs: &mut Vec<Seg>, len: u64) {
    if len == 0 {
        return;
    }
    if let Some(Seg::Literal { len: prev }) = segs.last_mut() {
        *prev += len;
        return;
    }
    segs.push(Seg::Literal { len });
}

/// Appends a copy, coalescing with a trailing contiguous copy segment.
pub(crate) fn push_copy(segs: &mut Vec<Seg>, from: u64, len: u64) {
    if len == 0 {
        return;
    }
    if let Some(Seg::Copy {
        from: prev_from,
        len: prev_len,
    }) = segs.last_mut()
    {
        if *prev_from + *prev_len == from {
            *prev_len += len;
            return;
        }
    }
    segs.push(Seg::Copy { from, len });
}

/// Reusable differencing arena; see the module docs.
///
/// A `DiffScratch` is plain storage — it carries no configuration, so one
/// arena serves any mix of differs and input sizes, growing to the
/// high-water mark and staying there.
#[derive(Debug, Default)]
pub struct DiffScratch {
    /// Reference-index storage.
    pub(crate) index: IndexScratch,
    /// Per-chunk segment buffers for the version scan.
    pub(crate) segs: Vec<Vec<Seg>>,
    /// Recycled script storage the produced script is built from.
    pub(crate) pool: crate::ScriptPool,
}

impl DiffScratch {
    /// Creates an empty arena. Storage is grown on first use and reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The script-storage pool scripts produced from this arena draw on.
    ///
    /// [Recycle](crate::ScriptPool::recycle) finished scripts here and
    /// subsequent diffs through this arena build their output out of the
    /// returned storage instead of allocating.
    #[must_use]
    pub fn pool_mut(&mut self) -> &mut crate::ScriptPool {
        &mut self.pool
    }
}

thread_local! {
    /// Per-thread arena behind the allocation-free `Differ::diff` entry
    /// points.
    static THREAD_SCRATCH: RefCell<DiffScratch> = RefCell::new(DiffScratch::new());
}

/// Runs `f` with this thread's shared arena (or a fresh one on re-entrant
/// use, which only happens if a differ is invoked from inside another
/// diff on the same thread).
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut DiffScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut DiffScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_segments_coalesce() {
        let mut segs = Vec::new();
        push_lit(&mut segs, 3);
        push_lit(&mut segs, 0);
        push_lit(&mut segs, 2);
        assert_eq!(segs, vec![Seg::Literal { len: 5 }]);
    }

    #[test]
    fn contiguous_copies_coalesce() {
        let mut segs = Vec::new();
        push_copy(&mut segs, 10, 4);
        push_copy(&mut segs, 14, 2);
        push_copy(&mut segs, 30, 1);
        assert_eq!(
            segs,
            vec![
                Seg::Copy { from: 10, len: 6 },
                Seg::Copy { from: 30, len: 1 }
            ]
        );
    }

    #[test]
    fn literal_breaks_copy_coalescing() {
        let mut segs = Vec::new();
        push_copy(&mut segs, 0, 4);
        push_lit(&mut segs, 1);
        push_copy(&mut segs, 4, 4);
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn flat_heads_upsert_chains_like_a_map() {
        let mut heads = FlatHeads::default();
        assert_eq!(heads.get(42), EMPTY);
        assert_eq!(heads.upsert(42, 0), EMPTY);
        assert_eq!(heads.upsert(42, 1), 0);
        assert_eq!(heads.upsert(42, 2), 1);
        assert_eq!(heads.get(42), 2);
        assert_eq!(heads.get(43), EMPTY);
        heads.clear();
        assert_eq!(heads.get(42), EMPTY);
    }

    #[test]
    fn flat_heads_survive_growth() {
        // Enough distinct keys to force several rehashes; check against a
        // reference map afterwards.
        let mut heads = FlatHeads::default();
        let mut model = std::collections::HashMap::new();
        let mut key = 0x9e37_79b9u64;
        for i in 0..10_000u32 {
            key = key.wrapping_mul(6364136223846793005).wrapping_add(1);
            let hash = key >> 16 << 3; // clustered keys stress probing
            let prev = heads.upsert(hash, i);
            let model_prev = model.insert(hash, i).unwrap_or(EMPTY);
            assert_eq!(prev, model_prev, "key {hash:#x}");
        }
        for (&hash, &head) in &model {
            assert_eq!(heads.get(hash), head);
        }
    }

    #[test]
    fn flat_heads_reserve_prevents_rehash() {
        let mut heads = FlatHeads::default();
        heads.reserve(1000);
        let cap = heads.slots.len();
        for i in 0..1000u32 {
            heads.upsert(u64::from(i) * 0x1234_5677, i);
        }
        assert_eq!(heads.slots.len(), cap, "reserve must pre-size the table");
    }

    #[test]
    fn thread_scratch_reuses_capacity() {
        with_thread_scratch(|s| {
            s.index.firsts.resize(1024, EMPTY);
            s.segs.push(Vec::with_capacity(64));
        });
        with_thread_scratch(|s| {
            assert!(s.index.firsts.capacity() >= 1024);
            assert!(!s.segs.is_empty());
        });
    }
}

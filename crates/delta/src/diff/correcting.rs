//! Correcting one-pass differencing (after the Ajtai–Burns–Fagin–Long–
//! Stockmeyer "correcting" family — the algorithm the paper pairs with
//! in-place conversion).
//!
//! Keeps the linear-time, constant-space profile of
//! [`OnePassDiffer`](super::OnePassDiffer) but recovers much of the
//! compression the single-candidate table loses, two ways:
//!
//! * **two candidates per footprint slot** — the *first* and the *most
//!   recent* reference offset with that footprint; both are verified and
//!   the longer match wins (first-seen catches stable prefixes, last-seen
//!   catches locality);
//! * **backward extension** — a verified match is grown leftwards into
//!   the pending literal run, *correcting* bytes that were provisionally
//!   classified as adds before the match was discovered.

use super::kernel;
use super::parallel::{build_footprint_index, FootprintIndex, IndexedDiffer};
use super::rolling::RollingHash;
use super::scratch::{self, IndexScratch, Seg, EMPTY};
use super::Differ;
use crate::script::DeltaScript;
use std::ops::Range;

/// Linear-time differencing with match correction.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{CorrectingDiffer, Differ};
/// use ipr_delta::apply;
///
/// let r = b"a long stable prefix | moving part | a long stable suffix".to_vec();
/// let v = b"a long stable prefix | CHANGED! | a long stable suffix".to_vec();
/// let script = CorrectingDiffer::default().diff(&r, &v);
/// assert_eq!(apply(&script, &r).unwrap(), v);
/// ```
#[derive(Clone, Debug)]
pub struct CorrectingDiffer {
    seed_len: usize,
    table_bits: u32,
}

impl Default for CorrectingDiffer {
    /// 16-byte seeds and a 2^16-slot footprint table.
    fn default() -> Self {
        Self {
            seed_len: 16,
            table_bits: 16,
        }
    }
}

impl CorrectingDiffer {
    /// Creates a differ with the given seed length and footprint-table
    /// size (in bits).
    ///
    /// # Panics
    ///
    /// Panics if `seed_len == 0` or `table_bits` is 0 or exceeds 30.
    #[must_use]
    pub fn new(seed_len: usize, table_bits: u32) -> Self {
        assert!(seed_len > 0, "seed length must be positive");
        assert!(
            (1..=30).contains(&table_bits),
            "table bits must be in 1..=30"
        );
        Self {
            seed_len,
            table_bits,
        }
    }

    /// The configured seed length.
    #[must_use]
    pub fn seed_len(&self) -> usize {
        self.seed_len
    }
}

impl IndexedDiffer for CorrectingDiffer {
    type Index<'s> = FootprintIndex<'s>;

    fn seed_len(&self) -> usize {
        self.seed_len
    }

    /// Footprint table with first-seen and last-seen offsets per slot.
    fn build_index<'s>(
        &self,
        reference: &[u8],
        shards: usize,
        scratch: &'s mut IndexScratch,
    ) -> FootprintIndex<'s> {
        build_footprint_index(
            reference,
            self.seed_len,
            self.table_bits,
            true,
            shards,
            scratch,
        )
    }

    fn scan_chunk(
        &self,
        index: &FootprintIndex<'_>,
        reference: &[u8],
        version: &[u8],
        range: Range<usize>,
        segs: &mut Vec<Seg>,
    ) {
        let seed_len = self.seed_len;
        let last_window = version.len() - seed_len;
        let (mut v, end) = (range.start, range.end);
        if v >= end {
            return;
        }
        if v > last_window {
            scratch::push_lit(segs, (end - v) as u64);
            return;
        }
        let mut probes = 0u64;
        let mut extend_bytes = 0u64;
        let mut h = RollingHash::new(&version[v..v + seed_len]);
        let mut hash_pos = v;
        while v < end && v <= last_window {
            if hash_pos < v {
                // Re-seed in O(seed_len) after a long copy instead of
                // rolling through every skipped byte.
                if v - hash_pos >= seed_len {
                    h.reseed(&version[v..v + seed_len]);
                    hash_pos = v;
                } else {
                    while hash_pos < v {
                        h.roll(version[hash_pos], version[hash_pos + seed_len]);
                        hash_pos += 1;
                    }
                }
            }
            let hash = h.hash();
            let mut best_from = 0usize;
            let mut best_len = 0usize;
            for cand in [index.first(hash), index.last(hash)] {
                if cand == EMPTY {
                    continue;
                }
                let c = cand as usize;
                if c == best_from && best_len > 0 {
                    continue; // first == last
                }
                probes += 1;
                if !kernel::windows_eq(&reference[c..c + seed_len], &version[v..v + seed_len]) {
                    continue;
                }
                let len = seed_len
                    + kernel::common_prefix(&reference[c + seed_len..], &version[v + seed_len..]);
                extend_bytes += (len - seed_len) as u64;
                if len > best_len {
                    best_len = len;
                    best_from = c;
                }
            }
            if best_len >= seed_len {
                // Correction: extend the match backwards over the pending
                // literal run (never across the chunk start — bytes
                // before it belong to earlier chunks; the stitcher
                // extends across seams with the full picture).
                let pending = match segs.last() {
                    Some(Seg::Literal { len }) => *len as usize,
                    _ => 0,
                };
                let reclaimable = pending.min(best_from).min(v);
                let back = kernel::common_suffix(
                    &reference[best_from - reclaimable..best_from],
                    &version[v - reclaimable..v],
                );
                extend_bytes += back as u64;
                if back > 0 {
                    match segs.last_mut() {
                        Some(Seg::Literal { len }) if *len as usize == back => {
                            segs.pop();
                        }
                        Some(Seg::Literal { len }) => *len -= back as u64,
                        _ => unreachable!("reclaimable is bounded by the pending literal"),
                    }
                }
                // Truncate at the chunk boundary; stitching re-extends.
                let fwd = best_len.min(end - v);
                scratch::push_copy(segs, (best_from - back) as u64, (fwd + back) as u64);
                v += fwd;
            } else {
                scratch::push_lit(segs, 1);
                v += 1;
            }
        }
        if v < end {
            scratch::push_lit(segs, (end - v) as u64);
        }
        if probes > 0 {
            ipr_trace::with(|r| {
                r.add("diff.probes", probes);
                r.add("diff.extend_bytes", extend_bytes);
            });
        }
    }
}

impl Differ for CorrectingDiffer {
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript {
        let _span = ipr_trace::span("diff");
        ipr_trace::with(|r| {
            r.add("diff.reference_bytes", reference.len() as u64);
            r.add("diff.version_bytes", version.len() as u64);
        });
        scratch::with_thread_scratch(|s| super::parallel::diff_serial(self, s, reference, version))
    }

    fn name(&self) -> &'static str {
        "correcting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::diff::OnePassDiffer;

    fn check(reference: &[u8], version: &[u8]) -> DeltaScript {
        let script = CorrectingDiffer::default().diff(reference, version);
        assert_eq!(apply(&script, reference).unwrap(), version);
        script
    }

    #[test]
    fn identical_files_fully_copied() {
        let data: Vec<u8> = (0..8_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let script = check(&data, &data);
        assert_eq!(script.added_bytes(), 0);
    }

    #[test]
    fn backward_extension_reclaims_unaligned_match_start() {
        // The version prefixes a match with bytes that also match, but the
        // footprint only fires `seed_len` bytes in; backward extension
        // must reclaim the reclaimable prefix.
        let differ = CorrectingDiffer::new(8, 12);
        let reference = b"0123456789abcdefghijklmnop".to_vec();
        // New head, then a copy of reference[4..] — the first 4 bytes of
        // that copy are covered only via backward extension.
        let version = [b"XY".to_vec(), reference[4..].to_vec()].concat();
        let script = differ.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
        assert_eq!(
            script.added_bytes(),
            2,
            "only the genuinely new bytes are literal"
        );
    }

    #[test]
    fn never_worse_than_one_pass_on_locality_workload() {
        // Repetition defeats the first-wins single-slot table; the
        // last-seen candidate restores locality.
        let block: Vec<u8> = (0..199u32).map(|i| (i * 3 % 251) as u8).collect();
        let reference: Vec<u8> = block.repeat(40);
        let mut version = reference.clone();
        version.rotate_left(3_333);
        let one = OnePassDiffer::default().diff(&reference, &version);
        let cor = check(&reference, &version);
        assert!(
            cor.added_bytes() <= one.added_bytes(),
            "correcting {} vs one-pass {}",
            cor.added_bytes(),
            one.added_bytes()
        );
    }

    #[test]
    fn corrects_point_edits_tightly() {
        let reference: Vec<u8> = (0..10_000u32).map(|i| (i * 11 % 251) as u8).collect();
        let mut version = reference.clone();
        version[5_000] ^= 0x80;
        let script = check(&reference, &version);
        // One flipped byte: literal bytes must stay tiny thanks to
        // backward extension on the resynchronized match.
        assert!(script.added_bytes() <= 2, "{}", script.added_bytes());
    }

    #[test]
    fn degenerate_inputs() {
        check(b"", b"");
        check(b"", b"everything is new here......");
        check(b"all gone", b"");
        check(b"short", b"short");
    }

    #[test]
    #[should_panic(expected = "seed length")]
    fn zero_seed_rejected() {
        let _ = CorrectingDiffer::new(0, 10);
    }
}

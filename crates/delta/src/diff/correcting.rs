//! Correcting one-pass differencing (after the Ajtai–Burns–Fagin–Long–
//! Stockmeyer "correcting" family — the algorithm the paper pairs with
//! in-place conversion).
//!
//! Keeps the linear-time, constant-space profile of
//! [`OnePassDiffer`](super::OnePassDiffer) but recovers much of the
//! compression the single-candidate table loses, two ways:
//!
//! * **two candidates per footprint slot** — the *first* and the *most
//!   recent* reference offset with that footprint; both are verified and
//!   the longer match wins (first-seen catches stable prefixes, last-seen
//!   catches locality);
//! * **backward extension** — a verified match is grown leftwards into
//!   the pending literal run, *correcting* bytes that were provisionally
//!   classified as adds before the match was discovered.

use super::rolling::RollingHash;
use super::{Differ, ScriptBuilder};
use crate::script::DeltaScript;

/// Linear-time differencing with match correction.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{CorrectingDiffer, Differ};
/// use ipr_delta::apply;
///
/// let r = b"a long stable prefix | moving part | a long stable suffix".to_vec();
/// let v = b"a long stable prefix | CHANGED! | a long stable suffix".to_vec();
/// let script = CorrectingDiffer::default().diff(&r, &v);
/// assert_eq!(apply(&script, &r).unwrap(), v);
/// ```
#[derive(Clone, Debug)]
pub struct CorrectingDiffer {
    seed_len: usize,
    table_bits: u32,
}

impl Default for CorrectingDiffer {
    /// 16-byte seeds and a 2^16-slot footprint table.
    fn default() -> Self {
        Self {
            seed_len: 16,
            table_bits: 16,
        }
    }
}

impl CorrectingDiffer {
    /// Creates a differ with the given seed length and footprint-table
    /// size (in bits).
    ///
    /// # Panics
    ///
    /// Panics if `seed_len == 0` or `table_bits` is 0 or exceeds 30.
    #[must_use]
    pub fn new(seed_len: usize, table_bits: u32) -> Self {
        assert!(seed_len > 0, "seed length must be positive");
        assert!(
            (1..=30).contains(&table_bits),
            "table bits must be in 1..=30"
        );
        Self {
            seed_len,
            table_bits,
        }
    }

    /// The configured seed length.
    #[must_use]
    pub fn seed_len(&self) -> usize {
        self.seed_len
    }
}

const EMPTY: u32 = u32::MAX;

/// First-seen and last-seen reference offsets per footprint slot.
#[derive(Clone, Copy)]
struct Slot {
    first: u32,
    last: u32,
}

impl Differ for CorrectingDiffer {
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript {
        let _span = ipr_trace::span("diff");
        ipr_trace::with(|r| {
            r.add("diff.reference_bytes", reference.len() as u64);
            r.add("diff.version_bytes", version.len() as u64);
        });
        let source_len = reference.len() as u64;
        let mut builder = ScriptBuilder::new();
        if version.len() < self.seed_len || reference.len() < self.seed_len {
            builder.push_literal(version);
            return builder.finish(source_len);
        }

        let mask = (1u64 << self.table_bits) - 1;
        let mut table = vec![
            Slot {
                first: EMPTY,
                last: EMPTY
            };
            1 << self.table_bits
        ];
        {
            let mut h = RollingHash::new(&reference[..self.seed_len]);
            let last = reference.len() - self.seed_len;
            for i in 0..=last {
                if i > 0 {
                    h.roll(reference[i - 1], reference[i + self.seed_len - 1]);
                }
                let slot = &mut table[(h.hash() & mask) as usize];
                if slot.first == EMPTY {
                    slot.first = i as u32;
                }
                slot.last = i as u32;
            }
        }

        let last_window = version.len() - self.seed_len;
        let mut v = 0usize;
        let mut h = RollingHash::new(&version[..self.seed_len]);
        let mut hash_pos = 0usize;

        while v <= last_window {
            while hash_pos < v {
                h.roll(version[hash_pos], version[hash_pos + self.seed_len]);
                hash_pos += 1;
            }
            let slot = table[(h.hash() & mask) as usize];
            let mut best_from = 0usize;
            let mut best_len = 0usize;
            for cand in [slot.first, slot.last] {
                if cand == EMPTY {
                    continue;
                }
                let c = cand as usize;
                if c == best_from && best_len > 0 {
                    continue; // first == last
                }
                if reference[c..c + self.seed_len] != version[v..v + self.seed_len] {
                    continue;
                }
                let mut len = self.seed_len;
                let max = (reference.len() - c).min(version.len() - v);
                while len < max && reference[c + len] == version[v + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_from = c;
                }
            }
            if best_len >= self.seed_len {
                // Correction: extend the match backwards over pending
                // literals.
                let mut back = 0usize;
                let reclaimable = builder.pending_len().min(best_from).min(v);
                while back < reclaimable && reference[best_from - 1 - back] == version[v - 1 - back]
                {
                    back += 1;
                }
                builder.reclaim_pending(back);
                builder.push_copy((best_from - back) as u64, (best_len + back) as u64);
                v += best_len;
            } else {
                builder.push_byte(version[v]);
                v += 1;
            }
        }
        if v < version.len() {
            builder.push_literal(&version[v..]);
        }
        builder.finish(source_len)
    }

    fn name(&self) -> &'static str {
        "correcting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::diff::OnePassDiffer;

    fn check(reference: &[u8], version: &[u8]) -> DeltaScript {
        let script = CorrectingDiffer::default().diff(reference, version);
        assert_eq!(apply(&script, reference).unwrap(), version);
        script
    }

    #[test]
    fn identical_files_fully_copied() {
        let data: Vec<u8> = (0..8_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let script = check(&data, &data);
        assert_eq!(script.added_bytes(), 0);
    }

    #[test]
    fn backward_extension_reclaims_unaligned_match_start() {
        // The version prefixes a match with bytes that also match, but the
        // footprint only fires `seed_len` bytes in; backward extension
        // must reclaim the reclaimable prefix.
        let differ = CorrectingDiffer::new(8, 12);
        let reference = b"0123456789abcdefghijklmnop".to_vec();
        // New head, then a copy of reference[4..] — the first 4 bytes of
        // that copy are covered only via backward extension.
        let version = [b"XY".to_vec(), reference[4..].to_vec()].concat();
        let script = differ.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
        assert_eq!(
            script.added_bytes(),
            2,
            "only the genuinely new bytes are literal"
        );
    }

    #[test]
    fn never_worse_than_one_pass_on_locality_workload() {
        // Repetition defeats the first-wins single-slot table; the
        // last-seen candidate restores locality.
        let block: Vec<u8> = (0..199u32).map(|i| (i * 3 % 251) as u8).collect();
        let reference: Vec<u8> = block.repeat(40);
        let mut version = reference.clone();
        version.rotate_left(3_333);
        let one = OnePassDiffer::default().diff(&reference, &version);
        let cor = check(&reference, &version);
        assert!(
            cor.added_bytes() <= one.added_bytes(),
            "correcting {} vs one-pass {}",
            cor.added_bytes(),
            one.added_bytes()
        );
    }

    #[test]
    fn corrects_point_edits_tightly() {
        let reference: Vec<u8> = (0..10_000u32).map(|i| (i * 11 % 251) as u8).collect();
        let mut version = reference.clone();
        version[5_000] ^= 0x80;
        let script = check(&reference, &version);
        // One flipped byte: literal bytes must stay tiny thanks to
        // backward extension on the resynchronized match.
        assert!(script.added_bytes() <= 2, "{}", script.added_bytes());
    }

    #[test]
    fn degenerate_inputs() {
        check(b"", b"");
        check(b"", b"everything is new here......");
        check(b"all gone", b"");
        check(b"short", b"short");
    }

    #[test]
    #[should_panic(expected = "seed length")]
    fn zero_seed_rejected() {
        let _ = CorrectingDiffer::new(0, 10);
    }
}

//! Linear-time, constant-space differencing (after Burns & Long '97).

use super::kernel;
use super::parallel::{build_footprint_index, FootprintIndex, IndexedDiffer};
use super::rolling::RollingHash;
use super::scratch::{self, IndexScratch, Seg, EMPTY};
use super::Differ;
use crate::script::DeltaScript;
use std::ops::Range;

/// One-pass differencing with a fixed-size footprint table.
///
/// The reference file's seed hashes ("footprints") are dropped into a
/// table of `2^table_bits` slots, first writer wins; the version file is
/// scanned once, extending a verified match whenever its footprint hits a
/// stored reference offset. Time is linear in the input sizes and memory
/// is constant (the table), at some cost in compression relative to
/// [`GreedyDiffer`](super::GreedyDiffer) — the trade the paper's delta
/// algorithm makes.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{Differ, OnePassDiffer};
/// use ipr_delta::apply;
///
/// let r = vec![42u8; 4096];
/// let mut v = r.clone();
/// v[2048] = 7;
/// let script = OnePassDiffer::default().diff(&r, &v);
/// assert_eq!(apply(&script, &r).unwrap(), v);
/// ```
#[derive(Clone, Debug)]
pub struct OnePassDiffer {
    seed_len: usize,
    table_bits: u32,
}

impl Default for OnePassDiffer {
    /// 16-byte seeds and a 2^16-slot footprint table.
    fn default() -> Self {
        Self {
            seed_len: 16,
            table_bits: 16,
        }
    }
}

impl OnePassDiffer {
    /// Creates a differ with the given seed length and footprint-table
    /// size (in bits; the table has `2^table_bits` slots).
    ///
    /// # Panics
    ///
    /// Panics if `seed_len == 0` or `table_bits` is 0 or exceeds 30.
    #[must_use]
    pub fn new(seed_len: usize, table_bits: u32) -> Self {
        assert!(seed_len > 0, "seed length must be positive");
        assert!(
            (1..=30).contains(&table_bits),
            "table bits must be in 1..=30"
        );
        Self {
            seed_len,
            table_bits,
        }
    }

    /// The configured seed length.
    #[must_use]
    pub fn seed_len(&self) -> usize {
        self.seed_len
    }
}

impl IndexedDiffer for OnePassDiffer {
    type Index<'s> = FootprintIndex<'s>;

    fn seed_len(&self) -> usize {
        self.seed_len
    }

    /// Footprint table: slot -> reference offset (first writer wins, as
    /// in the constant-space algorithm's forward scan).
    fn build_index<'s>(
        &self,
        reference: &[u8],
        shards: usize,
        scratch: &'s mut IndexScratch,
    ) -> FootprintIndex<'s> {
        build_footprint_index(
            reference,
            self.seed_len,
            self.table_bits,
            false,
            shards,
            scratch,
        )
    }

    fn scan_chunk(
        &self,
        index: &FootprintIndex<'_>,
        reference: &[u8],
        version: &[u8],
        range: Range<usize>,
        segs: &mut Vec<Seg>,
    ) {
        let seed_len = self.seed_len;
        let last_window = version.len() - seed_len;
        let (mut v, end) = (range.start, range.end);
        if v >= end {
            return;
        }
        if v > last_window {
            scratch::push_lit(segs, (end - v) as u64);
            return;
        }
        let mut probes = 0u64;
        let mut extend_bytes = 0u64;
        let mut h = RollingHash::new(&version[v..v + seed_len]);
        let mut hash_pos = v;
        while v < end && v <= last_window {
            if hash_pos < v {
                // Re-seed in O(seed_len) after a long copy instead of
                // rolling through every skipped byte.
                if v - hash_pos >= seed_len {
                    h.reseed(&version[v..v + seed_len]);
                    hash_pos = v;
                } else {
                    while hash_pos < v {
                        h.roll(version[hash_pos], version[hash_pos + seed_len]);
                        hash_pos += 1;
                    }
                }
            }
            let cand = index.first(h.hash());
            let mut matched = false;
            if cand != EMPTY {
                probes += 1;
                let c = cand as usize;
                if kernel::windows_eq(&reference[c..c + seed_len], &version[v..v + seed_len]) {
                    let len = seed_len
                        + kernel::common_prefix(
                            &reference[c + seed_len..],
                            &version[v + seed_len..],
                        );
                    extend_bytes += (len - seed_len) as u64;
                    // Truncate at the chunk boundary; stitching re-extends.
                    let emit = len.min(end - v);
                    scratch::push_copy(segs, c as u64, emit as u64);
                    v += emit;
                    matched = true;
                }
            }
            if !matched {
                scratch::push_lit(segs, 1);
                v += 1;
            }
        }
        if v < end {
            scratch::push_lit(segs, (end - v) as u64);
        }
        if probes > 0 {
            ipr_trace::with(|r| {
                r.add("diff.probes", probes);
                r.add("diff.extend_bytes", extend_bytes);
            });
        }
    }
}

impl Differ for OnePassDiffer {
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript {
        let _span = ipr_trace::span("diff");
        ipr_trace::with(|r| {
            r.add("diff.reference_bytes", reference.len() as u64);
            r.add("diff.version_bytes", version.len() as u64);
        });
        scratch::with_thread_scratch(|s| super::parallel::diff_serial(self, s, reference, version))
    }

    fn name(&self) -> &'static str {
        "one-pass"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::diff::GreedyDiffer;

    fn check(reference: &[u8], version: &[u8]) -> DeltaScript {
        let script = OnePassDiffer::default().diff(reference, version);
        assert_eq!(apply(&script, reference).unwrap(), version);
        script
    }

    #[test]
    fn identical_files_compress_fully() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let script = check(&data, &data);
        assert_eq!(script.added_bytes(), 0);
    }

    #[test]
    fn point_edits_stay_small() {
        let reference: Vec<u8> = (0..5_000u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut version = reference.clone();
        for pos in [100, 2_000, 4_500] {
            version[pos] ^= 0x55;
        }
        let script = check(&reference, &version);
        assert!(script.added_bytes() < 100, "{}", script.added_bytes());
    }

    #[test]
    fn never_worse_than_all_literal() {
        let reference = b"completely different".to_vec();
        let version: Vec<u8> = (0..300u32).map(|i| (i * 97 % 256) as u8).collect();
        let script = check(&reference, &version);
        assert_eq!(script.added_bytes(), version.len() as u64);
    }

    #[test]
    fn usually_compresses_less_than_greedy() {
        // Repetitive reference: the single-slot table loses candidates that
        // greedy keeps. Greedy must be at least as good.
        let block: Vec<u8> = (0..64u32).map(|i| (i % 251) as u8).collect();
        let reference: Vec<u8> = block.repeat(50);
        let mut version = reference.clone();
        version.rotate_left(1000);
        let g = GreedyDiffer::default().diff(&reference, &version);
        let o = OnePassDiffer::default().diff(&reference, &version);
        assert_eq!(apply(&o, &reference).unwrap(), version);
        assert!(o.added_bytes() >= g.added_bytes());
    }

    #[test]
    fn custom_table_size() {
        let d = OnePassDiffer::new(8, 10);
        assert_eq!(d.seed_len(), 8);
        let reference: Vec<u8> = (0..2_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let mut version = reference.clone();
        version.truncate(1500);
        let script = d.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
    }

    #[test]
    #[should_panic(expected = "table bits")]
    fn oversized_table_rejected() {
        let _ = OnePassDiffer::new(8, 31);
    }
}

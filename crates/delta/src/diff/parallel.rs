//! Wave-parallel differencing over a shared immutable reference index.
//!
//! Mirrors the architecture of the parallel applier (`ipr-core`'s
//! `apply_in_place_parallel`): scoped threads, disjoint `&mut` slices, no
//! locks and no `unsafe`. The phases:
//!
//! 1. **Index build** (`diff.index_build` span) — one immutable index over
//!    the reference, construction partitioned across scoped threads. The
//!    footprint family shards the build by *slot range* (each worker owns
//!    a disjoint slice of the table, scans the whole reference and keeps
//!    only its slots — re-rolling the hash is a few arithmetic ops per
//!    byte, while the random table stores that dominate the build now hit
//!    a per-worker slice that fits lower in the cache hierarchy). The
//!    greedy family shards by *hash* (each worker owns a deterministic
//!    subset of the seed-hash space and builds complete chains for it).
//!    Both schemes produce bit-identical indexes for any worker count.
//! 2. **Chunked scan** (`diff.scan` span) — the version file is cut into
//!    fixed-size chunks (a function of the version length only, never of
//!    the thread count, so output is identical for every `--threads`
//!    value) and chunks are scanned concurrently against the shared
//!    index, each emitting compact [`Seg`] runs into its own reused
//!    buffer. Matches are truncated at the chunk boundary.
//! 3. **Seam stitching** (`diff.stitch` span) — a serial pass merges the
//!    per-chunk segments into one script: the last copy before a seam is
//!    re-extended forward across the boundary (recovering matches the
//!    truncation split), the first copy after a seam is extended backward
//!    over pending literals (the correcting differ's reclaim, applied
//!    across chunks), and adjacent runs coalesce through
//!    [`ScriptBuilder`]. The `diff.seam_bytes` counter reports how many
//!    version bytes stitching re-covered.
//!
//! Compression: a seam can only lose bytes where a chunk's fresh scan
//! resynchronizes differently than the serial scan would have, and
//! stitching re-extends through the common case (a match straddling the
//! boundary). The documented bound — checked by `tests/parallel_diff.rs`
//! and the `diff` fuzz oracle's bench gate — is `added_bytes(parallel) ≤
//! added_bytes(serial) + seams × 2 × seed_len` on non-adversarial inputs,
//! and the bench regression gate holds encoded parallel deltas within 2%
//! of serial on the experiment corpus.

use super::scratch::{self, DiffScratch, IndexScratch, Seg, EMPTY};
use super::{Differ, RollingHash, ScriptBuilder};
use crate::script::DeltaScript;
use std::ops::Range;

/// Default version-chunk size for the parallel scan. Small enough that
/// the 512 KiB experiment corpus fans out across 8 workers, large enough
/// that per-chunk overhead (rolling-hash warmup, one seam) is noise.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Versions smaller than this are scanned inline on the calling thread:
/// spawning workers to diff a few kilobytes costs more than the diff.
/// Chunk boundaries are unaffected, so the output does not change.
const INLINE_SCAN_BYTES: usize = 32 * 1024;

/// A differencing engine that can run under [`ParallelDiffer`]: its
/// reference index is built once into a [`DiffScratch`] and shared
/// immutably across concurrent chunk scans.
///
/// Implemented by [`GreedyDiffer`](super::GreedyDiffer),
/// [`OnePassDiffer`](super::OnePassDiffer) and
/// [`CorrectingDiffer`](super::CorrectingDiffer). The contract ties the
/// three methods together: `scan_chunk` over the full version range with
/// an index built by `build_index` must reproduce the engine's serial
/// scan decisions exactly, for any shard count.
pub trait IndexedDiffer: Differ + Sync {
    /// The shared immutable reference index the scan probes. Borrows the
    /// arena it was built into.
    type Index<'s>: Sync
    where
        Self: 's;

    /// Seed (minimum match) length.
    fn seed_len(&self) -> usize;

    /// Builds the reference index into `scratch`, partitioning
    /// construction across up to `shards` scoped threads. The resulting
    /// index must not depend on `shards`.
    fn build_index<'s>(
        &self,
        reference: &[u8],
        shards: usize,
        scratch: &'s mut IndexScratch,
    ) -> Self::Index<'s>;

    /// Scans `version[range]` against the index, appending [`Seg`]s that
    /// exactly tile the range. Matches may be *verified* against bytes
    /// beyond `range.end` but must be truncated at it.
    fn scan_chunk(
        &self,
        index: &Self::Index<'_>,
        reference: &[u8],
        version: &[u8],
        range: Range<usize>,
        segs: &mut Vec<Seg>,
    );
}

/// Shared footprint-table index (one-pass and correcting differs).
///
/// `lasts` is empty for the one-pass differ, which keeps only the
/// first-writer candidate.
pub struct FootprintIndex<'s> {
    firsts: &'s [u32],
    lasts: &'s [u32],
    mask: u64,
}

impl FootprintIndex<'_> {
    /// First reference offset whose footprint landed in `hash`'s slot,
    /// or [`EMPTY`].
    #[inline]
    pub(crate) fn first(&self, hash: u64) -> u32 {
        self.firsts[(hash & self.mask) as usize]
    }

    /// Most recent reference offset for `hash`'s slot, or [`EMPTY`].
    /// Only meaningful when built with `with_lasts`.
    #[inline]
    pub(crate) fn last(&self, hash: u64) -> u32 {
        self.lasts[(hash & self.mask) as usize]
    }
}

/// Builds the footprint table shared by the constant-space differs.
///
/// Serial semantics per slot — `first` is the smallest reference offset
/// hashing there, `last` the largest — are order-free, so the parallel
/// build shards by *slot range*: each worker scans the whole reference
/// and stores only the slots it owns, via disjoint `&mut` slices.
pub(crate) fn build_footprint_index<'s>(
    reference: &[u8],
    seed_len: usize,
    table_bits: u32,
    with_lasts: bool,
    shards: usize,
    scratch: &'s mut IndexScratch,
) -> FootprintIndex<'s> {
    let size = 1usize << table_bits;
    let mask = (size - 1) as u64;
    scratch.firsts.clear();
    scratch.firsts.resize(size, EMPTY);
    scratch.lasts.clear();
    if with_lasts {
        scratch.lasts.resize(size, EMPTY);
    }
    if reference.len() >= seed_len {
        let last = reference.len() - seed_len;
        let shards = shards.clamp(1, size);
        let fill = |slot_lo: usize, firsts: &mut [u32], mut lasts: Option<&mut [u32]>| {
            let slot_hi = slot_lo + firsts.len();
            let mut h = RollingHash::new(&reference[..seed_len]);
            for i in 0..=last {
                if i > 0 {
                    h.roll(reference[i - 1], reference[i + seed_len - 1]);
                }
                let slot = (h.hash() & mask) as usize;
                if slot < slot_lo || slot >= slot_hi {
                    continue;
                }
                if firsts[slot - slot_lo] == EMPTY {
                    firsts[slot - slot_lo] = i as u32;
                }
                if let Some(lasts) = lasts.as_deref_mut() {
                    lasts[slot - slot_lo] = i as u32;
                }
            }
        };
        if shards == 1 {
            fill(
                0,
                &mut scratch.firsts,
                with_lasts.then_some(&mut scratch.lasts),
            );
        } else {
            let per = size.div_ceil(shards);
            let fill = &fill;
            let mut lasts_slices: Vec<Option<&mut [u32]>> = if with_lasts {
                scratch.lasts.chunks_mut(per).map(Some).collect()
            } else {
                (0..shards).map(|_| None).collect()
            };
            std::thread::scope(|s| {
                for (t, firsts) in scratch.firsts.chunks_mut(per).enumerate() {
                    let lasts = lasts_slices[t].take();
                    s.spawn(move || fill(t * per, firsts, lasts));
                }
            });
        }
    }
    FootprintIndex {
        firsts: &scratch.firsts,
        lasts: &scratch.lasts,
        mask,
    }
}

/// Runs a differ serially through the shared-index machinery: one chunk,
/// one shard, segments emitted straight into the script. This is the code
/// path behind every engine's plain [`Differ::diff`], which is what routes
/// the serial differs through the reusable arena.
pub(super) fn diff_serial<D: IndexedDiffer>(
    differ: &D,
    scratch: &mut DiffScratch,
    reference: &[u8],
    version: &[u8],
) -> DeltaScript {
    let source_len = reference.len() as u64;
    let DiffScratch { index, segs, pool } = scratch;
    let mut builder = ScriptBuilder::from_pool(pool);
    if version.len() < differ.seed_len() || reference.len() < differ.seed_len() {
        builder.push_literal(version);
        return builder.finish_into_pool(source_len, pool);
    }
    let idx = differ.build_index(reference, 1, index);
    if segs.is_empty() {
        segs.push(Vec::new());
    }
    let buf = &mut segs[0];
    buf.clear();
    differ.scan_chunk(&idx, reference, version, 0..version.len(), buf);
    let mut pos = 0usize;
    for seg in buf.iter() {
        match *seg {
            Seg::Literal { len } => {
                builder.push_literal(&version[pos..pos + len as usize]);
                pos += len as usize;
            }
            Seg::Copy { from, len } => {
                builder.push_copy(from, len);
                pos += len as usize;
            }
        }
    }
    debug_assert_eq!(pos, version.len());
    builder.finish_into_pool(source_len, pool)
}

/// Parallel wrapper around an [`IndexedDiffer`].
///
/// Produces scripts that satisfy the same invariant as the wrapped engine
/// (`apply(diff(r, v), r) == v`, write-ordered, exactly tiling) and —
/// because chunk boundaries depend only on the version length — the
/// *identical* script for every thread count, including 1.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::{Differ, GreedyDiffer, ParallelDiffer};
/// use ipr_delta::apply;
///
/// let r: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
/// let mut v = r.clone();
/// v[100_000] ^= 0xff;
/// let differ = ParallelDiffer::new(GreedyDiffer::default()).with_threads(2);
/// let script = differ.diff(&r, &v);
/// assert_eq!(apply(&script, &r).unwrap(), v);
/// ```
#[derive(Clone, Debug)]
pub struct ParallelDiffer<D> {
    inner: D,
    threads: usize,
    chunk_bytes: usize,
}

impl<D: IndexedDiffer> ParallelDiffer<D> {
    /// Wraps `inner` with automatic thread count and the default chunk
    /// size.
    #[must_use]
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            threads: 0,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }

    /// Sets the worker thread count; `0` means
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the scan chunk size. Smaller chunks expose more parallelism
    /// and more seams; the output changes (deterministically) with this
    /// knob, never with the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes == 0`.
    #[must_use]
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// The wrapped serial engine.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The worker count actually used: `threads`, or the host's available
    /// parallelism when `threads == 0` (minimum 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Diffs `version` against `reference` using an explicit arena —
    /// the zero-allocation serving entry point.
    #[must_use]
    pub fn diff_with(
        &self,
        scratch: &mut DiffScratch,
        reference: &[u8],
        version: &[u8],
    ) -> DeltaScript {
        let _span = ipr_trace::span("diff");
        ipr_trace::with(|r| {
            r.add("diff.reference_bytes", reference.len() as u64);
            r.add("diff.version_bytes", version.len() as u64);
        });
        let source_len = reference.len() as u64;
        let seed_len = self.inner.seed_len();
        let DiffScratch { index, segs, pool } = scratch;
        if version.len() < seed_len || reference.len() < seed_len {
            let mut builder = ScriptBuilder::from_pool(pool);
            builder.push_literal(version);
            return builder.finish_into_pool(source_len, pool);
        }
        let nchunks = version.len().div_ceil(self.chunk_bytes);
        let threads = self.effective_threads().min(nchunks).max(1);
        ipr_trace::with(|r| {
            r.gauge("diff.threads", threads as u64);
            r.add("diff.chunks", nchunks as u64);
        });

        let idx = {
            let _span = ipr_trace::span("diff.index_build");
            // Sharding the build of a small reference costs more in thread
            // spawns than it saves; the index content is shard-invariant,
            // so this only changes execution, never output.
            let build_shards = if reference.len() < INLINE_SCAN_BYTES {
                1
            } else {
                threads
            };
            self.inner.build_index(reference, build_shards, index)
        };

        {
            let _span = ipr_trace::span("diff.scan");
            if segs.len() < nchunks {
                segs.resize_with(nchunks, Vec::new);
            }
            for buf in segs[..nchunks].iter_mut() {
                buf.clear();
            }
            let chunk_bytes = self.chunk_bytes;
            let chunk_range = |k: usize| -> Range<usize> {
                k * chunk_bytes..((k + 1) * chunk_bytes).min(version.len())
            };
            if threads == 1 || version.len() < INLINE_SCAN_BYTES {
                for (k, buf) in segs[..nchunks].iter_mut().enumerate() {
                    self.inner
                        .scan_chunk(&idx, reference, version, chunk_range(k), buf);
                }
            } else {
                let per = nchunks.div_ceil(threads);
                let idx = &idx;
                let inner = &self.inner;
                let chunk_range = &chunk_range;
                std::thread::scope(|s| {
                    for (t, bufs) in segs[..nchunks].chunks_mut(per).enumerate() {
                        s.spawn(move || {
                            for (j, buf) in bufs.iter_mut().enumerate() {
                                let k = t * per + j;
                                inner.scan_chunk(idx, reference, version, chunk_range(k), buf);
                            }
                        });
                    }
                });
            }
        }

        let _span = ipr_trace::span("diff.stitch");
        let (script, seam_bytes) =
            stitch(reference, version, self.chunk_bytes, &segs[..nchunks], pool);
        ipr_trace::add("diff.seam_bytes", seam_bytes);
        script
    }
}

impl<D: IndexedDiffer> Differ for ParallelDiffer<D> {
    fn diff(&self, reference: &[u8], version: &[u8]) -> DeltaScript {
        scratch::with_thread_scratch(|scratch| self.diff_with(scratch, reference, version))
    }

    fn name(&self) -> &'static str {
        match self.inner.name() {
            "greedy" => "parallel-greedy",
            "one-pass" => "parallel-one-pass",
            "correcting" => "parallel-correcting",
            _ => "parallel",
        }
    }
}

/// Merges per-chunk segments into the final script, re-extending matches
/// across seams. Returns the script and the number of version bytes the
/// seam extensions re-covered.
fn stitch(
    reference: &[u8],
    version: &[u8],
    chunk_bytes: usize,
    chunks: &[Vec<Seg>],
    pool: &mut crate::ScriptPool,
) -> (DeltaScript, u64) {
    let mut builder = ScriptBuilder::from_pool(pool);
    let mut v = 0usize; // absolute version cursor
                        // Reference offset one past the most recently pushed copy, while no
                        // literal has been pushed since (the forward-extension anchor).
    let mut last_copy_end: Option<u64> = None;
    let mut seam_bytes = 0u64;
    for (k, segs) in chunks.iter().enumerate() {
        let start = k * chunk_bytes;
        // Forward seam extension: continue the pre-seam copy while bytes
        // keep matching — this rejoins matches the chunk cut truncated.
        if k > 0 && v == start {
            if let Some(r) = last_copy_end {
                let ext =
                    super::kernel::common_prefix(&version[v..], &reference[r as usize..]) as u64;
                if ext > 0 {
                    builder.push_copy(r, ext);
                    v += ext as usize;
                    last_copy_end = Some(r + ext);
                    seam_bytes += ext;
                }
            }
        }
        // Bytes of this chunk already covered by a previous seam
        // extension; trim them off the front of the chunk's segments.
        let mut skip = (v.saturating_sub(start)) as u64;
        let mut seam_copy = k > 0; // first copy after the seam
        for seg in segs {
            match *seg {
                Seg::Literal { len } => {
                    let trimmed = skip.min(len);
                    skip -= trimmed;
                    let len = (len - trimmed) as usize;
                    if len == 0 {
                        continue;
                    }
                    builder.push_literal(&version[v..v + len]);
                    v += len;
                    last_copy_end = None;
                }
                Seg::Copy { from, len } => {
                    let trimmed = skip.min(len);
                    skip -= trimmed;
                    let (mut from, len) = (from + trimmed, len - trimmed);
                    if len == 0 {
                        continue;
                    }
                    let mut push_len = len;
                    if seam_copy && builder.pending_len() > 0 {
                        // Backward seam extension: reclaim pending
                        // literals (possibly from earlier chunks) that
                        // match the bytes just before this copy's source.
                        let reclaimable = builder.pending_len().min(from as usize).min(v);
                        let back = super::kernel::common_suffix(
                            &reference[from as usize - reclaimable..from as usize],
                            &version[v - reclaimable..v],
                        );
                        if back > 0 {
                            builder.reclaim_pending(back);
                            from -= back as u64;
                            push_len += back as u64;
                            seam_bytes += back as u64;
                        }
                    }
                    seam_copy = false;
                    builder.push_copy(from, push_len);
                    last_copy_end = Some(from + push_len);
                    v += len as usize;
                }
            }
        }
    }
    debug_assert_eq!(v, version.len(), "chunk segments must tile the version");
    (
        builder.finish_into_pool(reference.len() as u64, pool),
        seam_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;
    use crate::diff::{CorrectingDiffer, GreedyDiffer, OnePassDiffer};

    fn pair(len: usize) -> (Vec<u8>, Vec<u8>) {
        let reference: Vec<u8> = (0..len as u32).map(|i| (i * 17 % 251) as u8).collect();
        let mut version = reference.clone();
        for pos in [len / 7, len / 3, len / 2, 5 * len / 6] {
            version[pos] ^= 0x5a;
        }
        version.splice(len / 4..len / 4, (0..40u8).map(|b| b ^ 0xc3));
        (reference, version)
    }

    fn check_all<D: IndexedDiffer + Clone>(inner: D) {
        let (reference, version) = pair(10_000);
        let serial = inner.diff(&reference, &version);
        let mut scripts = Vec::new();
        for threads in [1usize, 2, 3, 8] {
            let differ = ParallelDiffer::new(inner.clone())
                .with_threads(threads)
                .with_chunk_bytes(1024);
            let script = differ.diff(&reference, &version);
            assert_eq!(
                apply(&script, &reference).unwrap(),
                version,
                "{} threads={threads}",
                differ.name()
            );
            scripts.push(script);
        }
        // Identical output for every thread count.
        for script in &scripts[1..] {
            assert_eq!(script.commands(), scripts[0].commands());
        }
        // Seam bound: 10 chunks → 9 seams.
        let seams = 9u64;
        assert!(
            scripts[0].added_bytes() <= serial.added_bytes() + seams * 2 * inner.seed_len() as u64,
            "parallel added {} vs serial {}",
            scripts[0].added_bytes(),
            serial.added_bytes()
        );
    }

    #[test]
    fn parallel_matches_serial_result_for_every_engine() {
        check_all(GreedyDiffer::default());
        check_all(OnePassDiffer::default());
        check_all(CorrectingDiffer::default());
    }

    #[test]
    fn single_chunk_is_bit_identical_to_serial() {
        let (reference, version) = pair(4_000);
        for threads in [1usize, 4] {
            let inner = GreedyDiffer::default();
            let serial = inner.diff(&reference, &version);
            let parallel = ParallelDiffer::new(inner)
                .with_threads(threads)
                .with_chunk_bytes(1 << 20)
                .diff(&reference, &version);
            assert_eq!(serial.commands(), parallel.commands());
        }
    }

    #[test]
    fn one_byte_chunks_still_tile() {
        let (reference, version) = pair(400);
        let differ = ParallelDiffer::new(OnePassDiffer::new(4, 10))
            .with_threads(3)
            .with_chunk_bytes(1);
        let script = differ.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
    }

    #[test]
    fn degenerate_inputs() {
        let differ = ParallelDiffer::new(GreedyDiffer::default()).with_threads(4);
        for (r, v) in [
            (&b""[..], &b""[..]),
            (&b""[..], &b"entirely new data, no reference"[..]),
            (&b"everything deleted"[..], &b""[..]),
            (&b"tiny"[..], &b"tiny"[..]),
        ] {
            let script = differ.diff(r, v);
            assert_eq!(apply(&script, r).unwrap(), v);
        }
    }

    #[test]
    fn identical_inputs_stitch_back_to_one_copy() {
        // Non-repeating data: every seed window is unique, so the greedy
        // probe limit cannot hide the full-length match at offset 0.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let differ = ParallelDiffer::new(GreedyDiffer::default()).with_threads(4);
        let script = differ.diff(&data, &data);
        // Seam stitching must merge the per-chunk copies back together.
        assert_eq!(script.copy_count(), 1, "{script:?}");
        assert_eq!(script.added_bytes(), 0);
    }

    #[test]
    fn names_report_the_wrapped_engine() {
        assert_eq!(
            ParallelDiffer::new(GreedyDiffer::default()).name(),
            "parallel-greedy"
        );
        assert_eq!(
            ParallelDiffer::new(OnePassDiffer::default()).name(),
            "parallel-one-pass"
        );
        assert_eq!(
            ParallelDiffer::new(CorrectingDiffer::default()).name(),
            "parallel-correcting"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_rejected() {
        let _ = ParallelDiffer::new(GreedyDiffer::default()).with_chunk_bytes(0);
    }

    #[test]
    fn recycling_scripts_into_the_pool_keeps_output_identical() {
        let (reference, version) = pair(5_000);
        let differ = ParallelDiffer::new(GreedyDiffer::default())
            .with_threads(2)
            .with_chunk_bytes(1024);
        let baseline = differ.diff_with(&mut DiffScratch::new(), &reference, &version);
        let mut scratch = DiffScratch::new();
        for _ in 0..3 {
            let script = differ.diff_with(&mut scratch, &reference, &version);
            assert_eq!(script, baseline);
            scratch.pool_mut().recycle(script);
        }
        assert!(scratch.pool_mut().spare_commands() > 0);
    }

    #[test]
    fn explicit_scratch_is_reusable_across_engines() {
        let mut scratch = DiffScratch::new();
        let (reference, version) = pair(5_000);
        let g = ParallelDiffer::new(GreedyDiffer::default()).with_threads(2);
        let c = ParallelDiffer::new(CorrectingDiffer::default()).with_threads(2);
        for _ in 0..3 {
            let sg = g.diff_with(&mut scratch, &reference, &version);
            let sc = c.diff_with(&mut scratch, &reference, &version);
            assert_eq!(apply(&sg, &reference).unwrap(), version);
            assert_eq!(apply(&sc, &reference).unwrap(), version);
        }
    }
}

//! `ipr` — create, convert, inspect and apply in-place reconstructible
//! delta files.
//!
//! ```text
//! ipr diff <reference> <version> <delta>      create a delta file
//! ipr convert <reference> <delta> <out>       post-process for in-place
//! ipr apply <reference> <delta> <out>         scratch-space apply
//! ipr apply-in-place <file> <delta>           rebuild <file> in place
//!                    [--threads N] [--read-mode snapshot|zero-copy]
//! ipr info <delta>                            print header and statistics
//! ipr verify <delta>                          check Equation 2 safety
//! ipr install <image> <delta> [--stream]      simulated OTA install with
//!             [--kill-at N] [--state FILE]    resumable streaming
//! ipr store <init|put|get|log|compact|fsck>   versioned delta object store
//! ```
//!
//! Every subcommand also accepts `--stats` (human-readable per-phase
//! report on stderr), `--stats=json` (the stable `ipr-stats/1` JSON on
//! stderr) and `--stats-out <file>` (the JSON written to a file); see
//! `docs/OBSERVABILITY.md` for the span/counter name contract.
//!
//! Each `cmd_*` function is a thin wrapper over
//! [`engine_cli::EngineCli`] — shared flag parsing and file/delta IO —
//! and an [`ipr_pipeline::Engine`] session that owns the pipeline's
//! scratch state for the duration of the command.

mod engine_cli;
mod install_cli;
mod store_cli;
#[cfg(test)]
mod tests;

use engine_cli::EngineCli;
use ipr_core::check_in_place_safe;
use ipr_delta::codec::{self, Format};
use ipr_delta::diff::{CorrectingDiffer, GreedyDiffer, IndexedDiffer, OnePassDiffer};
use ipr_delta::remote::{CrcReader, Signature};
use ipr_delta::stats::ScriptStats;
use ipr_delta::DeltaScript;
use ipr_pipeline::Engine;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ipr: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// What `--stats[=json]` / `--stats-out <file>` asked for.
struct StatsOptions {
    enabled: bool,
    json: bool,
    out: Option<String>,
}

impl StatsOptions {
    /// Strips the stats flags out of `args`. They apply to every
    /// subcommand, so the per-command option parsers never see them.
    fn extract(args: &[String]) -> Result<(Self, Vec<String>), String> {
        let mut opts = Self {
            enabled: false,
            json: false,
            out: None,
        };
        let mut rest = Vec::with_capacity(args.len());
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--stats" => opts.enabled = true,
                "--stats=json" => {
                    opts.enabled = true;
                    opts.json = true;
                }
                "--stats-out" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("option --stats-out requires a file path")?;
                    opts.enabled = true;
                    opts.json = true;
                    opts.out = Some(v.clone());
                    i += 1;
                }
                _ => rest.push(args[i].clone()),
            }
            i += 1;
        }
        Ok((opts, rest))
    }

    /// Emits `report` where the flags asked for it.
    fn emit(&self, report: &ipr_trace::StatsReport) -> CliResult {
        match (&self.out, self.json) {
            (Some(path), _) => std::fs::write(path, report.to_json() + "\n")?,
            (None, true) => eprintln!("{}", report.to_json()),
            (None, false) => eprint!("{report}"),
        }
        Ok(())
    }
}

fn run(args: &[String]) -> CliResult {
    let (stats, args) = StatsOptions::extract(args)?;
    if !stats.enabled {
        return dispatch(&args);
    }
    let recorder = std::sync::Arc::new(ipr_trace::StatsRecorder::new());
    let guard = ipr_trace::install(recorder.clone());
    let result = dispatch(&args);
    drop(guard);
    stats.emit(&recorder.report())?;
    result
}

fn dispatch(args: &[String]) -> CliResult {
    let Some(cmd) = args.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "diff" => cmd_diff(rest),
        "signature" => cmd_signature(rest),
        "convert" => cmd_convert(rest),
        "apply" => cmd_apply(rest),
        "apply-in-place" => cmd_apply_in_place(rest),
        "info" => cmd_info(rest),
        "compose" => cmd_compose(rest),
        "stats" => cmd_stats(rest),
        "dump" => cmd_dump(rest),
        "verify" => cmd_verify(rest),
        "fuzz" => cmd_fuzz(rest),
        "install" => install_cli::cmd_install(rest),
        "store" => store_cli::cmd_store(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `ipr help`)").into()),
    }
}

fn print_usage() {
    eprintln!(
        "usage: ipr <subcommand> [...]\n\
         \n\
         subcommands:\n\
         \x20 diff <reference> <version> <delta>  [--differ greedy|one-pass|correcting]\n\
         \x20      [--threads N] [--format F]     (--threads: parallel diff; 0 = all cores)\n\
         \x20 diff --signature <sig> <version> <delta>  [--format F]\n\
         \x20      (remote diff: stream <version> against a signature, reference not needed)\n\
         \x20 signature <reference> <sig>    [--block N | --cdc MIN:AVG:MAX |\n\
         \x20      --block-size N|auto[:BYTES]]   (block signature for remote diffing;\n\
         \x20      auto sizes blocks so the signature fits a byte budget, default 512 KiB)\n\
         \x20 convert <reference> <delta> <out>   [--policy constant|local-min] [--format F]\n\
         \x20 apply <reference> <delta> <out>\n\
         \x20 apply-in-place <file> <delta>  [--threads N] [--read-mode snapshot|zero-copy]\n\
         \x20 info <delta>\n\
         \x20 compose <delta-1-2> <delta-2-3> <out>  [--format F]\n\
         \x20 stats <delta> [--dot <file>]   (CRWI conflict-graph analysis)\n\
         \x20 dump <delta>           (list every command)\n\
         \x20 verify <delta>\n\
         \x20 fuzz  [--oracle all|codec|convert|crwi|diff|engine|remote|store|streaming]\n\
         \x20       [--seed S] [--iters N] [--shrink on|off]\n\
         \x20       (differential fuzzing; failures print a seed)\n\
         \x20 install <image> <delta>  [--stream] [--channel dialup|isdn|cellular]\n\
         \x20       [--loss RATE] [--seed S] [--chunk BYTES] [--mtu BYTES]\n\
         \x20       [--kill-at N] [--state FILE]\n\
         \x20       (simulated OTA install; --stream applies while downloading and\n\
         \x20       --kill-at/--state survive a power cut via resumable checkpoints)\n\
         \x20 store <init|put|get|log|compact|fsck> <dir> [...]\n\
         \x20       (versioned delta object store: crash-safe transactions, chain compaction)\n\
         \n\
         every subcommand accepts: --stats | --stats=json | --stats-out <file>\n\
         \x20 (per-phase spans/counters report, printed to stderr or written as JSON)\n\
         \n\
         formats F: ordered | in-place | paper-ordered | paper-in-place | improved"
    );
}

fn cmd_diff(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    cli.config_mut().format = Format::Ordered; // plain deltas by default
    cli.take_format()?;
    cli.take_threads()?;
    if let Some(signature_path) = cli.take("signature") {
        return cmd_diff_signature(cli, &signature_path);
    }
    let differ = cli.take("differ").unwrap_or_else(|| "greedy".to_string());
    cli.finish_options()?;
    let [reference_path, version_path, delta_path] =
        cli.positional("usage: ipr diff <reference> <version> <delta>")?;
    let reference = std::fs::read(reference_path)?;
    let version = std::fs::read(version_path)?;
    let (script, bytes) = match differ.as_str() {
        "greedy" => diff_stage(
            cli.engine_with(GreedyDiffer::default()),
            &reference,
            &version,
        )?,
        "one-pass" => diff_stage(
            cli.engine_with(OnePassDiffer::default()),
            &reference,
            &version,
        )?,
        "correcting" => diff_stage(
            cli.engine_with(CorrectingDiffer::default()),
            &reference,
            &version,
        )?,
        other => return Err(format!("unknown differ `{other}`").into()),
    };
    std::fs::write(delta_path, &bytes)?;
    println!(
        "{} -> {}: {} B delta for {} B version ({:.1}%), {}",
        reference_path,
        version_path,
        bytes.len(),
        version.len(),
        100.0 * bytes.len() as f64 / version.len().max(1) as f64,
        ScriptStats::of(&script)
    );
    Ok(())
}

/// `ipr diff --signature <sig> <version> <delta>`: remote diff. The
/// version streams through the generator against the decoded signature
/// — the reference is never opened (it lives wherever the signature was
/// built) and the version is never held in memory. A [`CrcReader`] tee
/// computes the target CRC during the same pass so the emitted delta
/// carries the usual integrity trailer.
fn cmd_diff_signature(cli: EngineCli, signature_path: &str) -> CliResult {
    cli.finish_options()?;
    let [version_path, delta_path] =
        cli.positional("usage: ipr diff --signature <sig> <version> <delta>")?;
    let signature = Signature::decode(&std::fs::read(signature_path)?)?;
    let mut version = CrcReader::new(BufReader::new(std::fs::File::open(version_path)?));
    let mut engine = cli.engine();
    let script = engine.remote_diff(&signature, &mut version)?;
    let bytes = codec::encode_with_crc(&script, engine.config().format, version.crc())?;
    std::fs::write(delta_path, &bytes)?;
    println!(
        "{} ({} blocks) ~ {}: {} B delta for {} B version ({:.1}%), {}",
        signature_path,
        signature.blocks().len(),
        version_path,
        bytes.len(),
        version.bytes_read(),
        100.0 * bytes.len() as f64 / (version.bytes_read().max(1)) as f64,
        ScriptStats::of(&script)
    );
    Ok(())
}

fn cmd_signature(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    cli.take_chunking()?;
    cli.finish_options()?;
    let [reference_path, sig_path] = cli.positional(
        "usage: ipr signature <reference> <sig> \
         [--block N | --cdc MIN:AVG:MAX | --block-size N|auto[:BYTES]]",
    )?;
    // `--block-size` resolves against the reference length (from the
    // file's metadata — the data itself still streams): `auto` picks the
    // smallest power-of-two block whose signature fits the byte budget.
    let chunking = match cli.config().block_size {
        Some(bs) => bs.chunking(std::fs::metadata(reference_path)?.len()),
        None => cli.config().chunking,
    };
    // Stream the reference through the chunker: the signature build
    // never holds more than one block window in memory.
    let reference = BufReader::new(std::fs::File::open(reference_path)?);
    let signature = Signature::build_streaming(reference, chunking)?;
    let encoded = signature.encode();
    std::fs::write(sig_path, &encoded)?;
    println!(
        "{}: {} blocks ({}) over {} B -> {} B signature ({:.2}%)",
        reference_path,
        signature.blocks().len(),
        signature.chunking(),
        signature.source_len(),
        encoded.len(),
        100.0 * encoded.len() as f64 / (signature.source_len().max(1)) as f64
    );
    Ok(())
}

/// The diff + encode half of the pipeline for one differ family.
fn diff_stage<D: IndexedDiffer>(
    mut engine: Engine<D>,
    reference: &[u8],
    version: &[u8],
) -> Result<(DeltaScript, Vec<u8>), Box<dyn std::error::Error>> {
    let script = engine.diff(reference, version);
    let bytes = codec::encode_checked(&script, engine.config().format, version)?;
    Ok((script, bytes))
}

fn cmd_convert(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    cli.take_policy()?;
    if let Some(format) = cli.take_format()? {
        if !format.supports_out_of_order() {
            return Err(format!("format `{format}` cannot carry in-place deltas").into());
        }
        cli.config_mut().conversion.cost_format = format;
    }
    cli.finish_options()?;
    let [reference_path, delta_path, out_path] =
        cli.positional("usage: ipr convert <reference> <delta> <out>")?;
    let reference = std::fs::read(reference_path)?;
    let decoded = EngineCli::read_delta(delta_path)?;
    // Re-apply up front to regenerate the target for checked encoding
    // (the conversion consumes the script).
    let target = match decoded.target_crc {
        Some(_) => Some(ipr_delta::apply(&decoded.script, &reference)?),
        None => None,
    };
    let mut engine = cli.engine();
    let outcome = engine.convert(decoded.script, &reference)?;
    let format = engine.config().format;
    let bytes = match &target {
        Some(target) => codec::encode_checked(&outcome.script, format, target)?,
        None => codec::encode(&outcome.script, format)?,
    };
    std::fs::write(out_path, &bytes)?;
    let r = &outcome.report;
    println!(
        "converted: {} copies, {} adds, {} edges, {} cycles broken, {} copies converted (+{} B)",
        r.input_copies,
        r.input_adds,
        r.edges,
        r.cycles_broken,
        r.copies_converted,
        r.conversion_cost
    );
    Ok(())
}

fn cmd_apply(args: &[String]) -> CliResult {
    let cli = EngineCli::parse(args)?;
    let [reference_path, delta_path, out_path] =
        cli.positional("usage: ipr apply <reference> <delta> <out>")?;
    let reference = std::fs::read(reference_path)?;
    let decoded = EngineCli::read_delta(delta_path)?;
    let target = match decoded.target_crc {
        Some(crc) => ipr_delta::apply_verified(&decoded.script, &reference, crc)?,
        None => ipr_delta::apply(&decoded.script, &reference)?,
    };
    std::fs::write(out_path, &target)?;
    println!("rebuilt {} B into {}", target.len(), out_path);
    Ok(())
}

fn cmd_apply_in_place(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    let threads = cli.take_threads()?;
    cli.take_read_mode()?;
    cli.finish_options()?;
    let [file_path, delta_path] =
        cli.positional("usage: ipr apply-in-place <file> <delta> [--threads N] [--read-mode M]")?;
    let decoded = EngineCli::read_delta(delta_path)?;
    check_in_place_safe(&decoded.script)?;
    let mut buf = std::fs::read(file_path)?;
    let needed = ipr_core::required_capacity(&decoded.script) as usize;
    buf.resize(buf.len().max(needed), 0);
    match threads {
        // Serial applier stays the default: a single thread needs none of
        // the wave planning.
        None | Some(1) => ipr_core::apply_in_place(&decoded.script, &mut buf)?,
        Some(_) => {
            let report = cli.engine().apply_in_place(&decoded.script, &mut buf)?;
            eprintln!(
                "parallel apply: {} waves ({} fanned out), {} threads, {} B snapshotted",
                report.waves, report.parallel_waves, report.threads, report.snapshot_bytes
            );
        }
    }
    buf.truncate(decoded.script.target_len() as usize);
    if let Some(crc) = decoded.target_crc {
        let actual = ipr_delta::checksum::crc32(&buf);
        if actual != crc {
            return Err(format!("crc mismatch: {actual:#010x} != {crc:#010x}").into());
        }
    }
    std::fs::write(file_path, &buf)?;
    println!("rebuilt {} in place ({} B)", file_path, buf.len());
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let cli = EngineCli::parse(args)?;
    let [delta_path] = cli.positional("usage: ipr info <delta>")?;
    let raw = std::fs::read(delta_path)?;
    let decoded = codec::decode(&raw)?;
    let s = &decoded.script;
    println!("format:       {}", decoded.format);
    println!("source bytes: {}", s.source_len());
    println!("target bytes: {}", s.target_len());
    println!("delta bytes:  {}", raw.len());
    println!("commands:     {}", ScriptStats::of(s));
    println!(
        "target crc32: {}",
        decoded
            .target_crc
            .map_or("absent".to_string(), |c| format!("{c:#010x}"))
    );
    println!(
        "in-place safe: {}",
        if ipr_core::is_in_place_safe(s) {
            "yes"
        } else {
            "no"
        }
    );
    Ok(())
}

fn cmd_compose(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    cli.config_mut().format = Format::Ordered;
    cli.take_format()?;
    cli.finish_options()?;
    let [first_path, second_path, out_path] =
        cli.positional("usage: ipr compose <delta-1-2> <delta-2-3> <out>")?;
    let format = cli.config().format;
    let first = EngineCli::read_delta(first_path)?;
    let second = EngineCli::read_delta(second_path)?;
    let composed = ipr_delta::compose(&first.script, &second.script)?;
    // The composed delta produces the second delta's target: its CRC
    // carries over verbatim.
    let bytes = match second.target_crc {
        Some(crc) => codec::encode_with_crc(&composed, format, crc)?,
        None => codec::encode(&composed, format)?,
    };
    std::fs::write(out_path, &bytes)?;
    println!(
        "composed {} ({} cmds) ∘ {} ({} cmds) -> {} ({} cmds, {} B)",
        first_path,
        first.script.len(),
        second_path,
        second.script.len(),
        out_path,
        composed.len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    let dot_path = cli.take("dot");
    cli.finish_options()?;
    let [delta_path] = cli.positional("usage: ipr stats <delta> [--dot <file>]")?;
    let decoded = EngineCli::read_delta(delta_path)?;
    let crwi = ipr_core::CrwiGraph::build(decoded.script.copies());
    if let Some(path) = dot_path {
        let copies = crwi.copies().to_vec();
        let dot = crwi.graph().to_dot(|v| format!("{}", copies[v as usize]));
        std::fs::write(&path, dot)?;
        println!("wrote conflict digraph to {path} (Graphviz DOT)");
    }
    let stats = ipr_core::CrwiStats::analyze(&crwi);
    println!("CRWI conflict digraph of {delta_path}:");
    println!("{stats}");
    if stats.acyclic {
        println!("=> reordering alone yields an in-place reconstructible delta");
    } else {
        println!(
            "=> cycle breaking will convert at most {} copies ({} B)",
            stats.vertices_on_cycles, stats.bytes_at_risk
        );
    }
    let mut engine = cli.engine();
    if let Some(plan) = engine.plan(&decoded.script) {
        println!(
            "parallel waves: {} (critical path) over {} commands, {:.1}x parallelism",
            plan.wave_count(),
            decoded.script.len(),
            plan.parallelism()
        );
    }
    Ok(())
}

fn cmd_dump(args: &[String]) -> CliResult {
    let cli = EngineCli::parse(args)?;
    let [delta_path] = cli.positional("usage: ipr dump <delta>")?;
    let decoded = EngineCli::read_delta(delta_path)?;
    println!(
        "# {} format, {} -> {} bytes, {} commands",
        decoded.format,
        decoded.script.source_len(),
        decoded.script.target_len(),
        decoded.script.len()
    );
    for (i, cmd) in decoded.script.commands().iter().enumerate() {
        println!("{i:6}  {cmd}");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    let cli = EngineCli::parse(args)?;
    let [delta_path] = cli.positional("usage: ipr verify <delta>")?;
    let decoded = EngineCli::read_delta(delta_path)?;
    match check_in_place_safe(&decoded.script) {
        Ok(()) => {
            println!("ok: delta satisfies Equation 2 (in-place reconstructible)");
            Ok(())
        }
        Err(v) => {
            let conflicts = ipr_core::list_wr_conflicts(&decoded.script, 5);
            for c in &conflicts {
                eprintln!("  conflict: {c}");
            }
            let total = ipr_core::count_wr_conflicts(&decoded.script);
            if total > conflicts.len() {
                eprintln!("  … and {} more", total - conflicts.len());
            }
            Err(format!("NOT in-place safe: {v}").into())
        }
    }
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    let mut config = ipr_fuzz::FuzzConfig::default();
    if let Some(seed) = cli.take("seed") {
        config.seed = ipr_fuzz::parse_seed(&seed)?;
    }
    if let Some(iters) = cli.take_with("iters", |v| {
        v.parse()
            .map_err(|_| format!("--iters needs a number, got `{v}`"))
    })? {
        config.iters = iters;
    }
    if let Some(oracle) = cli.take("oracle") {
        config.oracles = if oracle == "all" {
            ipr_fuzz::Oracle::ALL.to_vec()
        } else {
            vec![oracle.parse::<ipr_fuzz::Oracle>()?]
        };
    }
    if let Some(shrink) = cli.take_with("shrink", |v| match v {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err(format!("--shrink takes on|off, got `{v}`")),
    })? {
        config.shrink = shrink;
    }
    if let Some(max_failures) = cli.take_with("max-failures", |v| {
        v.parse()
            .map_err(|_| format!("--max-failures needs a number, got `{v}`"))
    })? {
        config.max_failures = max_failures;
    }
    cli.finish_options()?;
    cli.no_positional(
        "usage: ipr fuzz [--oracle all|codec|convert|crwi|diff|engine|remote|store|streaming] \
         [--seed S] [--iters N] [--shrink on|off] [--max-failures N]",
    )?;
    let report = ipr_fuzz::run(&config);
    for violation in &report.violations {
        eprintln!("{violation}");
    }
    let oracles: Vec<String> = config.oracles.iter().map(ToString::to_string).collect();
    println!(
        "fuzz: {} iteration(s) of [{}] from seed {}: {} violation(s)",
        report.iters_run,
        oracles.join(", "),
        config.seed,
        report.violations.len()
    );
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} oracle violation(s)", report.violations.len()).into())
    }
}

//! `ipr` — create, convert, inspect and apply in-place reconstructible
//! delta files.
//!
//! ```text
//! ipr diff <reference> <version> <delta>      create a delta file
//! ipr convert <reference> <delta> <out>       post-process for in-place
//! ipr apply <reference> <delta> <out>         scratch-space apply
//! ipr apply-in-place <file> <delta>           rebuild <file> in place
//!                    [--threads N] [--read-mode snapshot|zero-copy]
//! ipr info <delta>                            print header and statistics
//! ipr verify <delta>                          check Equation 2 safety
//! ```
//!
//! Every subcommand also accepts `--stats` (human-readable per-phase
//! report on stderr), `--stats=json` (the stable `ipr-stats/1` JSON on
//! stderr) and `--stats-out <file>` (the JSON written to a file); see
//! `docs/OBSERVABILITY.md` for the span/counter name contract.

use ipr_core::{check_in_place_safe, convert_to_in_place, ConversionConfig, CyclePolicy};
use ipr_delta::codec::{self, Format};
use ipr_delta::diff::{CorrectingDiffer, Differ, GreedyDiffer, OnePassDiffer, ParallelDiffer};
use ipr_delta::stats::ScriptStats;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ipr: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// What `--stats[=json]` / `--stats-out <file>` asked for.
struct StatsOptions {
    enabled: bool,
    json: bool,
    out: Option<String>,
}

impl StatsOptions {
    /// Strips the stats flags out of `args`. They apply to every
    /// subcommand, so the per-command option parsers never see them.
    fn extract(args: &[String]) -> Result<(Self, Vec<String>), String> {
        let mut opts = Self {
            enabled: false,
            json: false,
            out: None,
        };
        let mut rest = Vec::with_capacity(args.len());
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--stats" => opts.enabled = true,
                "--stats=json" => {
                    opts.enabled = true;
                    opts.json = true;
                }
                "--stats-out" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("option --stats-out requires a file path")?;
                    opts.enabled = true;
                    opts.json = true;
                    opts.out = Some(v.clone());
                    i += 1;
                }
                _ => rest.push(args[i].clone()),
            }
            i += 1;
        }
        Ok((opts, rest))
    }

    /// Emits `report` where the flags asked for it.
    fn emit(&self, report: &ipr_trace::StatsReport) -> CliResult {
        match (&self.out, self.json) {
            (Some(path), _) => std::fs::write(path, report.to_json() + "\n")?,
            (None, true) => eprintln!("{}", report.to_json()),
            (None, false) => eprint!("{report}"),
        }
        Ok(())
    }
}

fn run(args: &[String]) -> CliResult {
    let (stats, args) = StatsOptions::extract(args)?;
    if !stats.enabled {
        return dispatch(&args);
    }
    let recorder = std::sync::Arc::new(ipr_trace::StatsRecorder::new());
    let guard = ipr_trace::install(recorder.clone());
    let result = dispatch(&args);
    drop(guard);
    stats.emit(&recorder.report())?;
    result
}

fn dispatch(args: &[String]) -> CliResult {
    let Some(cmd) = args.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "diff" => cmd_diff(rest),
        "convert" => cmd_convert(rest),
        "apply" => cmd_apply(rest),
        "apply-in-place" => cmd_apply_in_place(rest),
        "info" => cmd_info(rest),
        "compose" => cmd_compose(rest),
        "stats" => cmd_stats(rest),
        "dump" => cmd_dump(rest),
        "verify" => cmd_verify(rest),
        "fuzz" => cmd_fuzz(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `ipr help`)").into()),
    }
}

fn print_usage() {
    eprintln!(
        "usage: ipr <subcommand> [...]\n\
         \n\
         subcommands:\n\
         \x20 diff <reference> <version> <delta>  [--differ greedy|one-pass|correcting]\n\
         \x20      [--threads N] [--format F]     (--threads: parallel diff; 0 = all cores)\n\
         \x20 convert <reference> <delta> <out>   [--policy constant|local-min] [--format F]\n\
         \x20 apply <reference> <delta> <out>\n\
         \x20 apply-in-place <file> <delta>  [--threads N] [--read-mode snapshot|zero-copy]\n\
         \x20 info <delta>\n\
         \x20 compose <delta-1-2> <delta-2-3> <out>  [--format F]\n\
         \x20 stats <delta> [--dot <file>]   (CRWI conflict-graph analysis)\n\
         \x20 dump <delta>           (list every command)\n\
         \x20 verify <delta>\n\
         \x20 fuzz  [--oracle all|codec|convert|crwi|diff] [--seed S] [--iters N] [--shrink on|off]\n\
         \x20       (differential fuzzing; failures print a seed that replays them)\n\
         \n\
         every subcommand accepts: --stats | --stats=json | --stats-out <file>\n\
         \x20 (per-phase spans/counters report, printed to stderr or written as JSON)\n\
         \n\
         formats F: ordered | in-place | paper-ordered | paper-in-place | improved"
    );
}

/// Positional arguments plus `--key value` option pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits positional arguments from `--key value` options.
fn parse_opts(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(key) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("option --{key} requires a value"))?;
            options.push((key, value.as_str()));
            i += 2;
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok((positional, options))
}

fn parse_format(name: &str) -> Result<Format, String> {
    Ok(match name {
        "ordered" => Format::Ordered,
        "in-place" => Format::InPlace,
        "paper-ordered" => Format::PaperOrdered,
        "paper-in-place" => Format::PaperInPlace,
        "improved" => Format::Improved,
        _ => return Err(format!("unknown format `{name}`")),
    })
}

fn parse_policy(name: &str) -> Result<CyclePolicy, String> {
    Ok(match name {
        "constant" | "constant-time" => CyclePolicy::ConstantTime,
        "local-min" | "locally-minimum" => CyclePolicy::LocallyMinimum,
        _ => return Err(format!("unknown policy `{name}`")),
    })
}

fn cmd_diff(args: &[String]) -> CliResult {
    let (pos, opts) = parse_opts(args)?;
    let [reference_path, version_path, delta_path] = pos[..] else {
        return Err("usage: ipr diff <reference> <version> <delta>".into());
    };
    let mut format = Format::Ordered;
    let mut differ_name = "greedy";
    let mut threads: Option<usize> = None;
    for (k, v) in opts {
        match k {
            "format" => format = parse_format(v)?,
            "differ" => {
                differ_name = match v {
                    "greedy" | "one-pass" | "correcting" => v,
                    _ => return Err(format!("unknown differ `{v}`").into()),
                }
            }
            "threads" => {
                threads = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--threads needs a number, got `{v}`"))?,
                );
            }
            _ => return Err(format!("unknown option --{k}").into()),
        }
    }
    // `--threads N` wraps the chosen engine in the parallel shared-index
    // differ (N = 0 sizes to the host); without it the serial engine runs.
    let differ: Box<dyn Differ> = match (differ_name, threads) {
        ("greedy", None) => Box::new(GreedyDiffer::default()),
        ("one-pass", None) => Box::new(OnePassDiffer::default()),
        ("correcting", None) => Box::new(CorrectingDiffer::default()),
        ("greedy", Some(n)) => {
            Box::new(ParallelDiffer::new(GreedyDiffer::default()).with_threads(n))
        }
        ("one-pass", Some(n)) => {
            Box::new(ParallelDiffer::new(OnePassDiffer::default()).with_threads(n))
        }
        ("correcting", Some(n)) => {
            Box::new(ParallelDiffer::new(CorrectingDiffer::default()).with_threads(n))
        }
        _ => unreachable!("differ name validated above"),
    };
    let reference = std::fs::read(reference_path)?;
    let version = std::fs::read(version_path)?;
    let script = differ.diff(&reference, &version);
    let bytes = codec::encode_checked(&script, format, &version)?;
    std::fs::write(delta_path, &bytes)?;
    println!(
        "{} -> {}: {} B delta for {} B version ({:.1}%), {}",
        reference_path,
        version_path,
        bytes.len(),
        version.len(),
        100.0 * bytes.len() as f64 / version.len().max(1) as f64,
        ScriptStats::of(&script)
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> CliResult {
    let (pos, opts) = parse_opts(args)?;
    let [reference_path, delta_path, out_path] = pos[..] else {
        return Err("usage: ipr convert <reference> <delta> <out>".into());
    };
    let mut config = ConversionConfig::default();
    let mut format = Format::InPlace;
    for (k, v) in opts {
        match k {
            "policy" => config.policy = parse_policy(v)?,
            "format" => {
                format = parse_format(v)?;
                if !format.supports_out_of_order() {
                    return Err(format!("format `{v}` cannot carry in-place deltas").into());
                }
                config.cost_format = format;
            }
            _ => return Err(format!("unknown option --{k}").into()),
        }
    }
    let reference = std::fs::read(reference_path)?;
    let decoded = codec::decode(&std::fs::read(delta_path)?)?;
    let outcome = convert_to_in_place(&decoded.script, &reference, &config)?;
    let bytes = match decoded.target_crc {
        Some(_) => {
            // Re-apply to regenerate the target for the checked encoding.
            let target = ipr_delta::apply(&decoded.script, &reference)?;
            codec::encode_checked(&outcome.script, format, &target)?
        }
        None => codec::encode(&outcome.script, format)?,
    };
    std::fs::write(out_path, &bytes)?;
    let r = &outcome.report;
    println!(
        "converted: {} copies, {} adds, {} edges, {} cycles broken, {} copies converted (+{} B)",
        r.input_copies,
        r.input_adds,
        r.edges,
        r.cycles_broken,
        r.copies_converted,
        r.conversion_cost
    );
    Ok(())
}

fn cmd_apply(args: &[String]) -> CliResult {
    let (pos, _) = parse_opts(args)?;
    let [reference_path, delta_path, out_path] = pos[..] else {
        return Err("usage: ipr apply <reference> <delta> <out>".into());
    };
    let reference = std::fs::read(reference_path)?;
    let decoded = codec::decode(&std::fs::read(delta_path)?)?;
    let target = match decoded.target_crc {
        Some(crc) => ipr_delta::apply_verified(&decoded.script, &reference, crc)?,
        None => ipr_delta::apply(&decoded.script, &reference)?,
    };
    std::fs::write(out_path, &target)?;
    println!("rebuilt {} B into {}", target.len(), out_path);
    Ok(())
}

fn cmd_apply_in_place(args: &[String]) -> CliResult {
    let (pos, opts) = parse_opts(args)?;
    let [file_path, delta_path] = pos[..] else {
        return Err(
            "usage: ipr apply-in-place <file> <delta> [--threads N] [--read-mode M]".into(),
        );
    };
    let mut threads: Option<usize> = None;
    let mut read_mode = ipr_core::ReadMode::default();
    for (k, v) in opts {
        match k {
            "threads" => {
                threads = Some(
                    v.parse()
                        .map_err(|_| format!("--threads needs a number, got `{v}`"))?,
                );
            }
            "read-mode" => {
                read_mode = match v {
                    "snapshot" => ipr_core::ReadMode::Snapshot,
                    "zero-copy" => ipr_core::ReadMode::ZeroCopy,
                    _ => return Err(format!("unknown read mode `{v}` (snapshot|zero-copy)").into()),
                };
            }
            _ => return Err(format!("unknown option --{k}").into()),
        }
    }
    let decoded = codec::decode(&std::fs::read(delta_path)?)?;
    check_in_place_safe(&decoded.script)?;
    let mut buf = std::fs::read(file_path)?;
    let needed = ipr_core::required_capacity(&decoded.script) as usize;
    buf.resize(buf.len().max(needed), 0);
    match threads {
        // Serial applier stays the default: a single thread needs none of
        // the wave planning.
        None | Some(1) => ipr_core::apply_in_place(&decoded.script, &mut buf)?,
        Some(n) => {
            let config = ipr_core::ParallelConfig {
                threads: n,
                read_mode,
                ..ipr_core::ParallelConfig::default()
            };
            let report = ipr_core::apply_in_place_parallel(&decoded.script, &mut buf, &config)?;
            eprintln!(
                "parallel apply: {} waves ({} fanned out), {} threads, {} B snapshotted",
                report.waves, report.parallel_waves, report.threads, report.snapshot_bytes
            );
        }
    }
    buf.truncate(decoded.script.target_len() as usize);
    if let Some(crc) = decoded.target_crc {
        let actual = ipr_delta::checksum::crc32(&buf);
        if actual != crc {
            return Err(format!("crc mismatch: {actual:#010x} != {crc:#010x}").into());
        }
    }
    std::fs::write(file_path, &buf)?;
    println!("rebuilt {} in place ({} B)", file_path, buf.len());
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let (pos, _) = parse_opts(args)?;
    let [delta_path] = pos[..] else {
        return Err("usage: ipr info <delta>".into());
    };
    let raw = std::fs::read(delta_path)?;
    let decoded = codec::decode(&raw)?;
    let s = &decoded.script;
    println!("format:       {}", decoded.format);
    println!("source bytes: {}", s.source_len());
    println!("target bytes: {}", s.target_len());
    println!("delta bytes:  {}", raw.len());
    println!("commands:     {}", ScriptStats::of(s));
    println!(
        "target crc32: {}",
        decoded
            .target_crc
            .map_or("absent".to_string(), |c| format!("{c:#010x}"))
    );
    println!(
        "in-place safe: {}",
        if ipr_core::is_in_place_safe(s) {
            "yes"
        } else {
            "no"
        }
    );
    Ok(())
}

fn cmd_compose(args: &[String]) -> CliResult {
    let (pos, opts) = parse_opts(args)?;
    let [first_path, second_path, out_path] = pos[..] else {
        return Err("usage: ipr compose <delta-1-2> <delta-2-3> <out>".into());
    };
    let mut format = Format::Ordered;
    for (k, v) in opts {
        match k {
            "format" => format = parse_format(v)?,
            _ => return Err(format!("unknown option --{k}").into()),
        }
    }
    let first = codec::decode(&std::fs::read(first_path)?)?;
    let second = codec::decode(&std::fs::read(second_path)?)?;
    let composed = ipr_delta::compose(&first.script, &second.script)?;
    // The composed delta produces the second delta's target: its CRC
    // carries over verbatim.
    let bytes = match second.target_crc {
        Some(crc) => codec::encode_with_crc(&composed, format, crc)?,
        None => codec::encode(&composed, format)?,
    };
    std::fs::write(out_path, &bytes)?;
    println!(
        "composed {} ({} cmds) ∘ {} ({} cmds) -> {} ({} cmds, {} B)",
        first_path,
        first.script.len(),
        second_path,
        second.script.len(),
        out_path,
        composed.len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let (pos, opts) = parse_opts(args)?;
    let [delta_path] = pos[..] else {
        return Err("usage: ipr stats <delta> [--dot <file>]".into());
    };
    let mut dot_path = None;
    for (k, v) in opts {
        match k {
            "dot" => dot_path = Some(v.to_string()),
            _ => return Err(format!("unknown option --{k}").into()),
        }
    }
    let decoded = codec::decode(&std::fs::read(delta_path)?)?;
    let crwi = ipr_core::CrwiGraph::build(decoded.script.copies());
    if let Some(path) = dot_path {
        let copies = crwi.copies().to_vec();
        let dot = crwi.graph().to_dot(|v| format!("{}", copies[v as usize]));
        std::fs::write(&path, dot)?;
        println!("wrote conflict digraph to {path} (Graphviz DOT)");
    }
    let stats = ipr_core::CrwiStats::analyze(&crwi);
    println!("CRWI conflict digraph of {delta_path}:");
    println!("{stats}");
    if stats.acyclic {
        println!("=> reordering alone yields an in-place reconstructible delta");
    } else {
        println!(
            "=> cycle breaking will convert at most {} copies ({} B)",
            stats.vertices_on_cycles, stats.bytes_at_risk
        );
    }
    if let Some(plan) = ipr_core::ParallelSchedule::plan(&decoded.script) {
        println!(
            "parallel waves: {} (critical path) over {} commands, {:.1}x parallelism",
            plan.wave_count(),
            decoded.script.len(),
            plan.parallelism()
        );
    }
    Ok(())
}

fn cmd_dump(args: &[String]) -> CliResult {
    let (pos, _) = parse_opts(args)?;
    let [delta_path] = pos[..] else {
        return Err("usage: ipr dump <delta>".into());
    };
    let decoded = codec::decode(&std::fs::read(delta_path)?)?;
    println!(
        "# {} format, {} -> {} bytes, {} commands",
        decoded.format,
        decoded.script.source_len(),
        decoded.script.target_len(),
        decoded.script.len()
    );
    for (i, cmd) in decoded.script.commands().iter().enumerate() {
        println!("{i:6}  {cmd}");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    let (pos, _) = parse_opts(args)?;
    let [delta_path] = pos[..] else {
        return Err("usage: ipr verify <delta>".into());
    };
    let decoded = codec::decode(&std::fs::read(delta_path)?)?;
    match check_in_place_safe(&decoded.script) {
        Ok(()) => {
            println!("ok: delta satisfies Equation 2 (in-place reconstructible)");
            Ok(())
        }
        Err(v) => {
            let conflicts = ipr_core::list_wr_conflicts(&decoded.script, 5);
            for c in &conflicts {
                eprintln!("  conflict: {c}");
            }
            let total = ipr_core::count_wr_conflicts(&decoded.script);
            if total > conflicts.len() {
                eprintln!("  … and {} more", total - conflicts.len());
            }
            Err(format!("NOT in-place safe: {v}").into())
        }
    }
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    let (pos, opts) = parse_opts(args)?;
    if !pos.is_empty() {
        return Err(
            "usage: ipr fuzz [--oracle all|codec|convert|crwi|diff] [--seed S] [--iters N] \
             [--shrink on|off] [--max-failures N]"
                .into(),
        );
    }
    let mut config = ipr_fuzz::FuzzConfig::default();
    for (k, v) in opts {
        match k {
            "seed" => config.seed = ipr_fuzz::parse_seed(v)?,
            "iters" => {
                config.iters = v
                    .parse()
                    .map_err(|_| format!("--iters needs a number, got `{v}`"))?;
            }
            "oracle" => {
                config.oracles = if v == "all" {
                    ipr_fuzz::Oracle::ALL.to_vec()
                } else {
                    vec![v.parse::<ipr_fuzz::Oracle>()?]
                };
            }
            "shrink" => {
                config.shrink = match v {
                    "on" => true,
                    "off" => false,
                    _ => return Err(format!("--shrink takes on|off, got `{v}`").into()),
                };
            }
            "max-failures" => {
                config.max_failures = v
                    .parse()
                    .map_err(|_| format!("--max-failures needs a number, got `{v}`"))?;
            }
            _ => return Err(format!("unknown option --{k}").into()),
        }
    }
    let report = ipr_fuzz::run(&config);
    for violation in &report.violations {
        eprintln!("{violation}");
    }
    let oracles: Vec<String> = config.oracles.iter().map(ToString::to_string).collect();
    println!(
        "fuzz: {} iteration(s) of [{}] from seed {}: {} violation(s)",
        report.iters_run,
        oracles.join(", "),
        config.seed,
        report.violations.len()
    );
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} oracle violation(s)", report.violations.len()).into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn fuzz_subcommand_clean_smoke() {
        run(&s(&[
            "fuzz", "--oracle", "all", "--iters", "10", "--seed", "42",
        ]))
        .unwrap();
        run(&s(&[
            "fuzz", "--oracle", "codec", "--iters", "5", "--seed", "0x10",
        ]))
        .unwrap();
    }

    #[test]
    fn fuzz_subcommand_rejects_bad_options() {
        assert!(run(&s(&["fuzz", "positional"])).is_err());
        assert!(run(&s(&["fuzz", "--oracle", "psychic"])).is_err());
        assert!(run(&s(&["fuzz", "--iters", "many"])).is_err());
        assert!(run(&s(&["fuzz", "--seed", "whatever"])).is_err());
        assert!(run(&s(&["fuzz", "--shrink", "maybe"])).is_err());
        assert!(run(&s(&["fuzz", "--max-failures", "x"])).is_err());
        assert!(run(&s(&["fuzz", "--bogus", "x"])).is_err());
    }

    #[test]
    fn fuzz_subcommand_emits_stats() {
        let dir = std::env::temp_dir().join(format!("ipr-cli-fuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("fuzz-stats.json").to_string_lossy().into_owned();
        run(&s(&[
            "fuzz",
            "--oracle",
            "all",
            "--iters",
            "5",
            "--seed",
            "42",
            "--stats-out",
            &out,
        ]))
        .unwrap();
        let raw = std::fs::read_to_string(&out).unwrap();
        let v = ipr_trace::json::parse(&raw).expect("stats output is valid JSON");
        let counter = |name: &str| {
            v.get("counters")
                .and_then(|c| c.get(name))
                .and_then(|c| c.as_u64())
                .unwrap_or_else(|| panic!("counter {name} missing in {raw}"))
        };
        assert_eq!(counter("fuzz.iters"), 5);
        let spans = v.get("spans").unwrap();
        for name in ["fuzz.codec", "fuzz.convert", "fuzz.crwi", "fuzz.diff"] {
            let span = spans
                .get(name)
                .unwrap_or_else(|| panic!("span {name} missing in {raw}"));
            assert_eq!(span.get("count").unwrap().as_u64(), Some(5), "{name}");
        }
        assert!(v.get("counters").unwrap().get("fuzz.failures").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_opts_splits_positional_and_options() {
        let args = s(&["a", "--format", "ordered", "b", "--policy", "constant"]);
        let (pos, opts) = parse_opts(&args).unwrap();
        assert_eq!(pos, vec!["a", "b"]);
        assert_eq!(opts, vec![("format", "ordered"), ("policy", "constant")]);
    }

    #[test]
    fn parse_opts_rejects_dangling_option() {
        let args = s(&["a", "--format"]);
        assert!(parse_opts(&args).is_err());
    }

    #[test]
    fn parse_format_all_names() {
        for (name, f) in [
            ("ordered", Format::Ordered),
            ("in-place", Format::InPlace),
            ("paper-ordered", Format::PaperOrdered),
            ("paper-in-place", Format::PaperInPlace),
            ("improved", Format::Improved),
        ] {
            assert_eq!(parse_format(name).unwrap(), f);
        }
        assert!(parse_format("bogus").is_err());
    }

    #[test]
    fn parse_policy_names() {
        assert_eq!(parse_policy("constant").unwrap(), CyclePolicy::ConstantTime);
        assert_eq!(
            parse_policy("local-min").unwrap(),
            CyclePolicy::LocallyMinimum
        );
        assert!(parse_policy("optimal").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["help"])).is_ok());
    }

    #[test]
    fn end_to_end_through_tempdir() {
        let dir = std::env::temp_dir().join(format!("ipr-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let reference: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(512);
        std::fs::write(p("old"), &reference).unwrap();
        std::fs::write(p("new"), &version).unwrap();

        // diff -> convert -> info/verify -> apply and apply-in-place.
        run(&s(&["diff", &p("old"), &p("new"), &p("delta")])).unwrap();
        run(&s(&["convert", &p("old"), &p("delta"), &p("delta-ip")])).unwrap();
        run(&s(&["info", &p("delta-ip")])).unwrap();
        run(&s(&["stats", &p("delta-ip"), "--dot", &p("graph.dot")])).unwrap();
        let dot = std::fs::read_to_string(p("graph.dot")).unwrap();
        assert!(dot.starts_with("digraph"));
        run(&s(&["dump", &p("delta-ip")])).unwrap();
        run(&s(&["verify", &p("delta-ip")])).unwrap();
        run(&s(&["apply", &p("old"), &p("delta-ip"), &p("rebuilt")])).unwrap();
        assert_eq!(std::fs::read(p("rebuilt")).unwrap(), version);

        // Compose: old -> new -> newer collapsed into old -> newer.
        let mut newer = version.clone();
        newer.rotate_right(100);
        std::fs::write(p("newer"), &newer).unwrap();
        run(&s(&["diff", &p("new"), &p("newer"), &p("delta2")])).unwrap();
        run(&s(&["compose", &p("delta"), &p("delta2"), &p("composed")])).unwrap();
        run(&s(&["apply", &p("old"), &p("composed"), &p("rebuilt2")])).unwrap();
        assert_eq!(std::fs::read(p("rebuilt2")).unwrap(), newer);
        std::fs::copy(p("old"), p("inplace")).unwrap();
        run(&s(&["apply-in-place", &p("inplace"), &p("delta-ip")])).unwrap();
        assert_eq!(std::fs::read(p("inplace")).unwrap(), version);

        // Parallel apply path, both read modes.
        std::fs::copy(p("old"), p("inplace-par")).unwrap();
        run(&s(&[
            "apply-in-place",
            &p("inplace-par"),
            &p("delta-ip"),
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(std::fs::read(p("inplace-par")).unwrap(), version);
        std::fs::copy(p("old"), p("inplace-snap")).unwrap();
        run(&s(&[
            "apply-in-place",
            &p("inplace-snap"),
            &p("delta-ip"),
            "--threads",
            "2",
            "--read-mode",
            "snapshot",
        ]))
        .unwrap();
        assert_eq!(std::fs::read(p("inplace-snap")).unwrap(), version);
        // Bad option values are reported, not panicked.
        assert!(run(&s(&[
            "apply-in-place",
            &p("inplace-snap"),
            &p("delta-ip"),
            "--threads",
            "lots",
        ]))
        .is_err());
        assert!(run(&s(&[
            "apply-in-place",
            &p("inplace-snap"),
            &p("delta-ip"),
            "--read-mode",
            "psychic",
        ]))
        .is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_paths_reported_not_panicked() {
        let dir = std::env::temp_dir().join(format!("ipr-cli-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let old: Vec<u8> = (0..256u32).map(|i| (i * 7 % 251) as u8).collect();
        let mut new = old.clone();
        new[128] ^= 0xff; // the delta copies most of the reference
        std::fs::write(p("old"), &old).unwrap();
        std::fs::write(p("new"), &new).unwrap();
        std::fs::write(p("junk"), b"this is not a delta file").unwrap();

        // Missing files.
        assert!(run(&s(&["diff", &p("nope"), &p("new"), &p("d")])).is_err());
        assert!(run(&s(&["apply", &p("old"), &p("nope"), &p("out")])).is_err());
        // Junk delta.
        assert!(run(&s(&["info", &p("junk")])).is_err());
        assert!(run(&s(&["verify", &p("junk")])).is_err());
        assert!(run(&s(&["stats", &p("junk")])).is_err());
        // Wrong arity.
        assert!(run(&s(&["diff", &p("old")])).is_err());
        assert!(run(&s(&["convert", &p("old")])).is_err());
        assert!(run(&s(&["compose", &p("old")])).is_err());
        // Unknown options/values.
        run(&s(&["diff", &p("old"), &p("new"), &p("d")])).unwrap();
        assert!(run(&s(&[
            "diff",
            &p("old"),
            &p("new"),
            &p("d"),
            "--format",
            "bogus"
        ]))
        .is_err());
        assert!(run(&s(&["diff", &p("old"), &p("new"), &p("d"), "--bogus", "x"])).is_err());
        assert!(run(&s(&[
            "convert",
            &p("old"),
            &p("d"),
            &p("o"),
            "--policy",
            "magic"
        ]))
        .is_err());
        // Ordered format cannot carry in-place deltas.
        assert!(run(&s(&[
            "convert",
            &p("old"),
            &p("d"),
            &p("o"),
            "--format",
            "ordered"
        ]))
        .is_err());
        // Applying against the wrong reference fails the CRC.
        std::fs::write(p("wrong"), vec![0x55u8; old.len()]).unwrap();
        assert!(run(&s(&["apply", &p("wrong"), &p("d"), &p("out")])).is_err());
        // Composing non-consecutive deltas fails (d: 256 -> 256 bytes,
        // d2: 28 -> 256 bytes: d's target is not d2's source).
        std::fs::write(p("other"), b"completely unrelated bytes!!").unwrap();
        run(&s(&["diff", &p("other"), &p("old"), &p("d2")])).unwrap();
        assert!(run(&s(&["compose", &p("d"), &p("d2"), &p("dc")])).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_flags_are_stripped_and_validated() {
        let (opts, rest) = StatsOptions::extract(&s(&["convert", "--stats", "a", "b"])).unwrap();
        assert!(opts.enabled && !opts.json && opts.out.is_none());
        assert_eq!(rest, s(&["convert", "a", "b"]));

        let (opts, rest) = StatsOptions::extract(&s(&["info", "x", "--stats=json"])).unwrap();
        assert!(opts.enabled && opts.json);
        assert_eq!(rest, s(&["info", "x"]));

        let (opts, rest) =
            StatsOptions::extract(&s(&["info", "--stats-out", "report.json", "x"])).unwrap();
        assert_eq!(opts.out.as_deref(), Some("report.json"));
        assert_eq!(rest, s(&["info", "x"]));

        assert!(StatsOptions::extract(&s(&["info", "--stats-out"])).is_err());
    }

    /// Acceptance check: `--stats=json` on an adversarial (paper Fig. 2)
    /// workload emits a parseable report whose cycle-break counters equal
    /// the conversion layer's own `ConversionReport`, and whose span
    /// timings nest sensibly.
    #[test]
    fn stats_json_matches_conversion_report_on_adversarial_workload() {
        let dir = std::env::temp_dir().join(format!("ipr-cli-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let case = ipr_workloads::adversarial::tree_digraph(4);
        std::fs::write(p("ref"), &case.reference).unwrap();
        let delta = codec::encode(&case.script, Format::InPlace).unwrap();
        std::fs::write(p("delta"), &delta).unwrap();

        // Ground truth straight from the conversion layer.
        let expected =
            convert_to_in_place(&case.script, &case.reference, &ConversionConfig::default())
                .unwrap()
                .report;
        assert!(expected.cycles_broken > 0, "workload must exercise cycles");

        run(&s(&[
            "convert",
            &p("ref"),
            &p("delta"),
            &p("delta-ip"),
            "--stats-out",
            &p("stats.json"),
        ]))
        .unwrap();

        let raw = std::fs::read_to_string(p("stats.json")).unwrap();
        let v = ipr_trace::json::parse(&raw).expect("stats output is valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("ipr-stats/1"));

        let counter = |name: &str| {
            v.get("counters")
                .unwrap()
                .get(name)
                .unwrap_or_else(|| panic!("counter {name} missing in {raw}"))
                .as_u64()
                .unwrap()
        };
        assert_eq!(
            counter("convert.cycles_broken"),
            expected.cycles_broken as u64
        );
        assert_eq!(counter("convert.bytes_reencoded"), expected.conversion_cost);
        assert_eq!(
            counter("convert.copies_converted"),
            expected.copies_converted as u64
        );
        assert_eq!(counter("convert.edges"), expected.edges as u64);

        // Span timings sum sensibly: the convert span contains its
        // children, and every phase ran exactly once.
        let spans = v.get("spans").unwrap();
        let span_ns = |name: &str| {
            let s = spans
                .get(name)
                .unwrap_or_else(|| panic!("span {name} missing in {raw}"));
            assert_eq!(s.get("count").unwrap().as_u64(), Some(1), "{name} count");
            s.get("total_ns").unwrap().as_u64().unwrap()
        };
        let total = span_ns("convert");
        let children =
            span_ns("convert.crwi_build") + span_ns("convert.toposort") + span_ns("convert.emit");
        assert!(
            total >= children,
            "convert span ({total} ns) contains its phases ({children} ns)"
        );
        assert_eq!(
            spans.get("convert").unwrap().get("depth").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            spans
                .get("convert.toposort")
                .unwrap()
                .get("depth")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // The codec ran too (decode the input, encode the output).
        assert!(span_ns("codec.decode") > 0);
        assert!(span_ns("codec.encode") > 0);

        // Plain `--stats` (text to stderr) also succeeds end to end.
        run(&s(&["verify", &p("delta-ip"), "--stats"])).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_diff_threads_emits_stats() {
        let dir = std::env::temp_dir().join(format!("ipr-cli-pdiff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        // 160 KiB version -> 3 chunks at the default 64 KiB chunk size.
        let reference: Vec<u8> = (0..160 * 1024u32).map(|i| (i % 251) as u8).collect();
        let mut version = reference.clone();
        version[40_000] ^= 0x2a;
        version[120_000] ^= 0x2a;
        std::fs::write(p("old"), &reference).unwrap();
        std::fs::write(p("new"), &version).unwrap();
        let out = p("diff-stats.json");
        run(&s(&[
            "diff",
            &p("old"),
            &p("new"),
            &p("d"),
            "--threads",
            "2",
            "--stats-out",
            &out,
        ]))
        .unwrap();
        // The parallel delta must apply back to the version file.
        run(&s(&["apply", &p("old"), &p("d"), &p("rebuilt")])).unwrap();
        assert_eq!(std::fs::read(p("rebuilt")).unwrap(), version);

        let raw = std::fs::read_to_string(&out).unwrap();
        let v = ipr_trace::json::parse(&raw).expect("stats output is valid JSON");
        let spans = v.get("spans").unwrap();
        for name in ["diff", "diff.index_build", "diff.scan", "diff.stitch"] {
            let span = spans
                .get(name)
                .unwrap_or_else(|| panic!("span {name} missing in {raw}"));
            assert_eq!(span.get("count").unwrap().as_u64(), Some(1), "{name}");
        }
        let counter = |name: &str| {
            v.get("counters")
                .and_then(|c| c.get(name))
                .and_then(|c| c.as_u64())
                .unwrap_or_else(|| panic!("counter {name} missing in {raw}"))
        };
        // Cross-checks: the counters must agree with the input files.
        assert_eq!(counter("diff.reference_bytes"), reference.len() as u64);
        assert_eq!(counter("diff.version_bytes"), version.len() as u64);
        assert_eq!(counter("diff.chunks"), 3);
        let gauge = v
            .get("gauges")
            .and_then(|g| g.get("diff.threads"))
            .and_then(|g| g.as_u64());
        assert_eq!(gauge, Some(2), "diff.threads gauge in {raw}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn one_pass_differ_and_policies_selectable() {
        let dir = std::env::temp_dir().join(format!("ipr-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let reference = vec![3u8; 4096];
        let mut version = reference.clone();
        version[17] = 4;
        std::fs::write(p("old"), &reference).unwrap();
        std::fs::write(p("new"), &version).unwrap();
        run(&s(&[
            "diff",
            &p("old"),
            &p("new"),
            &p("d"),
            "--differ",
            "one-pass",
        ]))
        .unwrap();
        run(&s(&[
            "convert",
            &p("old"),
            &p("d"),
            &p("d-ip"),
            "--policy",
            "constant",
            "--format",
            "improved",
        ]))
        .unwrap();
        run(&s(&["verify", &p("d-ip")])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Shared subcommand plumbing: argument splitting, typed option takers
//! that accumulate into an [`EngineConfig`], and the file/delta IO every
//! command repeats. Each `cmd_*` parses with [`EngineCli::parse`], takes
//! the options it understands, calls [`EngineCli::finish_options`] so
//! leftovers are reported, and builds its [`Engine`] session from the
//! collected configuration.

use ipr_core::{CyclePolicy, ReadMode};
use ipr_delta::codec::{self, DecodedDelta, Format};
use ipr_delta::diff::{GreedyDiffer, IndexedDiffer};
use ipr_delta::remote::{BlockSize, CdcParams, Chunking, DEFAULT_SIGNATURE_BUDGET};
use ipr_pipeline::{Engine, EngineConfig};

/// Parsed command line of one subcommand plus the engine configuration
/// its flags selected.
pub struct EngineCli {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    config: EngineConfig,
    threads_set: bool,
}

impl EngineCli {
    /// Splits `args` into positionals and `--key value` option pairs.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(key) = a.strip_prefix("--") {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("option --{key} requires a value"))?;
                options.push((key.to_string(), value.clone()));
                i += 2;
            } else {
                positional.push(args[i].clone());
                i += 1;
            }
        }
        Ok(Self {
            positional,
            options,
            config: EngineConfig::default(),
            threads_set: false,
        })
    }

    /// Exactly `N` positional arguments, or `usage` as the error.
    pub fn positional<const N: usize>(&self, usage: &str) -> Result<[&str; N], String> {
        let strs: Vec<&str> = self.positional.iter().map(String::as_str).collect();
        <[&str; N]>::try_from(strs).map_err(|_| usage.to_string())
    }

    /// No positional arguments at all, or `usage` as the error.
    pub fn no_positional(&self, usage: &str) -> Result<(), String> {
        if self.positional.is_empty() {
            Ok(())
        } else {
            Err(usage.to_string())
        }
    }

    /// Removes and returns `--key`'s value, if present.
    pub fn take(&mut self, key: &str) -> Option<String> {
        let at = self.options.iter().position(|(k, _)| k == key)?;
        Some(self.options.remove(at).1)
    }

    /// Removes `--key` and parses its value with `parse`.
    pub fn take_with<T>(
        &mut self,
        key: &str,
        parse: impl FnOnce(&str) -> Result<T, String>,
    ) -> Result<Option<T>, String> {
        self.take(key).map(|v| parse(&v)).transpose()
    }

    /// `--threads N`: recorded in the engine config and returned, so
    /// commands can distinguish "absent" from an explicit count.
    pub fn take_threads(&mut self) -> Result<Option<usize>, String> {
        let threads = self.take_with("threads", |v| {
            v.parse()
                .map_err(|_| format!("--threads needs a number, got `{v}`"))
        })?;
        if let Some(n) = threads {
            self.config.threads = n;
            self.threads_set = true;
        }
        Ok(threads)
    }

    /// `--format F`: recorded as the engine's wire format and returned.
    pub fn take_format(&mut self) -> Result<Option<Format>, String> {
        let format = self.take_with("format", parse_format)?;
        if let Some(f) = format {
            self.config.format = f;
        }
        Ok(format)
    }

    /// `--policy P`: recorded as the engine's cycle-breaking policy.
    pub fn take_policy(&mut self) -> Result<Option<CyclePolicy>, String> {
        let policy = self.take_with("policy", parse_policy)?;
        if let Some(p) = policy {
            self.config.conversion.policy = p;
        }
        Ok(policy)
    }

    /// `--read-mode M`: recorded as the engine's applier read strategy.
    pub fn take_read_mode(&mut self) -> Result<Option<ReadMode>, String> {
        let mode = self.take_with("read-mode", |v| match v {
            "snapshot" => Ok(ReadMode::Snapshot),
            "zero-copy" => Ok(ReadMode::ZeroCopy),
            _ => Err(format!("unknown read mode `{v}` (snapshot|zero-copy)")),
        })?;
        if let Some(m) = mode {
            self.config.read_mode = m;
        }
        Ok(mode)
    }

    /// `--block N` / `--cdc MIN:AVG:MAX` / `--block-size N|auto[:BYTES]`:
    /// recorded as the engine's signature chunking (all three are
    /// mutually exclusive). `--block-size` lands in
    /// [`EngineConfig::block_size`], which resolves per reference at
    /// signing time — `auto` picks the smallest power-of-two block whose
    /// wire signature fits the byte budget (docs/REMOTE.md).
    pub fn take_chunking(&mut self) -> Result<Option<Chunking>, String> {
        let block = self.take_with("block", |v| {
            v.parse::<usize>()
                .map_err(|_| format!("--block needs a byte count, got `{v}`"))
        })?;
        let cdc = self.take_with("cdc", parse_cdc)?;
        let block_size = self.take_with("block-size", parse_block_size)?;
        if [block.is_some(), cdc.is_some(), block_size.is_some()]
            .iter()
            .filter(|&&set| set)
            .count()
            > 1
        {
            return Err("--block, --cdc and --block-size are mutually exclusive".into());
        }
        if let Some(bs) = block_size {
            if let BlockSize::Fixed(len) = bs {
                Chunking::Fixed(len).validate().map_err(|e| e.to_string())?;
            }
            self.config.block_size = Some(bs);
            return Ok(None);
        }
        let chunking = match (block, cdc) {
            (Some(len), None) => Some(Chunking::Fixed(len)),
            (None, Some(params)) => Some(Chunking::Cdc(params)),
            _ => None,
        };
        if let Some(c) = chunking {
            c.validate().map_err(|e| e.to_string())?;
            self.config.chunking = c;
        }
        Ok(chunking)
    }

    /// Rejects any option no taker consumed.
    pub fn finish_options(&self) -> Result<(), String> {
        match self.options.first() {
            Some((k, _)) => Err(format!("unknown option --{k}")),
            None => Ok(()),
        }
    }

    /// The configuration the takers accumulated.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access for knobs without a dedicated flag (cost format).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// An engine session over the accumulated configuration. Without an
    /// explicit `--threads`, stages run on one worker (the CLI's
    /// historical serial default); `--threads 0` sizes to the host.
    pub fn engine(&self) -> Engine {
        self.engine_with(GreedyDiffer::default())
    }

    /// Like [`EngineCli::engine`], differencing with `differ`.
    pub fn engine_with<D: IndexedDiffer>(&self, differ: D) -> Engine<D> {
        let mut config = self.config;
        if !self.threads_set {
            config.threads = 1;
        }
        Engine::with_differ(differ, config)
    }

    /// Reads and decodes a delta file.
    pub fn read_delta(path: &str) -> Result<DecodedDelta, Box<dyn std::error::Error>> {
        Ok(codec::decode(&std::fs::read(path)?)?)
    }
}

/// Parses a `--format` value.
pub fn parse_format(name: &str) -> Result<Format, String> {
    Ok(match name {
        "ordered" => Format::Ordered,
        "in-place" => Format::InPlace,
        "paper-ordered" => Format::PaperOrdered,
        "paper-in-place" => Format::PaperInPlace,
        "improved" => Format::Improved,
        _ => return Err(format!("unknown format `{name}`")),
    })
}

/// Parses a `--policy` value.
pub fn parse_policy(name: &str) -> Result<CyclePolicy, String> {
    match name {
        "constant" | "constant-time" => Ok(CyclePolicy::ConstantTime),
        "local-min" | "locally-minimum" => Ok(CyclePolicy::LocallyMinimum),
        _ => Err(format!("unknown policy `{name}`")),
    }
}

/// Parses a `--block-size` value: a byte count, `auto` (default
/// signature budget), or `auto:BYTES` (explicit budget).
pub fn parse_block_size(spec: &str) -> Result<BlockSize, String> {
    if spec == "auto" {
        return Ok(BlockSize::Auto {
            budget: DEFAULT_SIGNATURE_BUDGET,
        });
    }
    if let Some(budget) = spec.strip_prefix("auto:") {
        let budget = budget
            .parse::<usize>()
            .map_err(|_| format!("--block-size auto:BYTES needs a byte count, got `{budget}`"))?;
        if budget == 0 {
            return Err("--block-size auto budget must be positive".into());
        }
        return Ok(BlockSize::Auto { budget });
    }
    spec.parse::<usize>()
        .map(BlockSize::Fixed)
        .map_err(|_| format!("--block-size needs a byte count or auto[:BYTES], got `{spec}`"))
}

/// Parses a `--cdc MIN:AVG:MAX` value (byte counts).
pub fn parse_cdc(spec: &str) -> Result<CdcParams, String> {
    let err = || format!("--cdc needs MIN:AVG:MAX byte counts, got `{spec}`");
    let mut fields = spec.split(':');
    let mut next = || -> Result<usize, String> {
        fields
            .next()
            .ok_or_else(err)?
            .parse::<usize>()
            .map_err(|_| err())
    };
    let params = CdcParams {
        min: next()?,
        avg: next()?,
        max: next()?,
    };
    if fields.next().is_some() {
        return Err(err());
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_splits_positional_and_options() {
        let cli = EngineCli::parse(&s(&[
            "a", "--format", "ordered", "b", "--policy", "constant",
        ]))
        .unwrap();
        assert_eq!(cli.positional::<2>("usage").unwrap(), ["a", "b"]);
        assert_eq!(cli.positional::<3>("usage").unwrap_err(), "usage");
        assert!(cli.finish_options().is_err());
    }

    #[test]
    fn parse_rejects_dangling_option() {
        assert!(EngineCli::parse(&s(&["a", "--format"])).is_err());
    }

    #[test]
    fn takers_accumulate_into_the_config() {
        let mut cli = EngineCli::parse(&s(&[
            "--threads",
            "3",
            "--format",
            "improved",
            "--policy",
            "constant",
            "--read-mode",
            "snapshot",
        ]))
        .unwrap();
        assert_eq!(cli.take_threads().unwrap(), Some(3));
        assert_eq!(cli.take_format().unwrap(), Some(Format::Improved));
        assert_eq!(cli.take_policy().unwrap(), Some(CyclePolicy::ConstantTime));
        assert_eq!(cli.take_read_mode().unwrap(), Some(ReadMode::Snapshot));
        cli.finish_options().unwrap();
        let config = cli.config();
        assert_eq!(config.threads, 3);
        assert_eq!(config.format, Format::Improved);
        assert_eq!(config.conversion.policy, CyclePolicy::ConstantTime);
        assert_eq!(config.read_mode, ReadMode::Snapshot);
        assert_eq!(cli.engine().config().threads, 3);
    }

    #[test]
    fn engine_defaults_to_one_worker_without_threads_flag() {
        let cli = EngineCli::parse(&[]).unwrap();
        assert_eq!(cli.engine().config().threads, 1);
        let mut cli = EngineCli::parse(&s(&["--threads", "0"])).unwrap();
        cli.take_threads().unwrap();
        assert_eq!(cli.engine().config().threads, 0);
    }

    #[test]
    fn bad_option_values_are_reported() {
        let mut cli = EngineCli::parse(&s(&["--threads", "lots"])).unwrap();
        assert!(cli.take_threads().is_err());
        let mut cli = EngineCli::parse(&s(&["--read-mode", "psychic"])).unwrap();
        assert!(cli.take_read_mode().is_err());
    }

    #[test]
    fn parse_format_all_names() {
        for (name, f) in [
            ("ordered", Format::Ordered),
            ("in-place", Format::InPlace),
            ("paper-ordered", Format::PaperOrdered),
            ("paper-in-place", Format::PaperInPlace),
            ("improved", Format::Improved),
        ] {
            assert_eq!(parse_format(name).unwrap(), f);
        }
        assert!(parse_format("bogus").is_err());
    }

    #[test]
    fn take_chunking_parses_block_and_cdc() {
        let mut cli = EngineCli::parse(&s(&["--block", "4096"])).unwrap();
        assert_eq!(cli.take_chunking().unwrap(), Some(Chunking::Fixed(4096)));
        assert_eq!(cli.config().chunking, Chunking::Fixed(4096));

        let mut cli = EngineCli::parse(&s(&["--cdc", "64:256:1024"])).unwrap();
        let params = CdcParams {
            min: 64,
            avg: 256,
            max: 1024,
        };
        assert_eq!(cli.take_chunking().unwrap(), Some(Chunking::Cdc(params)));

        let mut cli = EngineCli::parse(&[]).unwrap();
        assert_eq!(cli.take_chunking().unwrap(), None);
        assert_eq!(cli.config().chunking, Chunking::default());
    }

    #[test]
    fn take_chunking_parses_block_size_policy() {
        let mut cli = EngineCli::parse(&s(&["--block-size", "2048"])).unwrap();
        assert_eq!(cli.take_chunking().unwrap(), None);
        assert_eq!(cli.config().block_size, Some(BlockSize::Fixed(2048)));

        let mut cli = EngineCli::parse(&s(&["--block-size", "auto"])).unwrap();
        cli.take_chunking().unwrap();
        assert_eq!(
            cli.config().block_size,
            Some(BlockSize::Auto {
                budget: DEFAULT_SIGNATURE_BUDGET
            })
        );

        let mut cli = EngineCli::parse(&s(&["--block-size", "auto:65536"])).unwrap();
        cli.take_chunking().unwrap();
        assert_eq!(
            cli.config().block_size,
            Some(BlockSize::Auto { budget: 65536 })
        );
    }

    #[test]
    fn take_chunking_rejects_bad_block_size_values() {
        for bad in ["auto:", "auto:0", "auto:lots", "grande", "0"] {
            let mut cli = EngineCli::parse(&s(&["--block-size", bad])).unwrap();
            assert!(cli.take_chunking().is_err(), "accepted `{bad}`");
        }
        // Exclusive with both chunking flags.
        let mut cli = EngineCli::parse(&s(&["--block-size", "auto", "--block", "4096"])).unwrap();
        assert!(cli.take_chunking().is_err());
        let mut cli =
            EngineCli::parse(&s(&["--block-size", "auto", "--cdc", "64:256:1024"])).unwrap();
        assert!(cli.take_chunking().is_err());
    }

    #[test]
    fn take_chunking_rejects_bad_values() {
        // Mutually exclusive flags.
        let mut cli = EngineCli::parse(&s(&["--block", "4096", "--cdc", "64:256:1024"])).unwrap();
        assert!(cli.take_chunking().is_err());
        // Invalid bounds are caught by validation.
        let mut cli = EngineCli::parse(&s(&["--block", "0"])).unwrap();
        assert!(cli.take_chunking().is_err());
        let mut cli = EngineCli::parse(&s(&["--cdc", "64:100:1024"])).unwrap();
        assert!(cli.take_chunking().is_err());
    }

    #[test]
    fn parse_cdc_shapes() {
        assert_eq!(
            parse_cdc("2048:8192:65536").unwrap(),
            CdcParams {
                min: 2048,
                avg: 8192,
                max: 65536
            }
        );
        assert!(parse_cdc("1:2").is_err());
        assert!(parse_cdc("1:2:3:4").is_err());
        assert!(parse_cdc("a:b:c").is_err());
    }

    #[test]
    fn parse_policy_names() {
        assert_eq!(parse_policy("constant").unwrap(), CyclePolicy::ConstantTime);
        assert_eq!(
            parse_policy("local-min").unwrap(),
            CyclePolicy::LocallyMinimum
        );
        assert!(parse_policy("optimal").is_err());
    }
}

//! Command-level tests: every subcommand end to end through tempdirs,
//! error reporting, and the `--stats` contract.

use super::*;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(ToString::to_string).collect()
}

#[test]
fn fuzz_subcommand_clean_smoke() {
    run(&s(&[
        "fuzz", "--oracle", "all", "--iters", "10", "--seed", "42",
    ]))
    .unwrap();
    run(&s(&[
        "fuzz", "--oracle", "codec", "--iters", "5", "--seed", "0x10",
    ]))
    .unwrap();
    run(&s(&[
        "fuzz", "--oracle", "engine", "--iters", "5", "--seed", "42",
    ]))
    .unwrap();
}

#[test]
fn fuzz_subcommand_rejects_bad_options() {
    assert!(run(&s(&["fuzz", "positional"])).is_err());
    assert!(run(&s(&["fuzz", "--oracle", "psychic"])).is_err());
    assert!(run(&s(&["fuzz", "--iters", "many"])).is_err());
    assert!(run(&s(&["fuzz", "--seed", "whatever"])).is_err());
    assert!(run(&s(&["fuzz", "--shrink", "maybe"])).is_err());
    assert!(run(&s(&["fuzz", "--max-failures", "x"])).is_err());
    assert!(run(&s(&["fuzz", "--bogus", "x"])).is_err());
}

#[test]
fn fuzz_subcommand_emits_stats() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("fuzz-stats.json").to_string_lossy().into_owned();
    run(&s(&[
        "fuzz",
        "--oracle",
        "all",
        "--iters",
        "5",
        "--seed",
        "42",
        "--stats-out",
        &out,
    ]))
    .unwrap();
    let raw = std::fs::read_to_string(&out).unwrap();
    let v = ipr_trace::json::parse(&raw).expect("stats output is valid JSON");
    let counter = |name: &str| {
        v.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|c| c.as_u64())
            .unwrap_or_else(|| panic!("counter {name} missing in {raw}"))
    };
    assert_eq!(counter("fuzz.iters"), 5);
    let spans = v.get("spans").unwrap();
    for name in [
        "fuzz.codec",
        "fuzz.convert",
        "fuzz.crwi",
        "fuzz.diff",
        "fuzz.engine",
    ] {
        let span = spans
            .get(name)
            .unwrap_or_else(|| panic!("span {name} missing in {raw}"));
        assert_eq!(span.get("count").unwrap().as_u64(), Some(5), "{name}");
    }
    assert!(v.get("counters").unwrap().get("fuzz.failures").is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// `ipr store` end to end: init, put a drifting history, get each
/// version back byte-identically, compact under the depth cap, and a
/// clean fsck throughout — plus the error paths.
#[test]
fn store_subcommand_end_to_end() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let store = p("store");

    run(&s(&["store", "init", &store, "--depth-cap", "2"])).unwrap();
    // A drifting three-version history.
    let mut v = (0..4096u32)
        .map(|i| (i * 11 % 239) as u8)
        .collect::<Vec<u8>>();
    let mut files = Vec::new();
    for i in 0..4 {
        v[i * 700] ^= 0x2a;
        v.extend_from_slice(b"more");
        let path = p(&format!("v{i}"));
        std::fs::write(&path, &v).unwrap();
        files.push((path, v.clone()));
    }
    for (path, _) in &files {
        run(&s(&["store", "put", &store, path])).unwrap();
    }
    run(&s(&["store", "log", &store])).unwrap();
    run(&s(&["store", "fsck", &store])).unwrap();
    run(&s(&["store", "compact", &store])).unwrap();
    run(&s(&["store", "fsck", &store])).unwrap();

    // Every version reconstructs byte-identically via its oid.
    let st = ipr_store::Store::open(store.as_ref()).unwrap();
    let oids: Vec<String> = st.log().iter().map(|r| r.oid.to_string()).collect();
    assert!(st.manifest().max_depth() <= 2);
    drop(st);
    for (oid, (_, want)) in oids.iter().zip(&files) {
        let out = p("out");
        // Full id and an abbreviated prefix both resolve.
        run(&s(&["store", "get", &store, oid, &out])).unwrap();
        assert_eq!(&std::fs::read(&out).unwrap(), want);
        run(&s(&["store", "get", &store, &oid[..12], &out])).unwrap();
        assert_eq!(&std::fs::read(&out).unwrap(), want);
    }

    // Error paths: re-init over a live store, unknown id, bad parent,
    // wrong arity, unknown subcommand.
    assert!(run(&s(&["store", "init", &store])).is_err());
    assert!(run(&s(&["store", "get", &store, "ffffffffffff", &p("x")])).is_err());
    assert!(run(&s(&[
        "store",
        "put",
        &store,
        &files[0].0,
        "--parent",
        "not-an-oid"
    ]))
    .is_err());
    assert!(run(&s(&["store", "put", &store])).is_err());
    assert!(run(&s(&["store"])).is_err());
    assert!(run(&s(&["store", "frobnicate", &store])).is_err());
    assert!(run(&s(&["store", "init", &p("capless"), "--depth-cap", "0"])).is_err());

    // Damage an object: fsck reports corruption and exits non-zero.
    let objects = std::path::Path::new(&store).join("objects");
    let victim = std::fs::read_dir(&objects)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "full"))
        .unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();
    assert!(run(&s(&["store", "fsck", &store])).is_err());
    assert!(run(&s(&["store", "fsck", &store, "--repair"])).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_errors() {
    assert!(run(&s(&["frobnicate"])).is_err());
    assert!(run(&s(&[])).is_err());
    assert!(run(&s(&["help"])).is_ok());
}

#[test]
fn end_to_end_through_tempdir() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    let reference: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 251) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(512);
    std::fs::write(p("old"), &reference).unwrap();
    std::fs::write(p("new"), &version).unwrap();

    // diff -> convert -> info/verify -> apply and apply-in-place.
    run(&s(&["diff", &p("old"), &p("new"), &p("delta")])).unwrap();
    run(&s(&["convert", &p("old"), &p("delta"), &p("delta-ip")])).unwrap();
    run(&s(&["info", &p("delta-ip")])).unwrap();
    run(&s(&["stats", &p("delta-ip"), "--dot", &p("graph.dot")])).unwrap();
    let dot = std::fs::read_to_string(p("graph.dot")).unwrap();
    assert!(dot.starts_with("digraph"));
    run(&s(&["dump", &p("delta-ip")])).unwrap();
    run(&s(&["verify", &p("delta-ip")])).unwrap();
    run(&s(&["apply", &p("old"), &p("delta-ip"), &p("rebuilt")])).unwrap();
    assert_eq!(std::fs::read(p("rebuilt")).unwrap(), version);

    // Compose: old -> new -> newer collapsed into old -> newer.
    let mut newer = version.clone();
    newer.rotate_right(100);
    std::fs::write(p("newer"), &newer).unwrap();
    run(&s(&["diff", &p("new"), &p("newer"), &p("delta2")])).unwrap();
    run(&s(&["compose", &p("delta"), &p("delta2"), &p("composed")])).unwrap();
    run(&s(&["apply", &p("old"), &p("composed"), &p("rebuilt2")])).unwrap();
    assert_eq!(std::fs::read(p("rebuilt2")).unwrap(), newer);
    std::fs::copy(p("old"), p("inplace")).unwrap();
    run(&s(&["apply-in-place", &p("inplace"), &p("delta-ip")])).unwrap();
    assert_eq!(std::fs::read(p("inplace")).unwrap(), version);

    // Parallel apply path, both read modes.
    std::fs::copy(p("old"), p("inplace-par")).unwrap();
    run(&s(&[
        "apply-in-place",
        &p("inplace-par"),
        &p("delta-ip"),
        "--threads",
        "4",
    ]))
    .unwrap();
    assert_eq!(std::fs::read(p("inplace-par")).unwrap(), version);
    std::fs::copy(p("old"), p("inplace-snap")).unwrap();
    run(&s(&[
        "apply-in-place",
        &p("inplace-snap"),
        &p("delta-ip"),
        "--threads",
        "2",
        "--read-mode",
        "snapshot",
    ]))
    .unwrap();
    assert_eq!(std::fs::read(p("inplace-snap")).unwrap(), version);
    // Bad option values are reported, not panicked.
    assert!(run(&s(&[
        "apply-in-place",
        &p("inplace-snap"),
        &p("delta-ip"),
        "--threads",
        "lots",
    ]))
    .is_err());
    assert!(run(&s(&[
        "apply-in-place",
        &p("inplace-snap"),
        &p("delta-ip"),
        "--read-mode",
        "psychic",
    ]))
    .is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_paths_reported_not_panicked() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let old: Vec<u8> = (0..256u32).map(|i| (i * 7 % 251) as u8).collect();
    let mut new = old.clone();
    new[128] ^= 0xff; // the delta copies most of the reference
    std::fs::write(p("old"), &old).unwrap();
    std::fs::write(p("new"), &new).unwrap();
    std::fs::write(p("junk"), b"this is not a delta file").unwrap();

    // Missing files.
    assert!(run(&s(&["diff", &p("nope"), &p("new"), &p("d")])).is_err());
    assert!(run(&s(&["apply", &p("old"), &p("nope"), &p("out")])).is_err());
    // Junk delta.
    assert!(run(&s(&["info", &p("junk")])).is_err());
    assert!(run(&s(&["verify", &p("junk")])).is_err());
    assert!(run(&s(&["stats", &p("junk")])).is_err());
    // Wrong arity.
    assert!(run(&s(&["diff", &p("old")])).is_err());
    assert!(run(&s(&["convert", &p("old")])).is_err());
    assert!(run(&s(&["compose", &p("old")])).is_err());
    // Unknown options/values.
    run(&s(&["diff", &p("old"), &p("new"), &p("d")])).unwrap();
    assert!(run(&s(&[
        "diff",
        &p("old"),
        &p("new"),
        &p("d"),
        "--format",
        "bogus"
    ]))
    .is_err());
    assert!(run(&s(&["diff", &p("old"), &p("new"), &p("d"), "--bogus", "x"])).is_err());
    assert!(run(&s(&[
        "convert",
        &p("old"),
        &p("d"),
        &p("o"),
        "--policy",
        "magic"
    ]))
    .is_err());
    // Ordered format cannot carry in-place deltas.
    assert!(run(&s(&[
        "convert",
        &p("old"),
        &p("d"),
        &p("o"),
        "--format",
        "ordered"
    ]))
    .is_err());
    // Applying against the wrong reference fails the CRC.
    std::fs::write(p("wrong"), vec![0x55u8; old.len()]).unwrap();
    assert!(run(&s(&["apply", &p("wrong"), &p("d"), &p("out")])).is_err());
    // Composing non-consecutive deltas fails (d: 256 -> 256 bytes,
    // d2: 28 -> 256 bytes: d's target is not d2's source).
    std::fs::write(p("other"), b"completely unrelated bytes!!").unwrap();
    run(&s(&["diff", &p("other"), &p("old"), &p("d2")])).unwrap();
    assert!(run(&s(&["compose", &p("d"), &p("d2"), &p("dc")])).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_flags_are_stripped_and_validated() {
    let (opts, rest) = StatsOptions::extract(&s(&["convert", "--stats", "a", "b"])).unwrap();
    assert!(opts.enabled && !opts.json && opts.out.is_none());
    assert_eq!(rest, s(&["convert", "a", "b"]));

    let (opts, rest) = StatsOptions::extract(&s(&["info", "x", "--stats=json"])).unwrap();
    assert!(opts.enabled && opts.json);
    assert_eq!(rest, s(&["info", "x"]));

    let (opts, rest) =
        StatsOptions::extract(&s(&["info", "--stats-out", "report.json", "x"])).unwrap();
    assert_eq!(opts.out.as_deref(), Some("report.json"));
    assert_eq!(rest, s(&["info", "x"]));

    assert!(StatsOptions::extract(&s(&["info", "--stats-out"])).is_err());
}

/// Acceptance check: `--stats=json` on an adversarial (paper Fig. 2)
/// workload emits a parseable report whose cycle-break counters equal
/// the conversion layer's own `ConversionReport`, and whose span
/// timings nest sensibly.
#[test]
fn stats_json_matches_conversion_report_on_adversarial_workload() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    let case = ipr_workloads::adversarial::tree_digraph(4);
    std::fs::write(p("ref"), &case.reference).unwrap();
    let delta = codec::encode(&case.script, Format::InPlace).unwrap();
    std::fs::write(p("delta"), &delta).unwrap();

    // Ground truth straight from the conversion layer.
    let expected = ipr_core::convert_to_in_place(
        &case.script,
        &case.reference,
        &ipr_core::ConversionConfig::default(),
    )
    .unwrap()
    .report;
    assert!(expected.cycles_broken > 0, "workload must exercise cycles");

    run(&s(&[
        "convert",
        &p("ref"),
        &p("delta"),
        &p("delta-ip"),
        "--stats-out",
        &p("stats.json"),
    ]))
    .unwrap();

    let raw = std::fs::read_to_string(p("stats.json")).unwrap();
    let v = ipr_trace::json::parse(&raw).expect("stats output is valid JSON");
    assert_eq!(v.get("schema").unwrap().as_str(), Some("ipr-stats/1"));

    let counter = |name: &str| {
        v.get("counters")
            .unwrap()
            .get(name)
            .unwrap_or_else(|| panic!("counter {name} missing in {raw}"))
            .as_u64()
            .unwrap()
    };
    assert_eq!(
        counter("convert.cycles_broken"),
        expected.cycles_broken as u64
    );
    assert_eq!(counter("convert.bytes_reencoded"), expected.conversion_cost);
    assert_eq!(
        counter("convert.copies_converted"),
        expected.copies_converted as u64
    );
    assert_eq!(counter("convert.edges"), expected.edges as u64);

    // Span timings sum sensibly: the convert span contains its
    // children, and every phase ran exactly once.
    let spans = v.get("spans").unwrap();
    let span_ns = |name: &str| {
        let s = spans
            .get(name)
            .unwrap_or_else(|| panic!("span {name} missing in {raw}"));
        assert_eq!(s.get("count").unwrap().as_u64(), Some(1), "{name} count");
        s.get("total_ns").unwrap().as_u64().unwrap()
    };
    let total = span_ns("convert");
    let children =
        span_ns("convert.crwi_build") + span_ns("convert.toposort") + span_ns("convert.emit");
    assert!(
        total >= children,
        "convert span ({total} ns) contains its phases ({children} ns)"
    );
    assert_eq!(
        spans.get("convert").unwrap().get("depth").unwrap().as_u64(),
        Some(0)
    );
    assert_eq!(
        spans
            .get("convert.toposort")
            .unwrap()
            .get("depth")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    // The codec ran too (decode the input, encode the output).
    assert!(span_ns("codec.decode") > 0);
    assert!(span_ns("codec.encode") > 0);

    // Plain `--stats` (text to stderr) also succeeds end to end.
    run(&s(&["verify", &p("delta-ip"), "--stats"])).unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_diff_threads_emits_stats() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-pdiff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    // 160 KiB version -> 3 chunks at the default 64 KiB chunk size.
    let reference: Vec<u8> = (0..160 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut version = reference.clone();
    version[40_000] ^= 0x2a;
    version[120_000] ^= 0x2a;
    std::fs::write(p("old"), &reference).unwrap();
    std::fs::write(p("new"), &version).unwrap();
    let out = p("diff-stats.json");
    run(&s(&[
        "diff",
        &p("old"),
        &p("new"),
        &p("d"),
        "--threads",
        "2",
        "--stats-out",
        &out,
    ]))
    .unwrap();
    // The parallel delta must apply back to the version file.
    run(&s(&["apply", &p("old"), &p("d"), &p("rebuilt")])).unwrap();
    assert_eq!(std::fs::read(p("rebuilt")).unwrap(), version);

    let raw = std::fs::read_to_string(&out).unwrap();
    let v = ipr_trace::json::parse(&raw).expect("stats output is valid JSON");
    let spans = v.get("spans").unwrap();
    for name in ["diff", "diff.index_build", "diff.scan", "diff.stitch"] {
        let span = spans
            .get(name)
            .unwrap_or_else(|| panic!("span {name} missing in {raw}"));
        assert_eq!(span.get("count").unwrap().as_u64(), Some(1), "{name}");
    }
    let counter = |name: &str| {
        v.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|c| c.as_u64())
            .unwrap_or_else(|| panic!("counter {name} missing in {raw}"))
    };
    // Cross-checks: the counters must agree with the input files.
    assert_eq!(counter("diff.reference_bytes"), reference.len() as u64);
    assert_eq!(counter("diff.version_bytes"), version.len() as u64);
    assert_eq!(counter("diff.chunks"), 3);
    let gauge = v
        .get("gauges")
        .and_then(|g| g.get("diff.threads"))
        .and_then(|g| g.as_u64());
    assert_eq!(gauge, Some(2), "diff.threads gauge in {raw}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `ipr signature` + `ipr diff --signature` round trip: the remote
/// delta applies against the reference byte-identically, for both fixed
/// and content-defined chunking, and carries a verifying CRC trailer.
#[test]
fn signature_and_remote_diff_round_trip() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-remote-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let reference: Vec<u8> = (0..64 * 1024u32).map(|i| (i * 31 % 253) as u8).collect();
    let mut version = reference.clone();
    version.splice(20_000..20_000, b"inserted run".iter().copied()); // shifts all later blocks
    version[50_000] ^= 0x2a;
    std::fs::write(p("old"), &reference).unwrap();
    std::fs::write(p("new"), &version).unwrap();

    // Fixed-size blocks.
    run(&s(&["signature", &p("old"), &p("sig"), "--block", "512"])).unwrap();
    run(&s(&[
        "diff",
        "--signature",
        &p("sig"),
        &p("new"),
        &p("delta"),
    ]))
    .unwrap();
    run(&s(&["apply", &p("old"), &p("delta"), &p("rebuilt")])).unwrap();
    assert_eq!(std::fs::read(p("rebuilt")).unwrap(), version);
    let decoded = codec::decode(&std::fs::read(p("delta")).unwrap()).unwrap();
    assert!(decoded.target_crc.is_some(), "remote delta carries a CRC");

    // Content-defined chunking survives the insertion without resigning.
    run(&s(&[
        "signature",
        &p("old"),
        &p("sig-cdc"),
        "--cdc",
        "64:256:2048",
    ]))
    .unwrap();
    run(&s(&[
        "diff",
        "--signature",
        &p("sig-cdc"),
        &p("new"),
        &p("delta-cdc"),
    ]))
    .unwrap();
    run(&s(&[
        "apply",
        &p("old"),
        &p("delta-cdc"),
        &p("rebuilt-cdc"),
    ]))
    .unwrap();
    assert_eq!(std::fs::read(p("rebuilt-cdc")).unwrap(), version);

    // Budget-driven block sizing: a 2 KiB budget over the 64 KiB
    // reference resolves to 1 KiB blocks (512 B blocks would need a
    // ~2.8 KiB signature), and the remote delta still applies cleanly.
    run(&s(&[
        "signature",
        &p("old"),
        &p("sig-auto"),
        "--block-size",
        "auto:2048",
    ]))
    .unwrap();
    let sig_auto = Signature::decode(&std::fs::read(p("sig-auto")).unwrap()).unwrap();
    assert_eq!(
        sig_auto.chunking(),
        ipr_delta::remote::Chunking::Fixed(1024)
    );
    assert!(std::fs::metadata(p("sig-auto")).unwrap().len() <= 2048);
    run(&s(&[
        "diff",
        "--signature",
        &p("sig-auto"),
        &p("new"),
        &p("delta-auto"),
    ]))
    .unwrap();
    run(&s(&[
        "apply",
        &p("old"),
        &p("delta-auto"),
        &p("rebuilt-auto"),
    ]))
    .unwrap();
    assert_eq!(std::fs::read(p("rebuilt-auto")).unwrap(), version);

    // Error paths: bad chunking flags, junk signature, wrong arity.
    assert!(run(&s(&["signature", &p("old"), &p("x"), "--block", "0"])).is_err());
    assert!(run(&s(&[
        "signature",
        &p("old"),
        &p("x"),
        "--block-size",
        "auto:0"
    ]))
    .is_err());
    assert!(run(&s(&[
        "signature",
        &p("old"),
        &p("x"),
        "--block-size",
        "auto",
        "--block",
        "512",
    ]))
    .is_err());
    assert!(run(&s(&[
        "signature",
        &p("old"),
        &p("x"),
        "--block",
        "512",
        "--cdc",
        "64:256:2048",
    ]))
    .is_err());
    assert!(run(&s(&["signature", &p("old")])).is_err());
    std::fs::write(p("junk-sig"), b"not a signature").unwrap();
    assert!(run(&s(&[
        "diff",
        "--signature",
        &p("junk-sig"),
        &p("new"),
        &p("d"),
    ]))
    .is_err());

    std::fs::remove_dir_all(&dir).ok();
}

/// The remote path reports its two-level match work through `--stats`.
#[test]
fn remote_diff_emits_stats() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-remote-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let reference: Vec<u8> = (0..32 * 1024u32).map(|i| (i * 7 % 247) as u8).collect();
    let mut version = reference.clone();
    version[10_000] ^= 1;
    std::fs::write(p("old"), &reference).unwrap();
    std::fs::write(p("new"), &version).unwrap();

    let sig_stats = p("sig-stats.json");
    run(&s(&[
        "signature",
        &p("old"),
        &p("sig"),
        "--block",
        "1024",
        "--stats-out",
        &sig_stats,
    ]))
    .unwrap();
    let raw = std::fs::read_to_string(&sig_stats).unwrap();
    let v = ipr_trace::json::parse(&raw).unwrap();
    let counter = |v: &ipr_trace::json::Value, name: &str| {
        v.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|c| c.as_u64())
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert!(v.get("spans").unwrap().get("remote.sign").is_some());
    assert_eq!(counter(&v, "remote.blocks"), 32);

    let diff_stats = p("diff-stats.json");
    run(&s(&[
        "diff",
        "--signature",
        &p("sig"),
        &p("new"),
        &p("delta"),
        "--stats-out",
        &diff_stats,
    ]))
    .unwrap();
    let raw = std::fs::read_to_string(&diff_stats).unwrap();
    let v = ipr_trace::json::parse(&raw).unwrap();
    assert!(v.get("spans").unwrap().get("remote.diff").is_some());
    // 31 of 32 blocks match; the flipped byte's block becomes literals.
    assert_eq!(counter(&v, "remote.strong_matches"), 31);
    assert_eq!(counter(&v, "remote.matched_bytes"), 31 * 1024);
    assert_eq!(counter(&v, "remote.literal_bytes"), 1024);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn one_pass_differ_and_policies_selectable() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-test2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let reference = vec![3u8; 4096];
    let mut version = reference.clone();
    version[17] = 4;
    std::fs::write(p("old"), &reference).unwrap();
    std::fs::write(p("new"), &version).unwrap();
    run(&s(&[
        "diff",
        &p("old"),
        &p("new"),
        &p("d"),
        "--differ",
        "one-pass",
    ]))
    .unwrap();
    run(&s(&[
        "convert",
        &p("old"),
        &p("d"),
        &p("d-ip"),
        "--policy",
        "constant",
        "--format",
        "improved",
    ]))
    .unwrap();
    run(&s(&["verify", &p("d-ip")])).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The engine session layer behind every subcommand: `ipr diff` +
/// `ipr convert` together must equal one `Engine::update`, byte for
/// byte, when configured identically.
#[test]
fn cli_pipeline_matches_engine_update() {
    let dir = std::env::temp_dir().join(format!("ipr-cli-engine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let reference: Vec<u8> = (0..4096u32).map(|i| (i * 13 % 241) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(128);
    std::fs::write(p("old"), &reference).unwrap();
    std::fs::write(p("new"), &version).unwrap();

    run(&s(&["diff", &p("old"), &p("new"), &p("delta")])).unwrap();
    run(&s(&["convert", &p("old"), &p("delta"), &p("delta-ip")])).unwrap();

    let mut engine = Engine::with_config(ipr_pipeline::EngineConfig::with_threads(1));
    let update = engine.update(&reference, &version).unwrap();
    assert_eq!(std::fs::read(p("delta-ip")).unwrap(), update.payload);

    std::fs::remove_dir_all(&dir).ok();
}

//! `ipr store` — the versioned delta object store's command surface.
//!
//! ```text
//! ipr store init <dir> [--depth-cap N]
//! ipr store put <dir> <file> [--parent OID]
//! ipr store get <dir> <oid-prefix> <out>
//! ipr store log <dir>
//! ipr store compact <dir>
//! ipr store fsck <dir> [--repair]
//! ```
//!
//! Every mutation commits through the store's crash-safe transaction
//! layer; `fsck` exits non-zero whenever the store needs attention (and
//! with `--repair` only if something unrepairable remains).

use crate::engine_cli::EngineCli;
use ipr_store::{fsck, ObjectKind, Oid, Store, DEFAULT_DEPTH_CAP};

type CliResult = Result<(), Box<dyn std::error::Error>>;

pub fn cmd_store(args: &[String]) -> CliResult {
    let Some(sub) = args.first() else {
        return Err(USAGE.into());
    };
    let rest = &args[1..];
    match sub.as_str() {
        "init" => cmd_init(rest),
        "put" => cmd_put(rest),
        "get" => cmd_get(rest),
        "log" => cmd_log(rest),
        "compact" => cmd_compact(rest),
        "fsck" => cmd_fsck(rest),
        other => Err(format!("unknown store subcommand `{other}`\n{USAGE}").into()),
    }
}

const USAGE: &str = "usage: ipr store <init|put|get|log|compact|fsck> <dir> [...]\n\
                     \x20 init <dir> [--depth-cap N]     create an empty store\n\
                     \x20 put <dir> <file> [--parent OID]  store a version (delta vs parent/head)\n\
                     \x20 get <dir> <oid-prefix> <out>   reconstruct a version\n\
                     \x20 log <dir>                      list versions, chains and depths\n\
                     \x20 compact <dir>                  cap chain depth via delta composition\n\
                     \x20 fsck <dir> [--repair]          integrity sweep (repair crash debris)";

fn cmd_init(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    let depth_cap = cli
        .take_with("depth-cap", |v| {
            v.parse::<u32>()
                .map_err(|_| format!("--depth-cap needs a number, got `{v}`"))
        })?
        .unwrap_or(DEFAULT_DEPTH_CAP);
    cli.finish_options()?;
    let [dir] = cli.positional("usage: ipr store init <dir> [--depth-cap N]")?;
    let store = Store::init(dir.as_ref(), depth_cap)?;
    println!(
        "initialized store at {} (depth cap {})",
        store.root().display(),
        depth_cap
    );
    Ok(())
}

fn cmd_put(args: &[String]) -> CliResult {
    let mut cli = EngineCli::parse(args)?;
    let parent = cli.take_with("parent", |v| v.parse::<Oid>().map_err(|e| e.to_string()))?;
    cli.finish_options()?;
    let [dir, file] = cli.positional("usage: ipr store put <dir> <file> [--parent OID]")?;
    let bytes = std::fs::read(file)?;
    let mut store = Store::open(dir.as_ref())?;
    let out = store.put(&bytes, parent)?;
    if out.created {
        println!(
            "{} <- {} ({} B) stored as {} ({} B on disk, depth {})",
            out.oid,
            file,
            bytes.len(),
            match out.kind {
                ObjectKind::Full => "full image",
                ObjectKind::Delta => "delta",
            },
            out.stored_bytes,
            out.depth
        );
    } else {
        println!("{} already stored (content match, no-op)", out.oid);
    }
    Ok(())
}

fn cmd_get(args: &[String]) -> CliResult {
    let cli = EngineCli::parse(args)?;
    cli.finish_options()?;
    let [dir, prefix, out_path] =
        cli.positional("usage: ipr store get <dir> <oid-prefix> <out>")?;
    let mut store = Store::open(dir.as_ref())?;
    let oid = store.resolve_prefix(prefix)?;
    let depth = store.manifest().depth(oid).unwrap_or(0);
    let bytes = store.get(oid)?;
    std::fs::write(out_path, &bytes)?;
    println!(
        "{} -> {} ({} B, reconstructed through {} delta{})",
        oid,
        out_path,
        bytes.len(),
        depth,
        if depth == 1 { "" } else { "s" }
    );
    Ok(())
}

fn cmd_log(args: &[String]) -> CliResult {
    let cli = EngineCli::parse(args)?;
    cli.finish_options()?;
    let [dir] = cli.positional("usage: ipr store log <dir>")?;
    let store = Store::open(dir.as_ref())?;
    let manifest = store.manifest();
    println!(
        "store at {}: gen {}, {} version(s), depth cap {}",
        store.root().display(),
        manifest.gen,
        manifest.versions.len(),
        manifest.depth_cap
    );
    for v in store.log() {
        let depth = manifest.depth(v.oid).unwrap_or(0);
        let storage = match manifest.edges.get(&v.oid) {
            Some(edge) => format!("delta of {:.12}", edge.from.to_string()),
            None => "full".to_string(),
        };
        println!(
            "{:4}  {}  {:>10} B  depth {}  {}",
            v.seq, v.oid, v.len, depth, storage
        );
    }
    Ok(())
}

fn cmd_compact(args: &[String]) -> CliResult {
    let cli = EngineCli::parse(args)?;
    cli.finish_options()?;
    let [dir] = cli.positional("usage: ipr store compact <dir>")?;
    let mut store = Store::open(dir.as_ref())?;
    let r = store.compact()?;
    println!(
        "compacted: {} chain(s) collapsed, {} object(s) dropped, \
         max depth {} -> {}, {} B -> {} B",
        r.collapsed,
        r.dropped_objects,
        r.max_depth_before,
        r.max_depth_after,
        r.bytes_before,
        r.bytes_after
    );
    Ok(())
}

fn cmd_fsck(args: &[String]) -> CliResult {
    // `--repair` is a bare flag; strip it before the key-value parser.
    let mut repair = false;
    let rest: Vec<String> = args
        .iter()
        .filter(|a| {
            if a.as_str() == "--repair" {
                repair = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    let cli = EngineCli::parse(&rest)?;
    cli.finish_options()?;
    let [dir] = cli.positional("usage: ipr store fsck <dir> [--repair]")?;
    let report = fsck(dir.as_ref(), repair)?;
    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "fsck: {} finding(s), {} version(s) reconstructed, {} object(s) verified, {} B checked",
        report.findings.len(),
        report.versions_checked,
        report.objects_checked,
        report.bytes_checked
    );
    if report.is_clean() || (repair && report.fully_repaired() && !report.has_corruption()) {
        Ok(())
    } else if report.has_corruption() {
        Err("store is corrupt".into())
    } else {
        Err("store needs repair (rerun with --repair)".into())
    }
}

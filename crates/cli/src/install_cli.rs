//! `ipr install` — simulate installing a delta onto a constrained
//! device over a (lossy) channel, offline or streaming with resume.
//!
//! The offline path downloads the whole delta and then applies it; the
//! `--stream` path drives [`ipr_device::stream_install`]: commands are
//! applied while chunks arrive, `--kill-at N` simulates a power cut
//! after N chunk transfers, and the resulting checkpoint plus the
//! device's flash contents are persisted to the `--state` file so the
//! next invocation resumes from the cut — re-requesting the wire from
//! the checkpoint offset, not from byte 0.

use crate::engine_cli::EngineCli;
use ipr_delta::codec::stream::StreamDecoder;
use ipr_device::{
    stream_install, update, Channel, Device, InstallCheckpoint, LossyChannel, StreamProgress,
};
use ipr_pipeline::DeltaStream;

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Magic prefix of an install state file (checkpoint + flash snapshot).
const STATE_MAGIC: [u8; 4] = *b"IPRS";

const USAGE: &str = "usage: ipr install <image> <delta> [--stream] \
     [--channel dialup|isdn|cellular] [--loss RATE] [--seed S] \
     [--chunk BYTES] [--mtu BYTES] [--kill-at N] [--state FILE]";

/// Parses a `--channel` preset name.
fn parse_channel(name: &str) -> Result<Channel, String> {
    match name {
        "dialup" => Ok(Channel::dialup()),
        "isdn" => Ok(Channel::isdn()),
        "cellular" => Ok(Channel::cellular()),
        _ => Err(format!("unknown channel `{name}` (dialup|isdn|cellular)")),
    }
}

/// Device capacity for a delta: the header names both image sizes, so
/// peek it off the wire prefix without decoding any command.
fn peek_needed(payload: &[u8]) -> Result<u64, Box<dyn std::error::Error>> {
    let mut decoder = StreamDecoder::new();
    for chunk in payload.chunks(64) {
        decoder.push(chunk);
        if let Some(header) = decoder.poll_header()? {
            return Ok(header.source_len.max(header.target_len));
        }
    }
    Err("delta too short to carry a header".into())
}

pub fn cmd_install(args: &[String]) -> CliResult {
    // `--stream` is a boolean flag; extract it before EngineCli's
    // uniform `--key value` parsing would eat a positional as its value.
    let mut streaming = false;
    let mut rest = Vec::with_capacity(args.len());
    for a in args {
        if a == "--stream" {
            streaming = true;
        } else {
            rest.push(a.clone());
        }
    }
    let mut cli = EngineCli::parse(&rest)?;
    let channel = cli
        .take_with("channel", parse_channel)?
        .unwrap_or_else(Channel::dialup);
    let loss = cli
        .take_with("loss", |v| {
            let rate: f64 = v
                .parse()
                .map_err(|_| format!("--loss needs a rate, got `{v}`"))?;
            if (0.0..1.0).contains(&rate) {
                Ok(rate)
            } else {
                Err(format!("--loss must be in [0, 1), got `{v}`"))
            }
        })?
        .unwrap_or(0.0);
    let seed = cli
        .take_with("seed", |v| {
            v.parse::<u64>()
                .map_err(|_| format!("--seed needs a number, got `{v}`"))
        })?
        .unwrap_or(1);
    let chunk = cli
        .take_with("chunk", |v| match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("--chunk needs a positive byte count, got `{v}`")),
        })?
        .unwrap_or(1024);
    let mtu = cli
        .take_with("mtu", |v| match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("--mtu needs a positive byte count, got `{v}`")),
        })?
        .unwrap_or(576);
    let kill_at = cli.take_with("kill-at", |v| {
        v.parse::<u64>()
            .map_err(|_| format!("--kill-at needs a chunk count, got `{v}`"))
    })?;
    let state_path = cli.take("state");
    cli.finish_options()?;
    let [image_path, delta_path] = cli.positional(USAGE)?;

    if !streaming {
        if kill_at.is_some() || state_path.is_some() {
            return Err("--kill-at and --state require --stream".into());
        }
        return install_offline(image_path, delta_path, channel);
    }
    let state_path = state_path.unwrap_or_else(|| format!("{image_path}.state"));
    install_streaming(
        image_path,
        delta_path,
        LossyChannel::new(channel, loss, seed),
        chunk,
        mtu,
        kill_at,
        &state_path,
    )
}

/// Download-then-apply: the whole delta crosses the wire before the
/// first flash write.
fn install_offline(image_path: &str, delta_path: &str, channel: Channel) -> CliResult {
    let payload = std::fs::read(delta_path)?;
    let image = std::fs::read(image_path)?;
    let capacity = peek_needed(&payload)?.max(image.len() as u64);
    let mut device = Device::new(usize::try_from(capacity).map_err(|_| "image too large")?);
    device.flash(&image)?;
    let report = update::install_update(&mut device, &payload, channel)?;
    std::fs::write(image_path, device.image())?;
    println!(
        "installed {} onto {} ({} B image): {} B over {channel} in {:.2}s, {} commands{}",
        delta_path,
        image_path,
        device.image().len(),
        report.received_bytes,
        report.transfer_time.as_secs_f64(),
        report.stats.commands,
        if report.crc_verified {
            ", crc ok"
        } else {
            ", no crc"
        }
    );
    Ok(())
}

/// Streaming install with optional simulated power cut and resume.
fn install_streaming(
    image_path: &str,
    delta_path: &str,
    channel: LossyChannel,
    chunk: usize,
    mtu: usize,
    kill_at: Option<u64>,
    state_path: &str,
) -> CliResult {
    let payload = std::fs::read(delta_path)?;
    let stream = DeltaStream::from_wire(payload, chunk);

    // A state file from an earlier kill means resume; otherwise fresh.
    let (mut device, checkpoint) = match std::fs::read(state_path) {
        Ok(bytes) => {
            let (checkpoint, storage) = decode_state(&bytes)?;
            let mut device = Device::new(storage.len());
            device.flash(storage)?;
            (device, Some(checkpoint))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let image = std::fs::read(image_path)?;
            let capacity = peek_needed(stream.payload())?.max(image.len() as u64);
            let mut device = Device::new(usize::try_from(capacity).map_err(|_| "image too large")?);
            device.flash(&image)?;
            (device, None)
        }
        Err(e) => return Err(e.into()),
    };
    let resumed = checkpoint.is_some();

    match stream_install(
        &mut device,
        &stream,
        channel,
        mtu,
        checkpoint.as_ref(),
        kill_at,
    )? {
        StreamProgress::Complete(report) => {
            std::fs::write(image_path, device.image())?;
            if resumed {
                std::fs::remove_file(state_path)?;
            }
            println!(
                "streamed {} onto {} ({} B image): {} chunks / {} B in {:.2}s \
                 ({} retransmissions), first byte at {:.2}s, {} commands \
                 ({} pre-EOF), {} resume(s), {} B buffered peak{}",
                delta_path,
                image_path,
                device.image().len(),
                report.chunks,
                report.received_bytes,
                report.transfer_time.as_secs_f64(),
                report.retransmissions,
                report.time_to_first_byte.map_or(0.0, |t| t.as_secs_f64()),
                report.commands_applied,
                report.commands_pre_eof,
                report.resumes,
                report.buffered_high_water,
                if report.crc_verified {
                    ", crc ok"
                } else {
                    ", no crc"
                }
            );
        }
        StreamProgress::Killed { checkpoint, report } => match checkpoint {
            Some(checkpoint) => {
                std::fs::write(state_path, encode_state(&checkpoint, device.storage()))?;
                println!(
                    "killed after {} chunks ({} B, {:.2}s): {} commands applied, \
                     checkpoint at wire byte {} -> {state_path}; rerun to resume",
                    report.chunks,
                    report.received_bytes,
                    report.transfer_time.as_secs_f64(),
                    report.commands_applied,
                    checkpoint.stream_offset()
                );
            }
            None => {
                println!(
                    "killed after {} chunks, before the header: nothing to \
                     checkpoint, rerun restarts from byte 0",
                    report.chunks
                );
            }
        },
    }
    Ok(())
}

/// Serializes checkpoint + flash snapshot as one state file.
fn encode_state(checkpoint: &InstallCheckpoint, storage: &[u8]) -> Vec<u8> {
    let checkpoint = checkpoint.encode();
    let mut out = Vec::with_capacity(4 + 16 + checkpoint.len() + storage.len());
    out.extend_from_slice(&STATE_MAGIC);
    out.extend_from_slice(&(checkpoint.len() as u64).to_le_bytes());
    out.extend_from_slice(&checkpoint);
    out.extend_from_slice(&(storage.len() as u64).to_le_bytes());
    out.extend_from_slice(storage);
    out
}

/// Parses a state file written by [`encode_state`].
fn decode_state(bytes: &[u8]) -> Result<(InstallCheckpoint, &[u8]), Box<dyn std::error::Error>> {
    let err = || -> Box<dyn std::error::Error> { "malformed install state file".into() };
    if bytes.len() < 12 || bytes[..4] != STATE_MAGIC {
        return Err(err());
    }
    let mut at = 4usize;
    let mut read_block = |bytes: &'_ [u8]| -> Option<std::ops::Range<usize>> {
        let len = u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?);
        let start = at + 8;
        let end = start.checked_add(usize::try_from(len).ok()?)?;
        bytes.get(start..end)?;
        at = end;
        Some(start..end)
    };
    let checkpoint_range = read_block(bytes).ok_or_else(err)?;
    let storage_range = read_block(bytes).ok_or_else(err)?;
    if at != bytes.len() {
        return Err(err());
    }
    let checkpoint = InstallCheckpoint::decode(&bytes[checkpoint_range])?;
    Ok((checkpoint, &bytes[storage_range]))
}
